#!/bin/bash
# Regenerates every table/figure and stores raw outputs under results/.
set -u
cd /root/repo
BINS="profile_irregularity table1_properties table3_datasets table5_udt_space table6_virtual_space table7_transform_time fig13_speedups table8_sssp_detail ablation_k_sweep ablation_mapping ablation_simd_model ablation_partition_vs_split hardwired_comparison verify_correctness table4_comparison"
for b in $BINS; do
  echo "=== $b ==="
  TIGR_SCALE=${TIGR_SCALE:-256} timeout 5400 cargo run --release -q -p tigr-bench --bin $b > results/$b.txt 2> results/$b.log
  echo "exit: $?"
done
