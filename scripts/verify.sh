#!/bin/bash
# Full verification gate: the tier-1 suite (ROADMAP.md) plus lints and
# formatting. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== cpu-schedule ablation smoke =="
cargo run --release -p tigr-bench --bin ablation_cpu_schedule -- --smoke

echo "== direction ablation smoke =="
cargo run --release -p tigr-bench --bin ablation_direction -- --smoke

echo "== serve ablation smoke =="
# Also the compile check for the ablation_serve bin; asserts the
# result-cache hit speedup and cross-cell checksum agreement itself.
cargo run --release -p tigr-bench --bin ablation_serve -- --smoke

echo "== operator ablation smoke =="
# Compile-and-run gate for the pipeline layer: values byte-equal to the
# legacy entry points and the (smoke-relaxed) dispatch-overhead gate,
# both asserted by the bin itself.
cargo run --release -p tigr-bench --bin ablation_operators -- --smoke

echo "== prepared-graph cache smoke =="
# A warmed cache must make the second run pure load: cache hit, zero
# transform/transpose/overlay construction.
cache_dir="$(mktemp -d)"
trap 'rm -rf "$cache_dir"' EXIT
graph_file="$cache_dir/smoke.bin"
cargo run --release -q -p tigr-cli --bin tigr -- generate er --nodes 2000 --edges 16000 --weighted \
    -o "$graph_file" > /dev/null
cargo run --release -q -p tigr-cli --bin tigr -- run sssp --graph "$graph_file" --direction auto \
    --virtual 8 --stats --cache-dir "$cache_dir" > /dev/null
warm="$(cargo run --release -q -p tigr-cli --bin tigr -- run sssp --graph "$graph_file" --direction auto \
    --virtual 8 --stats --cache-dir "$cache_dir")"
echo "$warm" | grep -q "cache           hit" \
    || { echo "cache smoke: second run did not hit"; echo "$warm"; exit 1; }
echo "$warm" | grep -q "prep work       0 transforms, 0 transposes, 0 overlays" \
    || { echo "cache smoke: second run rebuilt derived views"; echo "$warm"; exit 1; }
echo "cache smoke: warm run loaded every view from the artifact"

echo "== serve smoke =="
# One query per served algorithm against an ephemeral-port daemon; the
# stats verb must account for exactly those five queries.
port_file="$cache_dir/port.txt"
cargo run --release -q -p tigr-cli --bin tigr -- serve --graph "$graph_file" --name smoke \
    --port 0 --port-file "$port_file" --workers 2 > /dev/null &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$cache_dir"' EXIT
for _ in $(seq 1 100); do [ -s "$port_file" ] && break; sleep 0.1; done
[ -s "$port_file" ] || { echo "serve smoke: port file never appeared"; exit 1; }
addr="$(cat "$port_file")"
tigr_query() { cargo run --release -q -p tigr-cli --bin tigr -- query "$@" --addr "$addr"; }
tigr_query bfs  --graph-name smoke --source 0 > /dev/null
tigr_query sssp --graph-name smoke --source 0 > /dev/null
tigr_query sswp --graph-name smoke --source 0 > /dev/null
tigr_query cc   --graph-name smoke > /dev/null
tigr_query pr   --graph-name smoke > /dev/null
stats="$(tigr_query stats)"
echo "$stats" | grep -q "5 received / 5 completed / 0 rejected / 0 failed" \
    || { echo "serve smoke: unexpected stats"; echo "$stats"; exit 1; }
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
echo "serve smoke: five analytics served and accounted"

echo "== workload smoke =="
# The four operator-only workloads (plus single-source BC) served over
# TCP, each answer pinned to a committed FNV-1a64 checksum: the results
# are deterministic functions of the seed graph (generate er, default
# seed), so any drift in the operator pipelines shows up here as a
# checksum mismatch. Runs against its own daemon so the serve smoke's
# pinned five-query stats line stays untouched.
w_port_file="$cache_dir/w_port.txt"
cargo run --release -q -p tigr-cli --bin tigr -- serve --graph "$graph_file" --name smoke \
    --port 0 --port-file "$w_port_file" --workers 2 > /dev/null &
w_pid=$!
trap 'kill "$w_pid" 2>/dev/null || true; rm -rf "$cache_dir"' EXIT
for _ in $(seq 1 100); do [ -s "$w_port_file" ] && break; sleep 0.1; done
[ -s "$w_port_file" ] || { echo "workload smoke: port file never appeared"; exit 1; }
w_addr="$(cat "$w_port_file")"
check_workload() {
    local label="$1" expect="$2"
    shift 2
    local out sum
    out="$(cargo run --release -q -p tigr-cli --bin tigr -- query "$@" \
        --graph-name smoke --addr "$w_addr")"
    sum="$(echo "$out" | grep "^checksum" | awk '{print $2}')"
    [ "$sum" = "$expect" ] || {
        echo "workload smoke: $label checksum ${sum:-<none>}, expected $expect"
        echo "$out"
        exit 1
    }
}
check_workload "khop(k=2)"    c77b23437990f3a2 khop --source 0 --limit 2
check_workload "paths(r=40)"  c702c9e40ec90731 paths --source 0 --limit 40
check_workload "lp(rounds=4)" bae36c08b4cc2b9d lp --limit 4
check_workload "tc"           ea33e45a1ecf79d6 tc
check_workload "bc(src=0)"    0589ea599dc7bce9 bc --source 0
w_stats="$(cargo run --release -q -p tigr-cli --bin tigr -- query stats --addr "$w_addr")"
for line in "algo khop       1 completed" "algo paths      1 completed" \
            "algo lp         1 completed" "algo tc         1 completed" \
            "algo bc         1 completed"; do
    echo "$w_stats" | grep -qF "$line" \
        || { echo "workload smoke: missing stats line: $line"; echo "$w_stats"; exit 1; }
done
kill "$w_pid"
wait "$w_pid" 2>/dev/null || true
echo "workload smoke: khop/paths/lp/tc/bc served with reference checksums"

echo "== batch smoke =="
# Byte-equality across the batch former: the same query cells answered
# by an unbatched daemon (--batch-max 1), by a batching daemon fed
# concurrently (--batch-max 8, generous linger so the in-flight burst
# fuses), and by a parallel batching daemon (--kernel-threads 2, the
# CpuPool direction-switching plan) must print identical checksum
# lines.
ub_port_file="$cache_dir/ub_port.txt"
b_port_file="$cache_dir/b_port.txt"
p_port_file="$cache_dir/p_port.txt"
cargo run --release -q -p tigr-cli --bin tigr -- serve --graph "$graph_file" --name smoke \
    --port 0 --port-file "$ub_port_file" --workers 1 --batch-max 1 > /dev/null &
ub_pid=$!
cargo run --release -q -p tigr-cli --bin tigr -- serve --graph "$graph_file" --name smoke \
    --port 0 --port-file "$b_port_file" --workers 1 --batch-max 8 --batch-wait-us 300000 \
    > /dev/null &
b_pid=$!
cargo run --release -q -p tigr-cli --bin tigr -- serve --graph "$graph_file" --name smoke \
    --port 0 --port-file "$p_port_file" --executors 1 --kernel-threads 2 --batch-max 8 \
    --batch-wait-us 300000 > /dev/null &
p_pid=$!
trap 'kill "$ub_pid" "$b_pid" "$p_pid" 2>/dev/null || true; rm -rf "$cache_dir"' EXIT
for f in "$ub_port_file" "$b_port_file" "$p_port_file"; do
    for _ in $(seq 1 100); do [ -s "$f" ] && break; sleep 0.1; done
    [ -s "$f" ] || { echo "batch smoke: port file never appeared"; exit 1; }
done
ub_addr="$(cat "$ub_port_file")"
b_addr="$(cat "$b_port_file")"
p_addr="$(cat "$p_port_file")"
cells="bfs:0 bfs:9 sssp:0 sssp:9 sswp:4 cc:-"
cell_args() { [ "$1" = "-" ] && echo "" || echo "--source $1"; }
# Reference answers from the unbatched daemon, one at a time.
for cell in $cells; do
    algo="${cell%%:*}"; src="${cell##*:}"
    # shellcheck disable=SC2046
    cargo run --release -q -p tigr-cli --bin tigr -- query "$algo" --graph-name smoke \
        $(cell_args "$src") --no-cache --addr "$ub_addr" \
        | grep "^checksum" > "$cache_dir/ref_${algo}_${src}.txt"
done
# The same cells against the sequential and the parallel batching
# daemons, all in flight at once so each single executor must answer
# them through fused batches.
for kind in got par; do
    case "$kind" in got) addr="$b_addr" ;; par) addr="$p_addr" ;; esac
    qpids=""
    for cell in $cells; do
        algo="${cell%%:*}"; src="${cell##*:}"
        # shellcheck disable=SC2046
        cargo run --release -q -p tigr-cli --bin tigr -- query "$algo" --graph-name smoke \
            $(cell_args "$src") --no-cache --addr "$addr" \
            | grep "^checksum" > "$cache_dir/${kind}_${algo}_${src}.txt" &
        qpids="$qpids $!"
    done
    for p in $qpids; do
        wait "$p" || { echo "batch smoke: a concurrent query failed ($kind)"; exit 1; }
    done
    for cell in $cells; do
        algo="${cell%%:*}"; src="${cell##*:}"
        [ -s "$cache_dir/ref_${algo}_${src}.txt" ] && [ -s "$cache_dir/${kind}_${algo}_${src}.txt" ] \
            || { echo "batch smoke: missing checksum for $algo source $src ($kind)"; exit 1; }
        cmp -s "$cache_dir/ref_${algo}_${src}.txt" "$cache_dir/${kind}_${algo}_${src}.txt" || {
            echo "batch smoke: checksum diverged for $algo source $src ($kind)"
            paste "$cache_dir/ref_${algo}_${src}.txt" "$cache_dir/${kind}_${algo}_${src}.txt"
            exit 1
        }
    done
done
b_stats="$(cargo run --release -q -p tigr-cli --bin tigr -- query stats --addr "$b_addr")"
echo "$b_stats" | grep -q "6 received / 6 completed / 0 rejected / 0 failed" \
    || { echo "batch smoke: unexpected stats"; echo "$b_stats"; exit 1; }
echo "$b_stats" | grep "^batches"
p_stats="$(cargo run --release -q -p tigr-cli --bin tigr -- query stats --addr "$p_addr")"
echo "$p_stats" | grep -q "6 received / 6 completed / 0 rejected / 0 failed" \
    || { echo "batch smoke: unexpected parallel-daemon stats"; echo "$p_stats"; exit 1; }
kill "$ub_pid" "$b_pid" "$p_pid"
wait "$ub_pid" "$b_pid" "$p_pid" 2>/dev/null || true
echo "batch smoke: batched answers (sequential and kernel-threads 2) byte-equal to the unbatched daemon"

echo "== coldstart ablation smoke =="
# Compile-and-run gate for the zero-copy bench; asserts mapped-vs-decoded
# checksum agreement and the (smoke-relaxed) map-is-faster bar itself.
cargo run --release -p tigr-bench --bin ablation_coldstart -- --smoke

echo "== mmap smoke =="
# A mapped warm run must answer identically to the decoded reference
# (open mode proven by the stats lines), and a --mmap on daemon must
# serve the same query checksum as a --mmap off daemon while reporting
# the mapped open in `query stats`.
ref_run="$(cargo run --release -q -p tigr-cli --bin tigr -- run sssp --graph "$graph_file" \
    --direction auto --virtual 8 --stats --cache-dir "$cache_dir" --mmap off)"
echo "$ref_run" | grep -q "cache open      decoded" \
    || { echo "mmap smoke: --mmap off did not decode"; echo "$ref_run"; exit 1; }
mapped_run="$(cargo run --release -q -p tigr-cli --bin tigr -- run sssp --graph "$graph_file" \
    --direction auto --virtual 8 --stats --cache-dir "$cache_dir" --mmap on)"
echo "$mapped_run" | grep -q "cache open      mapped" \
    || { echo "mmap smoke: --mmap on did not map"; echo "$mapped_run"; exit 1; }
run_answer() { echo "$1" | grep -E "^(sssp from|edges touched|iterations)"; }
[ -n "$(run_answer "$ref_run")" ] \
    || { echo "mmap smoke: reference run printed no answer lines"; echo "$ref_run"; exit 1; }
[ "$(run_answer "$ref_run")" = "$(run_answer "$mapped_run")" ] \
    || { echo "mmap smoke: mapped run diverged from decoded"; diff <(run_answer "$ref_run") <(run_answer "$mapped_run"); exit 1; }
d_port_file="$cache_dir/d_port.txt"
m_port_file="$cache_dir/m_port.txt"
cargo run --release -q -p tigr-cli --bin tigr -- serve --graph "$graph_file" --name smoke \
    --port 0 --port-file "$d_port_file" --workers 1 --cache-dir "$cache_dir" --mmap off \
    > /dev/null &
d_pid=$!
cargo run --release -q -p tigr-cli --bin tigr -- serve --graph "$graph_file" --name smoke \
    --port 0 --port-file "$m_port_file" --workers 1 --cache-dir "$cache_dir" --mmap on \
    > /dev/null &
m_pid=$!
trap 'kill "$d_pid" "$m_pid" 2>/dev/null || true; rm -rf "$cache_dir"' EXIT
for f in "$d_port_file" "$m_port_file"; do
    for _ in $(seq 1 100); do [ -s "$f" ] && break; sleep 0.1; done
    [ -s "$f" ] || { echo "mmap smoke: port file never appeared"; exit 1; }
done
d_addr="$(cat "$d_port_file")"
m_addr="$(cat "$m_port_file")"
ref_sum="$(cargo run --release -q -p tigr-cli --bin tigr -- query sssp --graph-name smoke \
    --source 0 --addr "$d_addr" | grep "^checksum")"
served_sum="$(cargo run --release -q -p tigr-cli --bin tigr -- query sssp --graph-name smoke \
    --source 0 --addr "$m_addr" | grep "^checksum")"
[ -n "$ref_sum" ] && [ "$ref_sum" = "$served_sum" ] \
    || { echo "mmap smoke: served checksum diverged"; echo "$ref_sum vs $served_sum"; exit 1; }
m_stats="$(cargo run --release -q -p tigr-cli --bin tigr -- query stats --addr "$m_addr")"
echo "$m_stats" | grep -q "graph smoke     mapped" \
    || { echo "mmap smoke: server did not open the graph mapped"; echo "$m_stats"; exit 1; }
kill "$d_pid" "$m_pid"
wait "$d_pid" "$m_pid" 2>/dev/null || true
echo "mmap smoke: mapped run and mapped serve answer byte-equal to the decoded reference"

echo "== mutation smoke =="
# A --mutable daemon must serve the delta (the checksum moves off the
# freshly-prepared reference after a mutation), survive a forced
# compaction with byte-equal answers and a drained overlay, and account
# for it all in `query stats`.
mu_port_file="$cache_dir/mu_port.txt"
cargo run --release -q -p tigr-cli --bin tigr -- serve --graph "$graph_file" --name smoke \
    --port 0 --port-file "$mu_port_file" --workers 1 --mutable > /dev/null &
mu_pid=$!
trap 'kill "$mu_pid" 2>/dev/null || true; rm -rf "$cache_dir"' EXIT
for _ in $(seq 1 100); do [ -s "$mu_port_file" ] && break; sleep 0.1; done
[ -s "$mu_port_file" ] || { echo "mutation smoke: port file never appeared"; exit 1; }
mu_addr="$(cat "$mu_port_file")"
mu_query() { cargo run --release -q -p tigr-cli --bin tigr -- query "$@" --addr "$mu_addr"; }
mu_mutate() { cargo run --release -q -p tigr-cli --bin tigr -- mutate "$@" --addr "$mu_addr" --graph-name smoke; }
fresh_sum="$(mu_query bfs --graph-name smoke --source 0 --no-cache | grep '^checksum')"
mu_mutate add-node --nodes 2001 > /dev/null
mu_mutate add-edge --u 0 --v 2000 --w 1 > /dev/null
printf '2000 0 1\n0 2000 1\n' > "$cache_dir/delta_edges.txt"
ingest_out="$(cargo run --release -q -p tigr-cli --bin tigr -- ingest --file "$cache_dir/delta_edges.txt" \
    --addr "$mu_addr" --graph-name smoke)"
echo "$ingest_out" | grep -q "ingested 2 edges into smoke" \
    || { echo "mutation smoke: unexpected ingest output"; echo "$ingest_out"; exit 1; }
delta_sum="$(mu_query bfs --graph-name smoke --source 0 --no-cache | grep '^checksum')"
[ "$fresh_sum" != "$delta_sum" ] \
    || { echo "mutation smoke: mutation did not change the served answer"; exit 1; }
mu_stats="$(mu_query stats)"
echo "$mu_stats" | grep -qE "overlay         [1-9][0-9]* wal records / [1-9][0-9]* delta edges" \
    || { echo "mutation smoke: stats show no delta"; echo "$mu_stats"; exit 1; }
compact_out="$(mu_mutate compact)"
echo "$compact_out" | grep -q -- "-> 0" \
    || { echo "mutation smoke: compaction left delta edges"; echo "$compact_out"; exit 1; }
post_sum="$(mu_query bfs --graph-name smoke --source 0 --no-cache | grep '^checksum')"
[ "$delta_sum" = "$post_sum" ] \
    || { echo "mutation smoke: compaction changed answers"; echo "$delta_sum vs $post_sum"; exit 1; }
post_stats="$(mu_query stats)"
echo "$post_stats" | grep -q "overlay         0 wal records / 0 delta edges" \
    || { echo "mutation smoke: delta not drained"; echo "$post_stats"; exit 1; }
echo "$post_stats" | grep -q "compactions     1 (last" \
    || { echo "mutation smoke: compaction not counted"; echo "$post_stats"; exit 1; }
kill "$mu_pid"
wait "$mu_pid" 2>/dev/null || true
echo "mutation smoke: delta served, compaction preserved answers and drained the overlay"

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --check

echo "verify: all gates passed"
