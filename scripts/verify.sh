#!/bin/bash
# Full verification gate: the tier-1 suite (ROADMAP.md) plus lints and
# formatting. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== cpu-schedule ablation smoke =="
cargo run --release -p tigr-bench --bin ablation_cpu_schedule -- --smoke

echo "== direction ablation smoke =="
cargo run --release -p tigr-bench --bin ablation_direction -- --smoke

echo "== prepared-graph cache smoke =="
# A warmed cache must make the second run pure load: cache hit, zero
# transform/transpose/overlay construction.
cache_dir="$(mktemp -d)"
trap 'rm -rf "$cache_dir"' EXIT
graph_file="$cache_dir/smoke.bin"
cargo run --release -q -p tigr-cli --bin tigr -- generate er --nodes 2000 --edges 16000 --weighted \
    -o "$graph_file" > /dev/null
cargo run --release -q -p tigr-cli --bin tigr -- run sssp --graph "$graph_file" --direction auto \
    --virtual 8 --stats --cache-dir "$cache_dir" > /dev/null
warm="$(cargo run --release -q -p tigr-cli --bin tigr -- run sssp --graph "$graph_file" --direction auto \
    --virtual 8 --stats --cache-dir "$cache_dir")"
echo "$warm" | grep -q "cache           hit" \
    || { echo "cache smoke: second run did not hit"; echo "$warm"; exit 1; }
echo "$warm" | grep -q "prep work       0 transforms, 0 transposes, 0 overlays" \
    || { echo "cache smoke: second run rebuilt derived views"; echo "$warm"; exit 1; }
echo "cache smoke: warm run loaded every view from the artifact"

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --check

echo "verify: all gates passed"
