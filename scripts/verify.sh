#!/bin/bash
# Full verification gate: the tier-1 suite (ROADMAP.md) plus lints and
# formatting. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== benches compile =="
cargo bench --workspace --no-run

echo "== cpu-schedule ablation smoke =="
cargo run --release -p tigr-bench --bin ablation_cpu_schedule -- --smoke

echo "== direction ablation smoke =="
cargo run --release -p tigr-bench --bin ablation_direction -- --smoke

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustfmt check =="
cargo fmt --check

echo "verify: all gates passed"
