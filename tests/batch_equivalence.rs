//! Differential proptest harness for batched multi-source execution,
//! with two equality regimes:
//!
//! - **Byte equality** for the sequential push batch: a K-lane
//!   [`BatchProgram`] run over a random graph must match K independent
//!   sequential single-source runs observable-for-observable — same
//!   value arrays, same iteration counts, same convergence flags, same
//!   `edges_touched`, same FNV-1a64 checksums.
//! - **Value equality** for every other cell of the execution matrix
//!   ({Sequential, CpuPool} × {push, pull, auto} × {node-chunk,
//!   edge-balanced, virtual} × thread counts): same fixpoint values,
//!   checksums, and convergence, while iteration and edge counts are
//!   schedule-dependent (merged frontiers, relaxed intra-sweep
//!   visibility). Parallel cells must also reproduce their values
//!   exactly on re-run through a warm arena.
//!
//! Duplicate sources inside one batch, the K=1 degenerate batch, arena
//! reuse across batches, and typed plan errors (virtual schedule
//! without a view, pull needing associativity) are all part of the
//! property set.

use proptest::collection::vec;
use proptest::prelude::*;

use tigr::engine::batch::{BatchArena, BatchLane, BatchOutput, BatchProgram};
use tigr::engine::{
    BackendKind, CpuOptions, CpuSchedule, Direction, EngineError, MonotoneOutput, PlanError,
};
use tigr::server::checksum;
use tigr::{Csr, CsrBuilder, Edge, Engine, MonotoneProgram, NodeId, Representation, VirtualGraph};

const PROGRAMS: [MonotoneProgram; 4] = [
    MonotoneProgram::BFS,
    MonotoneProgram::SSSP,
    MonotoneProgram::SSWP,
    MonotoneProgram::CC,
];

/// Strategy: an arbitrary weighted directed graph with up to `n` nodes
/// and `m` edges (self-loops, parallel edges, and unreachable islands
/// all included — the batch path must not care).
fn arb_graph(n: usize, m: usize) -> impl Strategy<Value = Csr> {
    (2..n).prop_flat_map(move |nodes| {
        vec((0..nodes as u32, 0..nodes as u32, 1..100u32), 0..m).prop_map(move |edges| {
            let mut b = CsrBuilder::new(nodes);
            for (s, d, w) in edges {
                b.add(Edge::new(NodeId::new(s), NodeId::new(d), w));
            }
            b.force_weighted(true);
            b.build()
        })
    })
}

/// The single-source reference: the server's exact deterministic plan.
fn solo(g: &Csr, prog: MonotoneProgram, source: Option<NodeId>) -> MonotoneOutput {
    Engine::default()
        .with_backend(BackendKind::Sequential)
        .run(&Representation::Original(g), prog, source)
        .unwrap()
}

/// One batched run through the engine facade with a caller-owned arena.
fn batched(
    g: &Csr,
    prog: MonotoneProgram,
    sources: &[Option<NodeId>],
    arena: &mut BatchArena,
) -> BatchOutput {
    let batch = BatchProgram {
        prog,
        lanes: sources.iter().map(|&s| BatchLane::new(s)).collect(),
    };
    Engine::default()
        .run_batch(&Representation::Original(g), &batch, arena)
        .unwrap()
}

/// Full byte-equality: every observable of the lane matches the solo
/// run, including the serving checksum.
fn assert_byte_equal(lane: &MonotoneOutput, reference: &MonotoneOutput, label: &str) {
    assert_eq!(lane.values, reference.values, "{label}: values");
    assert_eq!(
        checksum(&lane.values),
        checksum(&reference.values),
        "{label}: checksum"
    );
    assert_eq!(
        lane.directions.len(),
        reference.directions.len(),
        "{label}: iterations"
    );
    assert_eq!(lane.converged, reference.converged, "{label}: converged");
    assert_eq!(lane.cancelled, reference.cancelled, "{label}: cancelled");
    assert_eq!(
        lane.edges_touched, reference.edges_touched,
        "{label}: edges_touched"
    );
}

/// Materializes lane sources for a program: source-free programs (CC)
/// get `None` lanes — deliberately duplicated, since identical lanes
/// are legal batch members.
fn lane_sources(prog: MonotoneProgram, picks: &[u32], nodes: u32) -> Vec<Option<NodeId>> {
    picks
        .iter()
        .map(|&p| prog.needs_source().then(|| NodeId::new(p % nodes)))
        .collect()
}

/// One batched run through a fully specified execution-plan cell of
/// the matrix: backend × direction × CPU schedule × thread count.
#[allow(clippy::too_many_arguments)]
fn batched_cell(
    g: &Csr,
    prog: MonotoneProgram,
    sources: &[Option<NodeId>],
    backend: BackendKind,
    direction: Direction,
    schedule: CpuSchedule,
    threads: usize,
    arena: &mut BatchArena,
) -> Result<BatchOutput, EngineError> {
    let batch = BatchProgram {
        prog,
        lanes: sources.iter().map(|&s| BatchLane::new(s)).collect(),
    };
    Engine::default()
        .with_backend(backend)
        .with_direction(direction)
        .with_cpu_options(CpuOptions {
            threads,
            schedule,
            ..CpuOptions::default()
        })
        .run_batch(&Representation::Original(g), &batch, arena)
}

/// Value-level equality: the lane reached the reference fixpoint with
/// the same convergence outcome. Iteration and edge counts are *not*
/// compared — merged frontiers and relaxed intra-sweep visibility make
/// them schedule-dependent (only the pure sequential push batch is
/// byte-equal; see [`assert_byte_equal`]).
fn assert_value_equal(lane: &MonotoneOutput, reference: &MonotoneOutput, label: &str) {
    assert_eq!(lane.values, reference.values, "{label}: values");
    assert_eq!(
        checksum(&lane.values),
        checksum(&reference.values),
        "{label}: checksum"
    );
    assert_eq!(lane.converged, reference.converged, "{label}: converged");
    assert_eq!(lane.cancelled, reference.cancelled, "{label}: cancelled");
}

const DIRECTIONS: [Direction; 3] = [Direction::Push, Direction::Pull, Direction::Auto];
const SCHEDULES: [CpuSchedule; 3] = [
    CpuSchedule::NodeChunk,
    CpuSchedule::EdgeBalanced,
    CpuSchedule::Virtual,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: random graph × algorithm × source
    /// multiset (duplicates included by construction — picks collide
    /// mod the node count), batched K-source run byte-equal to K
    /// independent sequential runs.
    #[test]
    fn batched_lanes_byte_equal_independent_sequential_runs(
        g in arb_graph(40, 200),
        algo in 0usize..4,
        picks in vec(0u32..10_000, 1..7),
    ) {
        let prog = PROGRAMS[algo];
        let sources = lane_sources(prog, &picks, g.num_nodes() as u32);
        let mut arena = BatchArena::new();
        let out = batched(&g, prog, &sources, &mut arena);
        prop_assert_eq!(out.lanes.len(), sources.len());
        for (i, (&source, lane)) in sources.iter().zip(&out.lanes).enumerate() {
            let reference = solo(&g, prog, source);
            assert_byte_equal(lane, &reference, &format!("{} lane {i} src {source:?}", prog.name));
        }
        let widest = out.lanes.iter().map(|l| l.directions.len()).max().unwrap_or(0);
        prop_assert_eq!(out.sweeps, widest);
    }

    /// The K=1 degenerate batch is exactly the solo run — this is the
    /// path every non-batched server query takes through the arena.
    #[test]
    fn single_lane_batch_is_the_solo_run(
        g in arb_graph(40, 200),
        algo in 0usize..4,
        pick in 0u32..10_000,
    ) {
        let prog = PROGRAMS[algo];
        let sources = lane_sources(prog, &[pick], g.num_nodes() as u32);
        let mut arena = BatchArena::new();
        let out = batched(&g, prog, &sources, &mut arena);
        prop_assert_eq!(out.lanes.len(), 1);
        assert_byte_equal(&out.lanes[0], &solo(&g, prog, sources[0]), prog.name);
    }

    /// A batch made entirely of one duplicated source yields identical
    /// lanes, each byte-equal to the one solo run.
    #[test]
    fn duplicate_sources_share_nothing_but_the_answer(
        g in arb_graph(30, 120),
        algo in 0usize..4,
        pick in 0u32..10_000,
        k in 2usize..6,
    ) {
        let prog = PROGRAMS[algo];
        let sources = lane_sources(prog, &vec![pick; k], g.num_nodes() as u32);
        let mut arena = BatchArena::new();
        let out = batched(&g, prog, &sources, &mut arena);
        let reference = solo(&g, prog, sources[0]);
        for (i, lane) in out.lanes.iter().enumerate() {
            assert_byte_equal(lane, &reference, &format!("{} dup lane {i}", prog.name));
        }
    }

    /// Determinism: the same batch composition re-run through the same
    /// (now warm) arena, and through a fresh arena, produces
    /// byte-identical outputs — recycled lane storage leaks nothing.
    #[test]
    fn repeated_runs_and_arena_reuse_are_byte_identical(
        g in arb_graph(30, 120),
        algo in 0usize..4,
        picks in vec(0u32..10_000, 1..6),
    ) {
        let prog = PROGRAMS[algo];
        let sources = lane_sources(prog, &picks, g.num_nodes() as u32);
        let mut warm = BatchArena::new();
        // Dirty the arena with a different batch first: wider, other
        // sources, so reuse actually has stale state to clear.
        let dirty = lane_sources(prog, &[3, 1, 4, 1, 5, 9], g.num_nodes() as u32);
        batched(&g, prog, &dirty, &mut warm);
        let first = batched(&g, prog, &sources, &mut warm);
        let second = batched(&g, prog, &sources, &mut warm);
        let fresh = batched(&g, prog, &sources, &mut BatchArena::new());
        prop_assert_eq!(first.sweeps, second.sweeps);
        prop_assert_eq!(first.sweeps, fresh.sweeps);
        for i in 0..sources.len() {
            assert_byte_equal(&second.lanes[i], &first.lanes[i], "rerun/warm");
            assert_byte_equal(&fresh.lanes[i], &first.lanes[i], "rerun/fresh");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The execution matrix: {Sequential, CpuPool} × {push, pull,
    /// auto} × {node-chunk, edge-balanced, virtual} × random source
    /// vectors. Every cell must reach the sequential push reference
    /// fixpoint per lane (values, checksums, convergence); the
    /// parallel cells are additionally re-run through a warm arena and
    /// must reproduce their values exactly — determinism does not
    /// depend on thread count or retained state.
    #[test]
    fn execution_matrix_reaches_the_sequential_fixpoint(
        g in arb_graph(30, 120),
        algo in 0usize..4,
        picks in vec(0u32..10_000, 1..6),
        threads in 1usize..3,
    ) {
        let prog = PROGRAMS[algo];
        let sources = lane_sources(prog, &picks, g.num_nodes() as u32);
        let refs: Vec<MonotoneOutput> = sources.iter().map(|&s| solo(&g, prog, s)).collect();
        for direction in DIRECTIONS {
            // Sequential backend (schedule-independent): push and auto
            // take the lockstep batched sweep, pull runs lanes solo.
            let mut arena = BatchArena::new();
            let out = batched_cell(
                &g, prog, &sources,
                BackendKind::Sequential, direction, CpuSchedule::EdgeBalanced, 1,
                &mut arena,
            ).unwrap();
            for (i, reference) in refs.iter().enumerate() {
                let label = format!("sequential/{}/{direction:?} lane {i}", prog.name);
                assert_value_equal(&out.lanes[i], reference, &label);
            }
            for schedule in SCHEDULES {
                let mut arena = BatchArena::new();
                let out = batched_cell(
                    &g, prog, &sources,
                    BackendKind::CpuPool, direction, schedule, threads,
                    &mut arena,
                ).unwrap();
                let again = batched_cell(
                    &g, prog, &sources,
                    BackendKind::CpuPool, direction, schedule, threads,
                    &mut arena,
                ).unwrap();
                for (i, reference) in refs.iter().enumerate() {
                    let label = format!(
                        "cpupool/{}/{direction:?}/{schedule:?}/t{threads} lane {i}",
                        prog.name
                    );
                    assert_value_equal(&out.lanes[i], reference, &label);
                    prop_assert_eq!(
                        &out.lanes[i].values, &again.lanes[i].values,
                        "{} rerun determinism", label
                    );
                }
            }
        }
    }
}

/// Seed corpus: hand-picked compositions that exercise the merge
/// loop's edges — kept as focused tests so they run on every `cargo
/// test` regardless of the random sampler (see the companion
/// `.proptest-regressions` file).
mod seed_corpus {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let mut b = CsrBuilder::new(n);
        for i in 0..n - 1 {
            b.add(Edge::new(
                NodeId::new(i as u32),
                NodeId::new(i as u32 + 1),
                2,
            ));
        }
        b.force_weighted(true);
        b.build()
    }

    /// Lanes that converge at very different iteration counts: sources
    /// at both ends of a long path. The early-finishing lane must drop
    /// out without disturbing the long one.
    #[test]
    fn staggered_convergence_on_a_path() {
        let g = path_graph(64);
        let sources = [
            Some(NodeId::new(0)),
            Some(NodeId::new(62)),
            Some(NodeId::new(31)),
        ];
        let mut arena = BatchArena::new();
        let out = batched(&g, MonotoneProgram::SSSP, &sources, &mut arena);
        for (i, &s) in sources.iter().enumerate() {
            assert_byte_equal(
                &out.lanes[i],
                &solo(&g, MonotoneProgram::SSSP, s),
                &format!("path lane {i}"),
            );
        }
        assert_eq!(out.sweeps, out.lanes[0].directions.len());
    }

    /// An edgeless graph: every lane converges after one sweep; CC
    /// lanes keep their own-id labels.
    #[test]
    fn edgeless_graph_converges_immediately() {
        let g = CsrBuilder::new(5).build();
        let mut arena = BatchArena::new();
        let out = batched(&g, MonotoneProgram::CC, &[None, None], &mut arena);
        for lane in &out.lanes {
            assert_byte_equal(lane, &solo(&g, MonotoneProgram::CC, None), "edgeless cc");
            assert_eq!(lane.values, vec![0, 1, 2, 3, 4]);
        }
    }

    /// A source with no outgoing edges: the lane's frontier dies at
    /// iteration one, everyone else stays unreached.
    #[test]
    fn sink_source_lane_finishes_first() {
        let g = path_graph(8);
        let sources = [Some(NodeId::new(7)), Some(NodeId::new(0))];
        let mut arena = BatchArena::new();
        let out = batched(&g, MonotoneProgram::BFS, &sources, &mut arena);
        for (i, &s) in sources.iter().enumerate() {
            assert_byte_equal(
                &out.lanes[i],
                &solo(&g, MonotoneProgram::BFS, s),
                &format!("sink lane {i}"),
            );
        }
        assert!(out.lanes[0].values[..7].iter().all(|&v| v == u32::MAX));
    }

    /// Self-loops and parallel edges in one batch (the shrunk shape of
    /// an early random failure candidate: node 0 looping onto itself
    /// with duplicated weights).
    #[test]
    fn self_loops_and_parallel_edges() {
        let mut b = CsrBuilder::new(3);
        b.add(Edge::new(NodeId::new(0), NodeId::new(0), 1));
        b.add(Edge::new(NodeId::new(0), NodeId::new(1), 5));
        b.add(Edge::new(NodeId::new(0), NodeId::new(1), 3));
        b.add(Edge::new(NodeId::new(1), NodeId::new(2), 7));
        b.force_weighted(true);
        let g = b.build();
        let mut arena = BatchArena::new();
        for prog in PROGRAMS {
            let picks: &[u32] = if prog.needs_source() {
                &[0, 1, 2]
            } else {
                &[0]
            };
            let sources = lane_sources(prog, picks, 3);
            let out = batched(&g, prog, &sources, &mut arena);
            for (i, &s) in sources.iter().enumerate() {
                assert_byte_equal(
                    &out.lanes[i],
                    &solo(&g, prog, s),
                    &format!("{} loop lane {i}", prog.name),
                );
            }
        }
    }

    /// Widest supported mix: every node of a small clique as a source
    /// at once, plus duplicates beyond the node count.
    #[test]
    fn full_fanout_with_duplicates() {
        let mut b = CsrBuilder::new(6);
        for s in 0..6u32 {
            for d in 0..6u32 {
                if s != d {
                    b.add(Edge::new(NodeId::new(s), NodeId::new(d), 1 + (s + d) % 4));
                }
            }
        }
        b.force_weighted(true);
        let g = b.build();
        let sources: Vec<Option<NodeId>> = (0..8u32).map(|i| Some(NodeId::new(i % 6))).collect();
        let mut arena = BatchArena::new();
        let out = batched(&g, MonotoneProgram::SSWP, &sources, &mut arena);
        for (i, &s) in sources.iter().enumerate() {
            assert_byte_equal(
                &out.lanes[i],
                &solo(&g, MonotoneProgram::SSWP, s),
                &format!("clique lane {i}"),
            );
        }
    }

    /// An unplannable batch fails with the same typed error as a solo
    /// run, before any lane executes: a virtual chunking schedule with
    /// overlay construction disabled and no virtual view to chunk by.
    #[test]
    fn virtual_schedule_without_view_is_a_typed_error() {
        let g = path_graph(8);
        let batch = BatchProgram {
            prog: MonotoneProgram::BFS,
            lanes: vec![BatchLane::new(Some(NodeId::new(0)))],
        };
        let err = Engine::default()
            .with_backend(BackendKind::CpuPool)
            .with_cpu_options(CpuOptions {
                threads: 2,
                schedule: CpuSchedule::Virtual,
                virtual_k: 0,
                ..CpuOptions::default()
            })
            .run_batch(
                &Representation::Original(&g),
                &batch,
                &mut BatchArena::new(),
            );
        assert!(
            matches!(
                err,
                Err(EngineError::InvalidPlan(
                    PlanError::VirtualScheduleWithoutView
                ))
            ),
            "{err:?}"
        );
    }

    /// Pull over a virtual split partitions a node's in-edge fold
    /// across threads; a non-associative combine must be refused with
    /// the Theorem 3 plan error, not silently computed wrong.
    #[test]
    fn pull_over_a_virtual_view_needs_associativity() {
        let g = path_graph(8);
        let overlay = VirtualGraph::new(&g, 2);
        let rep = Representation::Virtual {
            graph: &g,
            overlay: &overlay,
        };
        let prog = MonotoneProgram {
            associative: false,
            ..MonotoneProgram::SSSP
        };
        let batch = BatchProgram {
            prog,
            lanes: vec![BatchLane::new(Some(NodeId::new(0)))],
        };
        let err = Engine::default()
            .with_backend(BackendKind::CpuPool)
            .with_direction(Direction::Pull)
            .run_batch(&rep, &batch, &mut BatchArena::new());
        assert!(
            matches!(
                err,
                Err(EngineError::InvalidPlan(
                    PlanError::PullNeedsAssociativity { program: "sssp" }
                ))
            ),
            "{err:?}"
        );
    }
}
