//! Cache-coherence integration tests of the prepared-graph artifact
//! layer: miss → hit with zero derivation work, byte-identical artifact
//! writes, spec mutations changing the key, corruption detection via
//! section checksums, and identical analytic results across every
//! backend whether the views were built or loaded.

use std::fs;

use tigr::core::{CacheStatus, GraphStore, MmapMode, OpenMode, PrepareSpec, TransformKind};
use tigr::engine::{BackendKind, MonotoneProgram};
use tigr::graph::io::VerifyMode;
use tigr::{DumbWeight, Engine, GpuConfig, NodeId};

fn temp_store(name: &str) -> GraphStore {
    let dir = std::env::temp_dir().join(name);
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    GraphStore::new(Some(dir))
}

/// `true` where artifact opens can borrow the file mapping in place
/// (64-bit little-endian Unix); elsewhere the store falls back to owned
/// decodes and the mapped-mode assertions are skipped.
fn zero_copy_target() -> bool {
    cfg!(all(
        unix,
        target_pointer_width = "64",
        target_endian = "little"
    ))
}

/// A spec exercising every optional view: weights, coalesced virtual
/// overlay, transpose (and thus the mirrored reverse overlay).
fn base_spec() -> PrepareSpec {
    PrepareSpec::generated("rmat:8:8", 7)
        .with_uniform_weights(1, 9, 3)
        .with_virtual(8, true)
        .with_transpose(true)
}

#[test]
fn miss_then_hit_is_coherent_and_byte_identical() {
    let store = temp_store("tigr_it_prepared_store");
    let spec = base_spec();

    let cold = store.prepare(&spec).unwrap();
    assert_eq!(cold.report().cache, CacheStatus::Miss);
    assert!(cold.report().work_items() > 0);
    let bytes = fs::read(cold.report().artifact.as_ref().unwrap()).unwrap();

    let warm = store.prepare(&spec).unwrap();
    assert_eq!(warm.report().cache, CacheStatus::Hit);
    assert_eq!(
        warm.report().work_items(),
        0,
        "warm run must derive nothing"
    );
    assert_eq!(warm.graph(), cold.graph());
    assert_eq!(warm.transpose(), cold.transpose());
    assert!(warm.overlay().is_some());
    assert!(warm.rev_overlay().is_some());

    // An independent store resolving the same spec writes a
    // byte-identical artifact (deterministic container encoding).
    let other = temp_store("tigr_it_prepared_store_other");
    let again = other.prepare(&spec).unwrap();
    assert_eq!(again.report().cache, CacheStatus::Miss);
    assert_eq!(again.report().key, cold.report().key);
    let bytes2 = fs::read(again.report().artifact.as_ref().unwrap()).unwrap();
    assert_eq!(bytes, bytes2);
}

#[test]
fn built_and_loaded_views_agree_on_every_backend() {
    let store = temp_store("tigr_it_prepared_backends");
    let spec = base_spec();
    let cold = store.prepare(&spec).unwrap();
    let warm = store.prepare(&spec).unwrap();
    assert_eq!(warm.report().cache, CacheStatus::Hit);

    let src = Some(NodeId::new(0));
    let mut reference: Option<Vec<u32>> = None;
    for (label, prepared) in [("cold", &cold), ("warm", &warm)] {
        for backend in [
            BackendKind::WarpSim,
            BackendKind::CpuPool,
            BackendKind::Sequential,
        ] {
            let engine = Engine::parallel(GpuConfig::default()).with_backend(backend);
            let out = engine
                .run_prepared(prepared, MonotoneProgram::SSSP, src)
                .unwrap();
            match &reference {
                None => reference = Some(out.values.clone()),
                Some(expect) => {
                    assert_eq!(&out.values, expect, "{label}/{backend:?} diverged")
                }
            }
        }
    }
}

/// The mapped×decoded equivalence matrix: the same artifact opened as
/// built views, owned decode, eager map, and lazy map must return
/// byte-identical values for every algorithm on every backend.
#[test]
fn mapped_and_decoded_opens_agree_on_every_algorithm_and_backend() {
    let store = temp_store("tigr_it_prepared_mmap_matrix");
    let spec = base_spec();
    let built = store.prepare(&spec).unwrap();
    assert_eq!(built.open_info().mode, OpenMode::Built);

    let decoded = store
        .clone()
        .with_mmap(MmapMode::Off)
        .prepare(&spec)
        .unwrap();
    let eager = store.prepare(&spec).unwrap();
    let lazy = store
        .clone()
        .with_verify(VerifyMode::Lazy)
        .prepare(&spec)
        .unwrap();
    for (label, p) in [("decoded", &decoded), ("eager", &eager), ("lazy", &lazy)] {
        assert_eq!(p.report().cache, CacheStatus::Hit, "{label}");
        assert_eq!(p.report().work_items(), 0, "{label}");
    }
    assert_eq!(decoded.open_info().mode, OpenMode::Decoded);
    assert_eq!(decoded.open_info().mapped_bytes, 0);
    if zero_copy_target() {
        assert_eq!(eager.open_info().mode, OpenMode::Mapped);
        assert_eq!(lazy.open_info().mode, OpenMode::Mapped);
        assert_eq!(eager.open_info().verify, VerifyMode::Eager);
        assert_eq!(lazy.open_info().verify, VerifyMode::Lazy);
        assert!(lazy.open_info().mapped_bytes > 0);
    }

    let programs = [
        ("bfs", MonotoneProgram::BFS),
        ("sssp", MonotoneProgram::SSSP),
        ("sswp", MonotoneProgram::SSWP),
        ("cc", MonotoneProgram::CC),
    ];
    let backends = [
        BackendKind::WarpSim,
        BackendKind::CpuPool,
        BackendKind::Sequential,
    ];
    for (prog_label, prog) in programs {
        let src = (prog_label != "cc").then(|| NodeId::new(0));
        let mut reference: Option<Vec<u32>> = None;
        for (label, prepared) in [
            ("built", &built),
            ("decoded", &decoded),
            ("eager", &eager),
            ("lazy", &lazy),
        ] {
            for backend in backends {
                let engine = Engine::parallel(GpuConfig::default()).with_backend(backend);
                let out = engine.run_prepared(prepared, prog, src).unwrap();
                match &reference {
                    None => reference = Some(out.values.clone()),
                    Some(expect) => assert_eq!(
                        &out.values, expect,
                        "{prog_label}: {label}/{backend:?} diverged"
                    ),
                }
            }
        }
    }
}

/// With `--mmap on` a miss builds, writes, and re-opens mapped; payload
/// corruption is still a typed miss that rebuilds back to a mapped
/// artifact.
#[test]
fn mmap_on_corruption_is_a_miss_that_rebuilds_to_mapped() {
    let store = temp_store("tigr_it_prepared_mmap_corrupt").with_mmap(MmapMode::On);
    let spec = base_spec();
    let cold = store.prepare(&spec).unwrap();
    assert_eq!(cold.report().cache, CacheStatus::Miss);
    assert!(cold.report().work_items() > 0, "miss must report its work");
    if zero_copy_target() {
        assert_eq!(cold.open_info().mode, OpenMode::Mapped);
        assert!(cold.is_mapped());
    }

    let artifact = cold.report().artifact.clone().unwrap();
    let mut bytes = fs::read(&artifact).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    fs::write(&artifact, &bytes).unwrap();

    let rebuilt = store.prepare(&spec).unwrap();
    assert_eq!(rebuilt.report().cache, CacheStatus::Miss);
    assert!(rebuilt.report().work_items() > 0);
    if zero_copy_target() {
        assert_eq!(rebuilt.open_info().mode, OpenMode::Mapped);
    }
    assert_eq!(rebuilt.graph(), cold.graph());
    let again = store.prepare(&spec).unwrap();
    assert_eq!(again.report().cache, CacheStatus::Hit);
    assert_eq!(again.graph(), cold.graph());
}

#[test]
fn spec_mutations_change_the_key() {
    let store = temp_store("tigr_it_prepared_mutations");
    let cold = store.prepare(&base_spec()).unwrap();
    let key = cold.report().key.clone();

    let mutations: [(&str, PrepareSpec); 6] = [
        ("virtual k", base_spec().with_virtual(9, true)),
        ("overlay layout", base_spec().with_virtual(8, false)),
        ("transpose", base_spec().with_transpose(false)),
        ("weight range", base_spec().with_uniform_weights(1, 10, 3)),
        ("generator seed", {
            let mut s = base_spec();
            s.source = tigr::core::GraphSource::Generated {
                tag: "rmat:8:8".into(),
                seed: 8,
            };
            s
        }),
        (
            "physical transform",
            base_spec().with_transform(TransformKind::Udt, Some(8), DumbWeight::Zero),
        ),
    ];
    for (label, spec) in mutations {
        let p = store.prepare(&spec).unwrap();
        assert_eq!(p.report().cache, CacheStatus::Miss, "{label}");
        assert_ne!(p.report().key, key, "{label} must change the cache key");
    }

    // And the original spec still hits afterwards.
    let again = store.prepare(&base_spec()).unwrap();
    assert_eq!(again.report().cache, CacheStatus::Hit);
}

#[test]
fn corrupt_artifact_is_detected_and_rebuilt() {
    let store = temp_store("tigr_it_prepared_corrupt");
    let spec = base_spec();
    let cold = store.prepare(&spec).unwrap();
    let artifact = cold.report().artifact.clone().unwrap();

    let mut bytes = fs::read(&artifact).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    fs::write(&artifact, &bytes).unwrap();

    // The checksum mismatch downgrades to a miss and rewrites the
    // artifact; the next prepare hits again with identical content.
    let rebuilt = store.prepare(&spec).unwrap();
    assert_eq!(rebuilt.report().cache, CacheStatus::Miss);
    assert!(rebuilt.report().work_items() > 0);
    assert_eq!(rebuilt.graph(), cold.graph());
    let again = store.prepare(&spec).unwrap();
    assert_eq!(again.report().cache, CacheStatus::Hit);
    assert_eq!(again.graph(), cold.graph());
}
