//! Cache-coherence integration tests of the prepared-graph artifact
//! layer: miss → hit with zero derivation work, byte-identical artifact
//! writes, spec mutations changing the key, corruption detection via
//! section checksums, and identical analytic results across every
//! backend whether the views were built or loaded.

use std::fs;

use tigr::core::{CacheStatus, GraphStore, PrepareSpec, TransformKind};
use tigr::engine::{BackendKind, MonotoneProgram};
use tigr::{DumbWeight, Engine, GpuConfig, NodeId};

fn temp_store(name: &str) -> GraphStore {
    let dir = std::env::temp_dir().join(name);
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    GraphStore::new(Some(dir))
}

/// A spec exercising every optional view: weights, coalesced virtual
/// overlay, transpose (and thus the mirrored reverse overlay).
fn base_spec() -> PrepareSpec {
    PrepareSpec::generated("rmat:8:8", 7)
        .with_uniform_weights(1, 9, 3)
        .with_virtual(8, true)
        .with_transpose(true)
}

#[test]
fn miss_then_hit_is_coherent_and_byte_identical() {
    let store = temp_store("tigr_it_prepared_store");
    let spec = base_spec();

    let cold = store.prepare(&spec).unwrap();
    assert_eq!(cold.report().cache, CacheStatus::Miss);
    assert!(cold.report().work_items() > 0);
    let bytes = fs::read(cold.report().artifact.as_ref().unwrap()).unwrap();

    let warm = store.prepare(&spec).unwrap();
    assert_eq!(warm.report().cache, CacheStatus::Hit);
    assert_eq!(
        warm.report().work_items(),
        0,
        "warm run must derive nothing"
    );
    assert_eq!(warm.graph(), cold.graph());
    assert_eq!(warm.transpose(), cold.transpose());
    assert!(warm.overlay().is_some());
    assert!(warm.rev_overlay().is_some());

    // An independent store resolving the same spec writes a
    // byte-identical artifact (deterministic container encoding).
    let other = temp_store("tigr_it_prepared_store_other");
    let again = other.prepare(&spec).unwrap();
    assert_eq!(again.report().cache, CacheStatus::Miss);
    assert_eq!(again.report().key, cold.report().key);
    let bytes2 = fs::read(again.report().artifact.as_ref().unwrap()).unwrap();
    assert_eq!(bytes, bytes2);
}

#[test]
fn built_and_loaded_views_agree_on_every_backend() {
    let store = temp_store("tigr_it_prepared_backends");
    let spec = base_spec();
    let cold = store.prepare(&spec).unwrap();
    let warm = store.prepare(&spec).unwrap();
    assert_eq!(warm.report().cache, CacheStatus::Hit);

    let src = Some(NodeId::new(0));
    let mut reference: Option<Vec<u32>> = None;
    for (label, prepared) in [("cold", &cold), ("warm", &warm)] {
        for backend in [
            BackendKind::WarpSim,
            BackendKind::CpuPool,
            BackendKind::Sequential,
        ] {
            let engine = Engine::parallel(GpuConfig::default()).with_backend(backend);
            let out = engine
                .run_prepared(prepared, MonotoneProgram::SSSP, src)
                .unwrap();
            match &reference {
                None => reference = Some(out.values.clone()),
                Some(expect) => {
                    assert_eq!(&out.values, expect, "{label}/{backend:?} diverged")
                }
            }
        }
    }
}

#[test]
fn spec_mutations_change_the_key() {
    let store = temp_store("tigr_it_prepared_mutations");
    let cold = store.prepare(&base_spec()).unwrap();
    let key = cold.report().key.clone();

    let mutations: [(&str, PrepareSpec); 6] = [
        ("virtual k", base_spec().with_virtual(9, true)),
        ("overlay layout", base_spec().with_virtual(8, false)),
        ("transpose", base_spec().with_transpose(false)),
        ("weight range", base_spec().with_uniform_weights(1, 10, 3)),
        ("generator seed", {
            let mut s = base_spec();
            s.source = tigr::core::GraphSource::Generated {
                tag: "rmat:8:8".into(),
                seed: 8,
            };
            s
        }),
        (
            "physical transform",
            base_spec().with_transform(TransformKind::Udt, Some(8), DumbWeight::Zero),
        ),
    ];
    for (label, spec) in mutations {
        let p = store.prepare(&spec).unwrap();
        assert_eq!(p.report().cache, CacheStatus::Miss, "{label}");
        assert_ne!(p.report().key, key, "{label} must change the cache key");
    }

    // And the original spec still hits afterwards.
    let again = store.prepare(&base_spec()).unwrap();
    assert_eq!(again.report().cache, CacheStatus::Hit);
}

#[test]
fn corrupt_artifact_is_detected_and_rebuilt() {
    let store = temp_store("tigr_it_prepared_corrupt");
    let spec = base_spec();
    let cold = store.prepare(&spec).unwrap();
    let artifact = cold.report().artifact.clone().unwrap();

    let mut bytes = fs::read(&artifact).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    fs::write(&artifact, &bytes).unwrap();

    // The checksum mismatch downgrades to a miss and rewrites the
    // artifact; the next prepare hits again with identical content.
    let rebuilt = store.prepare(&spec).unwrap();
    assert_eq!(rebuilt.report().cache, CacheStatus::Miss);
    assert!(rebuilt.report().work_items() > 0);
    assert_eq!(rebuilt.graph(), cold.graph());
    let again = store.prepare(&spec).unwrap();
    assert_eq!(again.report().cache, CacheStatus::Hit);
    assert_eq!(again.graph(), cold.graph());
}
