//! Push and pull drivers must reach identical fixpoints — the
//! cross-scheme differential test over all programs and overlays.

use tigr::engine::{run_monotone, run_monotone_pull, MonotoneProgram, PullOptions, PushOptions};
use tigr::graph::datasets;
use tigr::graph::reverse::transpose;
use tigr::{NodeId, Representation, VirtualGraph};
use tigr_sim::{GpuConfig, GpuSimulator};

fn fixture() -> (tigr::Csr, tigr::Csr) {
    let g = datasets::by_name("pokec")
        .unwrap()
        .generate_weighted(8192, 13);
    let rev = transpose(&g);
    (g, rev)
}

#[test]
fn push_and_pull_agree_on_every_monotone_program() {
    let (g, rev) = fixture();
    let sim = GpuSimulator::new_parallel(GpuConfig::default());
    let src = NodeId::new(0);

    for prog in [
        MonotoneProgram::SSSP,
        MonotoneProgram::BFS,
        MonotoneProgram::SSWP,
        MonotoneProgram::CC,
    ] {
        let source = prog.needs_source().then_some(src);
        let push = run_monotone(
            &sim,
            &Representation::Original(&g),
            prog,
            source,
            &PushOptions::default(),
        );
        let pull = run_monotone_pull(
            &sim,
            &Representation::Original(&rev),
            prog,
            source,
            &PullOptions::default(),
        );
        assert!(push.converged && pull.converged, "{}", prog.name);
        assert_eq!(push.values, pull.values, "{} differs", prog.name);
    }
}

#[test]
fn pull_over_coalesced_overlay_agrees() {
    let (g, rev) = fixture();
    let sim = GpuSimulator::new_parallel(GpuConfig::default());
    let src = NodeId::new(0);
    let overlay = VirtualGraph::coalesced(&rev, 10);

    let push = run_monotone(
        &sim,
        &Representation::Original(&g),
        MonotoneProgram::SSSP,
        Some(src),
        &PushOptions::default(),
    );
    let pull = run_monotone_pull(
        &sim,
        &Representation::Virtual {
            graph: &rev,
            overlay: &overlay,
        },
        MonotoneProgram::SSSP,
        Some(src),
        &PullOptions::default(),
    );
    assert_eq!(push.values, pull.values);
}

#[test]
fn pull_over_otf_mapping_agrees() {
    let (g, rev) = fixture();
    let sim = GpuSimulator::new_parallel(GpuConfig::default());
    let src = NodeId::new(3);

    let push = run_monotone(
        &sim,
        &Representation::Original(&g),
        MonotoneProgram::SSWP,
        Some(src),
        &PushOptions::default(),
    );
    let mapper = tigr::core::OnTheFlyMapper::new(&rev, 10);
    let pull = run_monotone_pull(
        &sim,
        &Representation::OnTheFly {
            graph: &rev,
            mapper,
        },
        MonotoneProgram::SSWP,
        Some(src),
        &PullOptions::default(),
    );
    assert_eq!(push.values, pull.values);
}

#[test]
fn direction_optimizing_bfs_agrees_with_both() {
    let (g, rev) = fixture();
    let sim = GpuSimulator::new_parallel(GpuConfig::default());
    let src = NodeId::new(0);

    let push = run_monotone(
        &sim,
        &Representation::Original(&g.without_weights()),
        MonotoneProgram::BFS,
        Some(src),
        &PushOptions::default(),
    );
    let hybrid = tigr::engine::dobfs::run(
        &sim,
        &g,
        &rev,
        None,
        src,
        &tigr::engine::DoBfsOptions::default(),
    );
    assert_eq!(push.values, hybrid.levels);
}
