//! Differential pins for the operator-based frontier API: every
//! analytic re-expressed as an advance/filter/compute [`Pipeline`]
//! must be **byte-equal** to the legacy entry points
//! (`run_program`/`pagerank`/`betweenness`) across the full
//! backend × direction × frontier × schedule matrix, and each of the
//! four new workloads (khop, bounded paths, label propagation,
//! triangle counting) is checked against an independent in-test
//! oracle rather than against the engine that produced it.

use proptest::collection::vec;
use proptest::prelude::*;

use tigr::engine::{
    pr, BackendKind, CpuOptions, CpuSchedule, Direction, Engine, EngineError, FrontierMode,
    MonotoneProgram, Pipeline, PlanError, PrMode, PrOptions, PushOptions, SyncMode,
};
use tigr::{
    udt_transform, Csr, CsrBuilder, DumbWeight, Edge, NodeId, Representation, VirtualGraph,
};
use tigr_sim::GpuConfig;

const PROGRAMS: [MonotoneProgram; 4] = [
    MonotoneProgram::BFS,
    MonotoneProgram::SSSP,
    MonotoneProgram::SSWP,
    MonotoneProgram::CC,
];

const MODES: [FrontierMode; 3] = [
    FrontierMode::Auto,
    FrontierMode::Dense,
    FrontierMode::Sparse,
];

fn opts(worklist: bool, frontier: FrontierMode) -> PushOptions {
    PushOptions {
        worklist,
        frontier,
        sort_frontier_by_degree: false,
        sync: SyncMode::Relaxed,
        max_iterations: 100_000,
    }
}

fn cpu_opts(threads: usize, schedule: CpuSchedule) -> CpuOptions {
    CpuOptions {
        threads,
        frontier: true,
        schedule,
        ..CpuOptions::default()
    }
}

/// Strategy: a weighted directed graph with a guaranteed hub so split
/// transforms and the virtual overlay actually fire.
fn arb_hubbed_graph(n: usize, m: usize) -> impl Strategy<Value = Csr> {
    (4..n).prop_flat_map(move |nodes| {
        vec((0..nodes as u32, 0..nodes as u32, 1..100u32), 0..m).prop_map(move |edges| {
            let mut b = CsrBuilder::new(nodes);
            for (s, d, w) in edges {
                b.add(Edge::new(NodeId::new(s), NodeId::new(d), w));
            }
            for t in 1..nodes as u32 {
                b.add(Edge::new(NodeId::new(0), NodeId::new(t), 7));
            }
            b.force_weighted(true);
            b.build()
        })
    })
}

/// Unit-weight BFS levels over the out-adjacency, computed without the
/// engine: the oracle for khop.
fn bfs_levels(g: &Csr, src: NodeId) -> Vec<u32> {
    let mut level = vec![u32::MAX; g.num_nodes()];
    level[src.index()] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let next = level[u.index()] + 1;
        for e in g.edge_start(u)..g.edge_end(u) {
            let t = g.edge_target(e);
            if level[t.index()] == u32::MAX {
                level[t.index()] = next;
                queue.push_back(t);
            }
        }
    }
    level
}

/// Shortest distances by exhaustive Bellman-Ford relaxation, computed
/// without the engine: the oracle for bounded paths.
fn shortest_distances(g: &Csr, src: NodeId) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![u32::MAX; n];
    dist[src.index()] = 0;
    for _ in 0..n {
        let mut changed = false;
        for u in 0..n {
            let du = dist[u];
            if du == u32::MAX {
                continue;
            }
            let v = NodeId::from_index(u);
            for e in g.edge_start(v)..g.edge_end(v) {
                let t = g.edge_target(e).index();
                let cand = du.saturating_add(g.weight(e));
                if cand < dist[t] {
                    dist[t] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// Per-node triangle counts of the simple undirected closure, by
/// brute-force triple enumeration: the oracle for tc.
fn triangle_oracle(g: &Csr) -> Vec<u32> {
    let n = g.num_nodes();
    let mut adj = vec![false; n * n];
    for u in 0..n {
        let v = NodeId::from_index(u);
        for e in g.edge_start(v)..g.edge_end(v) {
            let t = g.edge_target(e).index();
            if t != u {
                adj[u * n + t] = true;
                adj[t * n + u] = true;
            }
        }
    }
    let mut counts = vec![0u32; n];
    for a in 0..n {
        for b in a + 1..n {
            if !adj[a * n + b] {
                continue;
            }
            for c in b + 1..n {
                if adj[a * n + c] && adj[b * n + c] {
                    counts[a] += 1;
                    counts[b] += 1;
                    counts[c] += 1;
                }
            }
        }
    }
    counts
}

fn float_bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    // Each case multiplies out to a few hundred engine runs; a modest
    // case count keeps the suite fast while every backend × direction
    // × frontier × schedule combination still sees double-digit graphs.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Tentpole pin: the four monotone analytics expressed as operator
    /// pipelines are byte-equal (values, convergence, iteration count)
    /// to the legacy `run_program` entry point under every plan the
    /// engine can execute.
    #[test]
    fn monotone_pipelines_match_legacy_run_program(
        g in arb_hubbed_graph(22, 80),
        k in 1u32..8,
        src in 0u32..22,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let overlay = VirtualGraph::coalesced(&g, k);
        let reps = [
            ("original", Representation::Original(&g)),
            ("virtual", Representation::Virtual { graph: &g, overlay: &overlay }),
        ];
        for prog in PROGRAMS {
            let pipeline = prog.pipeline();
            let source = prog.needs_source().then_some(src);
            for (label, rep) in &reps {
                // Warp simulator: direction × frontier mode.
                for direction in Direction::ALL {
                    for mode in MODES {
                        let engine = Engine::new(GpuConfig::tiny())
                            .with_direction(direction)
                            .with_options(opts(true, mode));
                        let legacy = engine.run_program(rep, prog, source).unwrap();
                        let out = engine.run_pipeline(rep, &pipeline, source).unwrap();
                        prop_assert_eq!(
                            &out.values, &legacy.values,
                            "warpsim/{}/{}/{}/{} pipeline diverged from run_program",
                            prog.name, label, direction.label(), mode.label()
                        );
                        prop_assert_eq!(out.converged, legacy.converged);
                        prop_assert_eq!(out.iterations, legacy.directions.len() as u64);
                    }
                }
                // CPU pool: direction × schedule.
                for direction in Direction::ALL {
                    for schedule in CpuSchedule::ALL {
                        let engine = Engine::new(GpuConfig::tiny())
                            .with_backend(BackendKind::CpuPool)
                            .with_direction(direction)
                            .with_cpu_options(cpu_opts(2, schedule));
                        let legacy = engine.run_program(rep, prog, source).unwrap();
                        let out = engine.run_pipeline(rep, &pipeline, source).unwrap();
                        prop_assert_eq!(
                            &out.values, &legacy.values,
                            "cpupool/{}/{}/{}/{} pipeline diverged from run_program",
                            prog.name, label, direction.label(), schedule.label()
                        );
                        prop_assert_eq!(out.converged, legacy.converged);
                    }
                }
                // Sequential backend: every direction.
                for direction in Direction::ALL {
                    let engine = Engine::new(GpuConfig::tiny())
                        .with_backend(BackendKind::Sequential)
                        .with_direction(direction)
                        .with_options(opts(true, FrontierMode::Auto));
                    let legacy = engine.run_program(rep, prog, source).unwrap();
                    let out = engine.run_pipeline(rep, &pipeline, source).unwrap();
                    prop_assert_eq!(
                        &out.values, &legacy.values,
                        "sequential/{}/{}/{} pipeline diverged from run_program",
                        prog.name, label, direction.label()
                    );
                    prop_assert_eq!(out.converged, legacy.converged);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// PR and BC pipelines carry their `f32` results as bit patterns:
    /// byte-equal to the legacy float entry points, on both rank
    /// traversal directions.
    #[test]
    fn float_pipelines_match_legacy_entry_points(
        g in arb_hubbed_graph(20, 70),
        src in 0u32..20,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let engine = Engine::new(GpuConfig::tiny());
        let rep = Representation::Original(&g);
        let degrees = pr::out_degrees(&g);

        let push = PrOptions::default();
        let out = engine.run_pipeline(&rep, &Pipeline::pagerank(push), None).unwrap();
        let legacy = engine.pagerank(&rep, &degrees, &push).unwrap();
        prop_assert_eq!(&out.values, &float_bits(&legacy.ranks), "push pr diverged");
        prop_assert_eq!(out.converged, legacy.converged);

        let pull = PrOptions { mode: PrMode::Pull, ..PrOptions::default() };
        let out = engine.run_pipeline(&rep, &Pipeline::pagerank(pull), None).unwrap();
        let rev = tigr_graph::reverse::transpose(&g);
        let legacy = engine.pagerank(&Representation::Original(&rev), &degrees, &pull).unwrap();
        prop_assert_eq!(&out.values, &float_bits(&legacy.ranks), "pull pr diverged");

        let out = engine.run_pipeline(&rep, &Pipeline::betweenness(), Some(src)).unwrap();
        let legacy = engine.betweenness(&rep, src).unwrap();
        prop_assert_eq!(&out.values, &float_bits(&legacy.centrality), "bc diverged");
    }

    /// khop against an engine-free BFS oracle: values are the true hop
    /// counts with everything beyond `k` masked to unreached, and the
    /// result is byte-identical on every backend.
    #[test]
    fn khop_matches_masked_bfs_oracle(
        g in arb_hubbed_graph(24, 90),
        k in 0u32..6,
        src in 0u32..24,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let rep = Representation::Original(&g);
        let mut expect = bfs_levels(&g, src);
        for v in expect.iter_mut() {
            if *v > k {
                *v = u32::MAX;
            }
        }
        let pipeline = Pipeline::khop(k);
        let mut outputs = Vec::new();
        for backend in [BackendKind::WarpSim, BackendKind::CpuPool, BackendKind::Sequential] {
            let engine = Engine::new(GpuConfig::tiny()).with_backend(backend);
            let out = engine.run_pipeline(&rep, &pipeline, Some(src)).unwrap();
            prop_assert_eq!(&out.values, &expect, "khop(k={}) diverged from masked BFS", k);
            outputs.push(out.values);
        }
        prop_assert!(outputs.windows(2).all(|w| w[0] == w[1]));
    }

    /// Bounded paths against an engine-free Bellman-Ford oracle: the
    /// first `n` values are shortest distances clamped at the radius,
    /// the second `n` a valid deterministic predecessor tree.
    #[test]
    fn bounded_paths_match_capped_dijkstra_oracle(
        g in arb_hubbed_graph(24, 90),
        radius in 1u32..60,
        src in 0u32..24,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let n = g.num_nodes();
        let rep = Representation::Original(&g);
        let mut expect = shortest_distances(&g, src);
        for v in expect.iter_mut() {
            if *v > radius {
                *v = u32::MAX;
            }
        }
        let pipeline = Pipeline::bounded_paths(radius);
        let seq = Engine::new(GpuConfig::tiny())
            .with_backend(BackendKind::Sequential)
            .run_pipeline(&rep, &pipeline, Some(src))
            .unwrap();
        prop_assert_eq!(seq.values.len(), 2 * n, "paths must carry distances + predecessors");
        let (dist, pred) = seq.values.split_at(n);
        prop_assert_eq!(dist, &expect[..], "radius={} distances diverged from oracle", radius);
        prop_assert_eq!(pred[src.index()], src.raw(), "source is its own parent");
        for t in 0..n {
            if t == src.index() {
                continue;
            }
            if dist[t] == u32::MAX {
                prop_assert_eq!(pred[t], u32::MAX, "unreached node {} has a parent", t);
                continue;
            }
            let p = pred[t] as usize;
            prop_assert!(p < n && dist[p] != u32::MAX, "node {} parent {} unusable", t, p);
            let pn = NodeId::from_index(p);
            let witnessed = (g.edge_start(pn)..g.edge_end(pn)).any(|e| {
                g.edge_target(e).index() == t && dist[p].saturating_add(g.weight(e)) == dist[t]
            });
            prop_assert!(witnessed, "no tight edge {} -> {} backs the tree", p, t);
        }
        // The 2n layout is scheduling-independent: every backend
        // produces the same bytes.
        for backend in [BackendKind::WarpSim, BackendKind::CpuPool] {
            let out = Engine::new(GpuConfig::tiny())
                .with_backend(backend)
                .run_pipeline(&rep, &pipeline, Some(src))
                .unwrap();
            prop_assert_eq!(&out.values, &seq.values, "{:?} paths diverged", backend);
        }
    }

    /// Label propagation: the round-capped BSP schedule is pinned, so
    /// every backend produces byte-identical sketches at every round
    /// count, and with enough rounds the sketch lands exactly on the
    /// CC fixpoint.
    #[test]
    fn label_propagation_is_deterministic_and_converges_to_cc(
        g in arb_hubbed_graph(20, 70),
        rounds in 1usize..4,
    ) {
        let rep = Representation::Original(&g);
        let n = g.num_nodes();
        let seq = Engine::new(GpuConfig::tiny()).with_backend(BackendKind::Sequential);

        let sketch = seq.run_pipeline(&rep, &Pipeline::label_propagation(rounds), None).unwrap();
        for backend in [BackendKind::WarpSim, BackendKind::CpuPool] {
            let out = Engine::new(GpuConfig::tiny())
                .with_backend(backend)
                .run_pipeline(&rep, &Pipeline::label_propagation(rounds), None)
                .unwrap();
            prop_assert_eq!(
                &out.values, &sketch.values,
                "{:?} lp(rounds={}) diverged from sequential", backend, rounds
            );
        }

        let full = seq.run_pipeline(&rep, &Pipeline::label_propagation(n + 1), None).unwrap();
        let cc = seq.run_program(&rep, MonotoneProgram::CC, None).unwrap();
        prop_assert_eq!(&full.values, &cc.values, "lp({} rounds) missed the CC fixpoint", n + 1);
        prop_assert!(full.converged, "lp with rounds > diameter must report convergence");
    }

    /// Triangle counting against a brute-force O(n^3) oracle over the
    /// simple undirected closure; the per-node sum is three times the
    /// global triangle count.
    #[test]
    fn triangle_counts_match_brute_force_oracle(
        g in arb_hubbed_graph(18, 70),
    ) {
        let rep = Representation::Original(&g);
        let expect = triangle_oracle(&g);
        let out = Engine::new(GpuConfig::tiny())
            .run_pipeline(&rep, &Pipeline::triangle_count(), None)
            .unwrap();
        prop_assert_eq!(&out.values, &expect, "tc diverged from brute-force oracle");
        let sum: u64 = out.values.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(sum % 3, 0, "corner incidences must come in threes");
    }
}

/// The capability checks surface as typed plan errors through the
/// public `Engine::run_pipeline` API, not as wrong answers.
#[test]
fn pipeline_capability_violations_are_typed_errors() {
    let mut b = CsrBuilder::new(4);
    for t in 1..4 {
        b.add(Edge::new(NodeId::new(0), NodeId::new(t), 1));
    }
    b.force_weighted(true);
    let g = b.build();
    let engine = Engine::new(GpuConfig::tiny());

    let err = engine
        .run_pipeline(&Representation::Original(&g), &Pipeline::bfs(), None)
        .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::InvalidPlan(PlanError::MissingSource { pipeline: "bfs" })
        ),
        "{err}"
    );
    let err = engine
        .run_pipeline(
            &Representation::Original(&g),
            &Pipeline::cc(),
            Some(NodeId::new(0)),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::InvalidPlan(PlanError::UnexpectedSource { pipeline: "cc" })
        ),
        "{err}"
    );

    // Theorem 3 boundary for operators: khop's unit-hop relaxation is
    // not split-invariant, and paths/tc recompute over the original
    // adjacency — all three are typed rejections on a physical split.
    let t = udt_transform(&g, 2, DumbWeight::Zero);
    let rep = Representation::Physical(&t);
    for pipeline in [
        Pipeline::khop(2),
        Pipeline::bounded_paths(5),
        Pipeline::triangle_count(),
    ] {
        let source = pipeline.needs_source().then_some(NodeId::new(0));
        let err = engine.run_pipeline(&rep, &pipeline, source).unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::InvalidPlan(PlanError::NotSplitInvariant { .. })
            ),
            "{}: expected NotSplitInvariant, got {err}",
            pipeline.name()
        );
    }
}
