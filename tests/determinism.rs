//! Determinism guarantees: BSP-mode runs are bit-identical across
//! repeated executions and host-parallelism levels, and generation is
//! seed-stable — the properties the benchmark harness relies on.

use tigr::engine::{run_monotone, FrontierMode, MonotoneProgram, PushOptions, SyncMode};
use tigr::graph::datasets;
use tigr::{NodeId, Representation, VirtualGraph};
use tigr_sim::{GpuConfig, GpuSimulator};

fn bsp_opts(worklist: bool) -> PushOptions {
    PushOptions {
        worklist,
        sort_frontier_by_degree: false,
        sync: SyncMode::Bsp,
        max_iterations: 100_000,
        frontier: FrontierMode::Auto,
    }
}

#[test]
fn bsp_runs_are_bit_identical_across_repeats_and_threads() {
    let g = datasets::by_name("pokec")
        .unwrap()
        .generate_weighted(8192, 77);
    let src = NodeId::new(0);
    let overlay = VirtualGraph::coalesced(&g, 10);

    let run = |host_threads: usize| {
        let sim = GpuSimulator::new(GpuConfig::default()).with_host_threads(host_threads);
        run_monotone(
            &sim,
            &Representation::Virtual {
                graph: &g,
                overlay: &overlay,
            },
            MonotoneProgram::SSSP,
            Some(src),
            &bsp_opts(true),
        )
    };

    let a = run(1);
    let b = run(1);
    let c = run(4);
    assert_eq!(a.values, b.values);
    assert_eq!(a.values, c.values);
    // Sequential replay is fully deterministic, metrics included.
    assert_eq!(a.report.total(), b.report.total());
    // Parallel replay preserves the schedule-independent quantities:
    // results, iteration structure, and launched warps. Trace details
    // like which lane logs a frontier-enqueue atomic are won by racing
    // threads (exactly as on a GPU), so instruction/transaction counts
    // may wiggle by a few parts per million.
    assert_eq!(a.report.num_iterations(), c.report.num_iterations());
    let (at, ct) = (a.report.total(), c.report.total());
    assert_eq!(at.warps, ct.warps);
    let drift =
        (at.instructions as f64 - ct.instructions as f64).abs() / at.instructions.max(1) as f64;
    assert!(drift < 1e-2, "instruction drift {drift}");
}

#[test]
fn relaxed_mode_converges_to_the_same_values_regardless_of_schedule() {
    // Relaxed metrics may differ run to run, but monotone fixpoints
    // cannot.
    let g = datasets::by_name("hollywood")
        .unwrap()
        .generate_weighted(8192, 78);
    let src = NodeId::new(1);
    let run = |threads: usize| {
        let sim = GpuSimulator::new(GpuConfig::default()).with_host_threads(threads);
        run_monotone(
            &sim,
            &Representation::Original(&g),
            MonotoneProgram::SSSP,
            Some(src),
            &PushOptions::default(),
        )
        .values
    };
    assert_eq!(run(1), run(8));
}

/// Frontier scheduling must be reproducible: for a fixed seed corpus of
/// (dataset, source) pairs, repeated runs — and runs at different host
/// parallelism — produce identical values, iteration counts, and edge
/// relaxation counts in every frontier mode. The next frontier is drained
/// from an atomic bitmap in ascending node order, so worker interleaving
/// cannot perturb the schedule.
#[test]
fn frontier_runs_are_deterministic_over_seed_corpus() {
    let corpus = [
        ("pokec", 101u64, 0u32),
        ("pokec", 202, 5),
        ("hollywood", 303, 1),
        ("orkut", 404, 7),
    ];
    for (name, seed, src) in corpus {
        let g = datasets::by_name(name)
            .unwrap()
            .generate_weighted(16384, seed);
        let src = NodeId::new(src);
        let overlay = VirtualGraph::coalesced(&g, 8);
        for mode in [
            FrontierMode::Auto,
            FrontierMode::Dense,
            FrontierMode::Sparse,
        ] {
            let opts = PushOptions {
                frontier: mode,
                ..bsp_opts(true)
            };
            let run = |host_threads: usize| {
                let sim = GpuSimulator::new(GpuConfig::default()).with_host_threads(host_threads);
                let orig = run_monotone(
                    &sim,
                    &Representation::Original(&g),
                    MonotoneProgram::SSSP,
                    Some(src),
                    &opts,
                );
                let virt = run_monotone(
                    &sim,
                    &Representation::Virtual {
                        graph: &g,
                        overlay: &overlay,
                    },
                    MonotoneProgram::SSSP,
                    Some(src),
                    &opts,
                );
                (orig, virt)
            };
            let (a_o, a_v) = run(1);
            let (b_o, b_v) = run(1);
            let (c_o, c_v) = run(4);
            for (a, b, c) in [(&a_o, &b_o, &c_o), (&a_v, &b_v, &c_v)] {
                let ctx = format!("{name}/seed {seed}/src {src}/{}", mode.label());
                assert_eq!(a.values, b.values, "{ctx}: values drift across repeats");
                assert_eq!(
                    a.values, c.values,
                    "{ctx}: values drift across host threads"
                );
                assert_eq!(
                    a.report.num_iterations(),
                    b.report.num_iterations(),
                    "{ctx}: iteration count drifts across repeats"
                );
                assert_eq!(
                    a.report.num_iterations(),
                    c.report.num_iterations(),
                    "{ctx}: iteration count drifts across host threads"
                );
                assert_eq!(
                    a.edges_touched, b.edges_touched,
                    "{ctx}: edges touched drift"
                );
                assert_eq!(
                    a.edges_touched, c.edges_touched,
                    "{ctx}: edges touched drift across host threads"
                );
            }
            // Original and virtual scheduling agree on the fixpoint too.
            assert_eq!(a_o.values, a_v.values, "{name}/{}", mode.label());
        }
    }
}

#[test]
fn dataset_generation_is_seed_stable() {
    let spec = datasets::by_name("orkut").unwrap();
    assert_eq!(spec.generate(8192, 5), spec.generate(8192, 5));
    assert_ne!(spec.generate(8192, 5), spec.generate(8192, 6));
}

#[test]
fn transformations_are_deterministic() {
    let g = datasets::by_name("pokec").unwrap().generate(8192, 9);
    let a = tigr::udt_transform(&g, 16, tigr::DumbWeight::Zero);
    let b = tigr::udt_transform(&g, 16, tigr::DumbWeight::Zero);
    assert_eq!(a.graph(), b.graph());
    let ov_a = VirtualGraph::coalesced(&g, 10);
    let ov_b = VirtualGraph::coalesced(&g, 10);
    assert_eq!(ov_a, ov_b);
}
