//! Integration tests of the online-mutation subsystem against the
//! acceptance bar: WAL replay recovers the longest valid prefix at
//! every byte-boundary truncation of the tail record, pinned snapshots
//! are isolated from later mutations, the compacted artifact answers
//! {bfs, sssp, cc, pr} byte-equal to preparing the final edge list from
//! scratch across every backend, and concurrent mutate+query load leaks
//! no overlay generations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use tigr::core::{GraphStore, MutableGraph, MutationOp, PrepareSpec, PreparedGraph, Wal};
use tigr::engine::{run_monotone_view, Algo, BackendKind, Pipeline};
use tigr::{Edge, Engine, MonotoneProgram, NodeId};

/// A unique scratch directory per call (no timestamps: process id +
/// counter keep parallel test binaries apart).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tigr-mutation-it-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Decodes a generated `(kind, a, b, w)` tuple into a mutation op.
fn op_from(kind: u8, a: u32, b: u32, w: u32) -> MutationOp {
    match kind % 4 {
        0 => MutationOp::AddEdge { u: a, v: b, w },
        1 => MutationOp::RemoveEdge { u: a, v: b },
        2 => MutationOp::AddNode { nodes: a + 1 },
        _ => MutationOp::SetWeight { u: a, v: b, w },
    }
}

/// Writes `ops` into a fresh WAL and returns the log's bytes plus the
/// byte offset where each record starts (record `i` spans
/// `starts[i]..starts[i + 1]`, the last one runs to the end).
fn written_wal(dir: &std::path::Path, ops: &[MutationOp]) -> (Vec<u8>, Vec<usize>) {
    let path = dir.join("log.wal");
    let (mut wal, recovery) = Wal::open(&path).unwrap();
    assert!(recovery.ops.is_empty() && recovery.truncated_bytes == 0);
    wal.append_batch(ops).unwrap();
    drop(wal);
    let bytes = std::fs::read(&path).unwrap();
    // Record layout: 20-byte header + encoded payload. Derive the file
    // header length from the total instead of hard-coding it.
    let record_lens: Vec<usize> = ops.iter().map(|op| 20 + op.encode().len()).collect();
    let header = bytes.len() - record_lens.iter().sum::<usize>();
    let mut starts = Vec::with_capacity(ops.len());
    let mut off = header;
    for len in record_lens {
        starts.push(off);
        off += len;
    }
    assert_eq!(off, bytes.len());
    (bytes, starts)
}

/// Replays a (possibly truncated) WAL image and asserts it recovers
/// exactly the first `expect` ops, stays appendable, and reports the
/// discarded tail bytes.
fn assert_recovers(dir: &std::path::Path, image: &[u8], ops: &[MutationOp], expect: usize) {
    let path = dir.join("cut.wal");
    std::fs::write(&path, image).unwrap();
    let (mut wal, recovery) = Wal::open(&path).unwrap();
    let recovered: Vec<MutationOp> = recovery.ops.iter().map(|&(_, op)| op).collect();
    assert_eq!(
        recovered,
        ops[..expect],
        "prefix diverged at cut {}",
        image.len()
    );
    let seqs: Vec<u64> = recovery.ops.iter().map(|&(seq, _)| seq).collect();
    assert_eq!(seqs, (1..=expect as u64).collect::<Vec<_>>());
    assert_eq!(wal.len(), expect as u64);
    // The recovered log accepts new records where the tail was cut.
    wal.append_batch(&[MutationOp::AddNode { nodes: 1 }])
        .unwrap();
    let (_, reread) = Wal::open(&path).unwrap();
    assert_eq!(reread.ops.len(), expect + 1);
    assert_eq!(reread.truncated_bytes, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash recovery: for a random mutation log, truncating the file at
    /// every byte boundary of the tail record recovers exactly the
    /// records before it — never a panic, never a torn op.
    #[test]
    fn wal_replay_recovers_the_longest_valid_prefix_at_every_tail_cut(
        raw in vec((0..4u8, 0..40u32, 0..40u32, 1..16u32), 1..12),
    ) {
        let ops: Vec<MutationOp> =
            raw.into_iter().map(|(k, a, b, w)| op_from(k, a, b, w)).collect();
        let dir = scratch_dir("proptest");
        let (bytes, starts) = written_wal(&dir, &ops);
        let tail_start = *starts.last().unwrap();
        for cut in tail_start..bytes.len() {
            assert_recovers(&dir, &bytes[..cut], &ops, ops.len() - 1);
        }
        assert_recovers(&dir, &bytes, &ops, ops.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The committed regression corpus (see
/// `mutation_integration.proptest-regressions`): op logs that stress
/// replay edge cases — a single record, duplicate no-op adds, the
/// maximum-width record, and interleaved removes — each truncated at
/// *every* byte of the file, not just the tail record.
#[test]
fn wal_replay_regression_corpus() {
    let corpus: Vec<Vec<MutationOp>> = vec![
        vec![MutationOp::AddNode { nodes: 1 }],
        vec![
            MutationOp::AddEdge { u: 0, v: 1, w: 1 },
            MutationOp::AddEdge { u: 0, v: 1, w: 1 },
            MutationOp::RemoveEdge { u: 0, v: 1 },
        ],
        vec![
            MutationOp::AddEdge {
                u: u32::MAX,
                v: u32::MAX,
                w: u32::MAX,
            },
            MutationOp::SetWeight {
                u: u32::MAX,
                v: 0,
                w: u32::MAX,
            },
        ],
        vec![
            MutationOp::AddNode { nodes: 9 },
            MutationOp::RemoveEdge { u: 3, v: 3 },
            MutationOp::AddEdge { u: 3, v: 3, w: 2 },
            MutationOp::RemoveEdge { u: 3, v: 3 },
        ],
    ];
    for ops in corpus {
        let dir = scratch_dir("corpus");
        let (bytes, starts) = written_wal(&dir, &ops);
        for cut in 0..bytes.len() {
            // Records wholly contained in the cut image survive replay.
            let whole = starts
                .iter()
                .enumerate()
                .take_while(|&(i, _)| starts.get(i + 1).copied().unwrap_or(bytes.len()) <= cut)
                .count();
            assert_recovers(&dir, &bytes[..cut], &ops, whole);
        }
        assert_recovers(&dir, &bytes, &ops, ops.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Opens a weighted RMAT base as a mutable graph over a cache-less
/// store (ephemeral WAL).
fn mutable_fixture(tag: &str, seed: u64) -> Arc<MutableGraph> {
    let spec = PrepareSpec::generated(tag, seed).with_uniform_weights(1, 32, seed + 1);
    let prepared = GraphStore::disabled().prepare(&spec).unwrap();
    Arc::new(MutableGraph::open(GraphStore::disabled(), prepared).unwrap())
}

#[test]
fn pinned_snapshots_are_isolated_from_later_mutations() {
    let mutable = mutable_fixture("rmat:9:8", 11);
    let before = mutable.snapshot();
    let nodes = before.num_nodes() as u32;
    let engine = Engine::default()
        .with_backend(BackendKind::Sequential)
        .with_device_memory(u64::MAX);
    let baseline = engine
        .run_prepared(before.base(), MonotoneProgram::BFS, Some(NodeId::new(0)))
        .unwrap()
        .values;

    mutable
        .apply(&[
            MutationOp::AddNode { nodes: nodes + 1 },
            MutationOp::AddEdge {
                u: 0,
                v: nodes,
                w: 1,
            },
        ])
        .unwrap();
    let after = mutable.snapshot();

    // The pre-mutation snapshot still answers over the old world...
    assert!(before.is_clean());
    assert_eq!(before.num_nodes(), nodes as usize);
    assert!(before.epoch() < after.epoch());
    let replay = engine
        .run_prepared(before.base(), MonotoneProgram::BFS, Some(NodeId::new(0)))
        .unwrap()
        .values;
    assert_eq!(replay, baseline);

    // ...while the post-mutation snapshot sees the new node, and its
    // zero-copy view agrees with the materialized merged graph.
    assert_eq!(after.num_nodes(), nodes as usize + 1);
    let viewed = run_monotone_view(
        &after.view().expect("dirty snapshot has a view"),
        MonotoneProgram::BFS,
        Some(NodeId::new(0)),
    )
    .values;
    let merged = after.merged().unwrap();
    let materialized = engine
        .run_prepared(&merged, MonotoneProgram::BFS, Some(NodeId::new(0)))
        .unwrap()
        .values;
    assert_eq!(viewed, materialized);
    assert_eq!(viewed[..nodes as usize], baseline[..]);
    assert_eq!(viewed[nodes as usize], 1, "new leaf hangs off the source");
}

/// Runs `algo` over `prepared` on `backend` and returns the wire
/// values (PR ranks as bit patterns).
fn pipeline_values(prepared: &PreparedGraph, algo: Algo, backend: BackendKind) -> Vec<u32> {
    let engine = Engine::default()
        .with_backend(backend)
        .with_device_memory(u64::MAX);
    let pipeline = Pipeline::for_algo(algo, None).unwrap();
    let source = algo.needs_source().then(|| NodeId::new(0));
    engine
        .run_prepared_pipeline(prepared, &pipeline, source)
        .unwrap()
        .values
}

/// The differential guarantee behind compaction: replayed WAL →
/// compacted artifact → query answers byte-equal to preparing the
/// final edge list from scratch, across {bfs, sssp, cc, pr} ×
/// {Sequential, CpuPool, WarpSim}.
#[test]
fn compacted_artifact_matches_a_from_scratch_prepare() {
    let mutable = mutable_fixture("rmat:9:8", 5);
    let base = Arc::clone(mutable.snapshot().base());
    let nodes = base.graph().num_nodes() as u32;

    // Pick two base edges whose (src, dst) pair occurs exactly once so
    // remove/set-weight have an unambiguous from-scratch mirror.
    let edges: Vec<Edge> = base.graph().edges().collect();
    let unique: Vec<Edge> = edges
        .iter()
        .filter(|e| {
            edges
                .iter()
                .filter(|o| o.src == e.src && o.dst == e.dst)
                .count()
                == 1
        })
        .take(2)
        .copied()
        .collect();
    let [removed, reweighted] = unique[..] else {
        panic!("fixture has no unique edges")
    };

    let ops = [
        MutationOp::AddNode { nodes: nodes + 3 },
        MutationOp::AddEdge {
            u: nodes,
            v: nodes + 1,
            w: 3,
        },
        MutationOp::AddEdge {
            u: nodes + 1,
            v: nodes + 2,
            w: 4,
        },
        MutationOp::AddEdge {
            u: 0,
            v: nodes,
            w: 2,
        },
        MutationOp::AddEdge {
            u: nodes + 2,
            v: 0,
            w: 5,
        },
        MutationOp::RemoveEdge {
            u: removed.src.index() as u32,
            v: removed.dst.index() as u32,
        },
        MutationOp::SetWeight {
            u: reweighted.src.index() as u32,
            v: reweighted.dst.index() as u32,
            w: 17,
        },
    ];
    let summary = mutable.apply(&ops).unwrap();
    assert_eq!(summary.applied, ops.len());
    let stats = mutable.compact().unwrap();
    assert_eq!(stats.delta_edges_after, 0);
    let compacted = mutable.snapshot();
    assert!(compacted.is_clean());

    // The from-scratch mirror: edit a plain edge list the way the ops
    // say, then prepare it through the same derived-view plan.
    let mut final_edges = edges;
    let pos = final_edges
        .iter()
        .position(|e| e.src == removed.src && e.dst == removed.dst)
        .unwrap();
    final_edges.remove(pos);
    for e in &mut final_edges {
        if e.src == reweighted.src && e.dst == reweighted.dst {
            e.weight = 17;
        }
    }
    final_edges.push(Edge::new(NodeId::new(nodes), NodeId::new(nodes + 1), 3));
    final_edges.push(Edge::new(NodeId::new(nodes + 1), NodeId::new(nodes + 2), 4));
    final_edges.push(Edge::new(NodeId::new(0), NodeId::new(nodes), 2));
    final_edges.push(Edge::new(NodeId::new(nodes + 2), NodeId::new(0), 5));
    let mut builder = tigr::CsrBuilder::from_edges(nodes as usize + 3, final_edges);
    builder.force_weighted(true);
    let reference = GraphStore::disabled()
        .materialize(builder.build(), mutable.plan())
        .unwrap();

    for algo in [Algo::Bfs, Algo::Sssp, Algo::Cc, Algo::Pr] {
        for backend in [
            BackendKind::Sequential,
            BackendKind::CpuPool,
            BackendKind::WarpSim,
        ] {
            let got = pipeline_values(compacted.base(), algo, backend);
            let want = pipeline_values(&reference, algo, backend);
            assert_eq!(
                tigr::server::checksum(&got),
                tigr::server::checksum(&want),
                "{algo:?}/{backend:?}: checksum diverged"
            );
            assert_eq!(got, want, "{algo:?}/{backend:?}: values diverged");
        }
    }
}

/// Concurrent mutate + query stress: every query thread pins its own
/// snapshot mid-mutation, no run panics or loses its epoch, and once
/// the snapshots drop the overlay generations are freed (no leak).
#[test]
fn concurrent_mutation_and_queries_leak_no_epochs() {
    let mutable = mutable_fixture("rmat:8:8", 29);
    let nodes = mutable.snapshot().num_nodes() as u32;

    let mutator = {
        let mutable = Arc::clone(&mutable);
        std::thread::spawn(move || {
            for i in 0..40u32 {
                mutable
                    .apply(&[
                        MutationOp::AddNode {
                            nodes: nodes + i + 1,
                        },
                        MutationOp::AddEdge {
                            u: i % nodes,
                            v: nodes + i,
                            w: 1 + (i % 7),
                        },
                    ])
                    .unwrap();
                if i % 16 == 15 {
                    mutable.compact().unwrap();
                }
            }
        })
    };
    let readers: Vec<_> = (0..4u32)
        .map(|r| {
            let mutable = Arc::clone(&mutable);
            std::thread::spawn(move || {
                for q in 0..25u32 {
                    let snapshot = mutable.snapshot();
                    let values = match snapshot.view() {
                        Some(view) => {
                            run_monotone_view(
                                &view,
                                MonotoneProgram::BFS,
                                Some(NodeId::new((r * 25 + q) % nodes)),
                            )
                            .values
                        }
                        None => {
                            Engine::default()
                                .with_backend(BackendKind::Sequential)
                                .with_device_memory(u64::MAX)
                                .run_prepared(
                                    snapshot.base(),
                                    MonotoneProgram::BFS,
                                    Some(NodeId::new((r * 25 + q) % nodes)),
                                )
                                .unwrap()
                                .values
                        }
                    };
                    assert_eq!(values.len(), snapshot.num_nodes());
                    assert_eq!(values[((r * 25 + q) % nodes) as usize], 0);
                }
            })
        })
        .collect();
    mutator.join().unwrap();
    for reader in readers {
        reader.join().unwrap();
    }

    // All pins are dropped; nothing but the mutable graph's own cached
    // snapshot may keep a generation alive.
    assert!(
        mutable.live_snapshots() <= 1,
        "epochs leaked: {} snapshots still alive",
        mutable.live_snapshots()
    );
    let final_snapshot = mutable.snapshot();
    assert_eq!(final_snapshot.num_nodes(), nodes as usize + 40);
}
