//! End-to-end integration: every analytic × every representation on a
//! realistic power-law analog, validated against the sequential oracles.

use tigr::core::k_select;
use tigr::engine::{bc, pr, FrontierMode, MonotoneProgram, PushOptions, SyncMode};
use tigr::graph::datasets;
use tigr::graph::properties as oracle;
use tigr::graph::reverse::transpose;
use tigr::{DumbWeight, Engine, NodeId, Representation, VirtualGraph};

/// A small but genuinely irregular analog of Pokec.
fn analog() -> (tigr::Csr, tigr::Csr) {
    let spec = datasets::by_name("pokec").unwrap();
    (spec.generate(4096, 7), spec.generate_weighted(4096, 7))
}

fn engine() -> Engine {
    Engine::parallel(tigr::GpuConfig::default())
}

#[test]
fn sssp_agrees_across_all_representations() {
    let (_, g) = analog();
    let src = NodeId::new(0);
    let expect = oracle::dijkstra(&g, src);
    let engine = engine();

    let base = engine.sssp(&Representation::Original(&g), src).unwrap();
    assert_eq!(base.values, expect);

    let k = k_select::physical_k(&g);
    let t = tigr::udt_transform(&g, k, DumbWeight::Zero);
    let phys = engine.sssp(&Representation::Physical(&t), src).unwrap();
    assert_eq!(t.project_values(&phys.values), expect);

    for overlay in [VirtualGraph::new(&g, 10), VirtualGraph::coalesced(&g, 10)] {
        let v = engine
            .sssp(
                &Representation::Virtual {
                    graph: &g,
                    overlay: &overlay,
                },
                src,
            )
            .unwrap();
        assert_eq!(v.values, expect);
    }
}

#[test]
fn bfs_and_sswp_agree_with_oracles() {
    let (g, w) = analog();
    let src = NodeId::new(3);
    let engine = engine();
    let overlay = VirtualGraph::coalesced(&g, 10);

    let bfs = engine
        .bfs(
            &Representation::Virtual {
                graph: &g,
                overlay: &overlay,
            },
            src,
        )
        .unwrap();
    let expect: Vec<u32> = oracle::bfs_levels(&g, src)
        .into_iter()
        .map(|l| if l == usize::MAX { u32::MAX } else { l as u32 })
        .collect();
    assert_eq!(bfs.values, expect);

    let overlay_w = VirtualGraph::coalesced(&w, 10);
    let sswp = engine
        .sswp(
            &Representation::Virtual {
                graph: &w,
                overlay: &overlay_w,
            },
            src,
        )
        .unwrap();
    assert_eq!(sswp.values, oracle::widest_path(&w, src));
}

#[test]
fn cc_component_structure_is_preserved() {
    // Symmetrize the analog so weak components are well-defined.
    let (g, _) = analog();
    let mut b = tigr::CsrBuilder::new(g.num_nodes());
    b.symmetric(true);
    for e in g.edges() {
        b.add(tigr::Edge::unweighted(e.src, e.dst));
    }
    let sym = b.build();
    let expect = oracle::connected_components(&sym);

    let engine = engine();
    let overlay = VirtualGraph::new(&sym, 10);
    let out = engine
        .cc(&Representation::Virtual {
            graph: &sym,
            overlay: &overlay,
        })
        .unwrap();
    assert_eq!(out.values, expect);

    let t = tigr::udt_transform(&sym, 32, DumbWeight::Unweighted);
    let phys = engine.cc(&Representation::Physical(&t)).unwrap();
    assert_eq!(t.project_values(&phys.values), expect);
}

#[test]
fn pagerank_push_and_pull_agree_with_power_iteration() {
    let (g, _) = analog();
    let expect = oracle::pagerank(&g, 0.85, 40);
    let engine = engine();
    let opts = pr::PrOptions {
        max_iterations: 40,
        tolerance: 1e-7,
        ..pr::PrOptions::default()
    };

    let overlay = VirtualGraph::coalesced(&g, 10);
    let push = engine
        .pagerank(
            &Representation::Virtual {
                graph: &g,
                overlay: &overlay,
            },
            &pr::out_degrees(&g),
            &opts,
        )
        .unwrap();

    let rev = transpose(&g);
    let overlay_rev = VirtualGraph::new(&rev, 10);
    let pull = engine
        .pagerank(
            &Representation::Virtual {
                graph: &rev,
                overlay: &overlay_rev,
            },
            &pr::out_degrees(&g),
            &pr::PrOptions {
                mode: pr::PrMode::Pull,
                ..opts
            },
        )
        .unwrap();

    for (v, &want) in expect.iter().enumerate() {
        assert!((push.ranks[v] as f64 - want).abs() < 1e-4, "push rank[{v}]");
        assert!((pull.ranks[v] as f64 - want).abs() < 1e-4, "pull rank[{v}]");
    }
}

#[test]
fn bc_matches_brandes_on_virtual_representation() {
    let (g, _) = analog();
    let src = NodeId::new(0);
    let mut expect = vec![0.0f64; g.num_nodes()];
    oracle::brandes_accumulate(&g, src, &mut expect);

    let overlay = VirtualGraph::coalesced(&g, 10);
    let out: bc::BcOutput = engine()
        .betweenness(
            &Representation::Virtual {
                graph: &g,
                overlay: &overlay,
            },
            src,
        )
        .unwrap();
    for (v, &want) in expect.iter().enumerate() {
        assert!(
            (out.centrality[v] as f64 - want).abs() < 1e-2 * (1.0 + want.abs()),
            "bc[{v}]: {} vs {}",
            out.centrality[v],
            expect[v]
        );
    }
}

#[test]
fn table8_shape_holds_end_to_end() {
    // The three headline effects of the paper's case study, end to end:
    // physical costs extra iterations, virtual does not, both raise warp
    // efficiency.
    let (_, g) = analog();
    let src = NodeId::new(0);
    let engine = Engine::new(tigr::GpuConfig::default()).with_options(PushOptions {
        worklist: false,
        sort_frontier_by_degree: false,
        sync: SyncMode::Bsp,
        max_iterations: 10_000,
        frontier: FrontierMode::Auto,
    });

    let base = engine.sssp(&Representation::Original(&g), src).unwrap();
    let t = tigr::udt_transform(&g, 8, DumbWeight::Zero);
    let phys = engine.sssp(&Representation::Physical(&t), src).unwrap();
    let overlay = VirtualGraph::new(&g, 8);
    let virt = engine
        .sssp(
            &Representation::Virtual {
                graph: &g,
                overlay: &overlay,
            },
            src,
        )
        .unwrap();

    assert!(phys.report.num_iterations() > base.report.num_iterations());
    assert_eq!(virt.report.num_iterations(), base.report.num_iterations());
    assert!(phys.report.warp_efficiency() > base.report.warp_efficiency());
    assert!(virt.report.warp_efficiency() > base.report.warp_efficiency());
    assert!(virt.report.total_cycles() < base.report.total_cycles());
}

#[test]
fn every_analytic_runs_on_the_engine_facade() {
    let (g, w) = analog();
    let engine = engine();
    let src = NodeId::new(0);
    let rep_g = Representation::Original(&g);
    let rep_w = Representation::Original(&w);

    assert!(engine.bfs(&rep_g, src).unwrap().converged);
    assert!(engine.sssp(&rep_w, src).unwrap().converged);
    assert!(engine.sswp(&rep_w, src).unwrap().converged);
    assert!(engine.cc(&rep_g).unwrap().converged);
    assert!(!engine
        .pagerank(&rep_g, &pr::out_degrees(&g), &pr::PrOptions::default())
        .unwrap()
        .ranks
        .is_empty());
    assert!(!engine
        .betweenness(&rep_g, src)
        .unwrap()
        .centrality
        .is_empty());
}

#[test]
fn monotone_program_enum_runs_via_generic_entry() {
    let (g, _) = analog();
    let engine = engine();
    let out = engine
        .run(&Representation::Original(&g), MonotoneProgram::CC, None)
        .unwrap();
    assert_eq!(out.values.len(), g.num_nodes());
}
