//! All frameworks must agree on *results* — they differ only in cost.
//! This is the cross-implementation differential test: MW, CuSha,
//! Gunrock, the Tigr engine (all representations), and the CPU path all
//! compute the same fixpoints.

use tigr::baselines::{Baseline, CushaMode};
use tigr::engine::{run_cpu, MonotoneProgram};
use tigr::graph::datasets;
use tigr::graph::properties as oracle;
use tigr::{Engine, NodeId, Representation, VirtualGraph};
use tigr_sim::GpuSimulator;

fn fixture() -> tigr::Csr {
    datasets::by_name("hollywood")
        .unwrap()
        .generate_weighted(8192, 3)
}

#[test]
fn five_implementations_one_sssp_answer() {
    let g = fixture();
    let src = NodeId::new(0);
    let expect = oracle::dijkstra(&g, src);
    let sim = GpuSimulator::new_parallel(tigr::GpuConfig::default());

    for b in [
        Baseline::MaximumWarp { width: Some(8) },
        Baseline::CuSha {
            mode: CushaMode::GShards,
        },
        Baseline::CuSha {
            mode: CushaMode::ConcatenatedWindows,
        },
        Baseline::Gunrock,
    ] {
        let out = b
            .run_monotone(&sim, &g, MonotoneProgram::SSSP, Some(src), None)
            .unwrap();
        assert_eq!(out.values, expect, "{} disagrees", b.name());
    }

    let engine = Engine::parallel(tigr::GpuConfig::default());
    let overlay = VirtualGraph::coalesced(&g, 10);
    let tigr_out = engine
        .sssp(
            &Representation::Virtual {
                graph: &g,
                overlay: &overlay,
            },
            src,
        )
        .unwrap();
    assert_eq!(tigr_out.values, expect, "Tigr-V+ disagrees");

    let cpu = run_cpu(&g, MonotoneProgram::SSSP, Some(src), 4);
    assert_eq!(cpu.values, expect, "CPU path disagrees");
}

#[test]
fn all_frameworks_agree_on_pagerank() {
    let g = datasets::by_name("pokec").unwrap().generate(8192, 5);
    let sim = GpuSimulator::new_parallel(tigr::GpuConfig::default());
    let opts = tigr::engine::PrOptions {
        max_iterations: 30,
        tolerance: 1e-7,
        ..tigr::engine::PrOptions::default()
    };
    let expect = oracle::pagerank(&g, 0.85, 30);

    for b in Baseline::ALL {
        let b = match b {
            // Pin MW's width: the auto sweep is unnecessary for a
            // result-equality test.
            Baseline::MaximumWarp { .. } => Baseline::MaximumWarp { width: Some(8) },
            other => other,
        };
        let out = b.run_pagerank(&sim, &g, &opts, None).unwrap();
        for (i, (&got, &want)) in out.ranks.iter().zip(&expect).enumerate() {
            assert!(
                (got as f64 - want).abs() < 1e-4,
                "{}: rank[{i}] {got} vs {want}",
                b.name()
            );
        }
    }
}

#[test]
fn frameworks_differ_in_cost_not_in_answers() {
    // Sanity on the evaluation premise: identical values, different
    // cycle counts.
    let g = fixture();
    let src = NodeId::new(0);
    let sim = GpuSimulator::new_parallel(tigr::GpuConfig::default());

    let mw = Baseline::MaximumWarp { width: Some(4) }
        .run_monotone(&sim, &g, MonotoneProgram::BFS, Some(src), None)
        .unwrap();
    let gunrock = Baseline::Gunrock
        .run_monotone(&sim, &g, MonotoneProgram::BFS, Some(src), None)
        .unwrap();
    assert_eq!(mw.values, gunrock.values);
    assert_ne!(
        mw.report.total_cycles(),
        gunrock.report.total_cycles(),
        "cost models should distinguish the strategies"
    );
}
