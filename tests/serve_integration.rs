//! Integration tests of the serving subsystem against the acceptance
//! bar: 64 concurrent in-flight queries over an ephemeral TCP socket on
//! a scale-16 RMAT graph with every answer byte-equal to a direct
//! sequential engine run, typed queue-full rejections under a tiny
//! admission queue, cancelled runs leaving no partial state observable
//! through the cache, and the `stats` verb reporting it all.

use std::sync::{Arc, Barrier, OnceLock};

use tigr::core::{GraphStore, PrepareSpec, PreparedGraph};
use tigr::engine::BackendKind;
use tigr::server::{
    Algo, Client, ClientError, ErrorCode, QueryRequest, Server, ServerAddr, ServerConfig,
    ServerCore,
};
use tigr::{Engine, MonotoneProgram, NodeId};

const MIX: [Algo; 4] = [Algo::Bfs, Algo::Sssp, Algo::Sswp, Algo::Cc];

/// The scale-16 RMAT analog every test shares (prepared once; the
/// server only ever reads it through an `Arc`).
fn shared_graph() -> Arc<PreparedGraph> {
    static GRAPH: OnceLock<Arc<PreparedGraph>> = OnceLock::new();
    Arc::clone(GRAPH.get_or_init(|| {
        let spec = PrepareSpec::generated("rmat:16:16", 2018).with_uniform_weights(1, 64, 2018);
        Arc::new(GraphStore::disabled().prepare(&spec).unwrap())
    }))
}

/// Sixteen sources spread across the id space.
fn sources(prepared: &PreparedGraph) -> Vec<u32> {
    let stride = (prepared.graph().num_nodes() / 16).max(1) as u32;
    (0..16u32).map(|i| i * stride).collect()
}

/// What `tigr run <algo> --backend sequential` would print: a direct
/// single-threaded engine run with the server's exact plan.
fn expected_values(prepared: &PreparedGraph, algo: Algo, source: Option<u32>) -> Vec<u32> {
    let engine = Engine::default()
        .with_backend(BackendKind::Sequential)
        .with_device_memory(u64::MAX);
    let prog = match algo {
        Algo::Bfs => MonotoneProgram::BFS,
        Algo::Sssp => MonotoneProgram::SSSP,
        Algo::Sswp => MonotoneProgram::SSWP,
        Algo::Cc => MonotoneProgram::CC,
        Algo::Khop => MonotoneProgram::KHOP,
        other => unreachable!("{other:?}: monotone analytics only"),
    };
    let out = engine
        .run_prepared(prepared, prog, source.map(NodeId::new))
        .unwrap();
    match prepared.transformed() {
        Some(t) => t.project_values(&out.values),
        None => out.values,
    }
}

#[test]
fn sixty_four_concurrent_queries_match_sequential_runs() {
    let prepared = shared_graph();
    let sources = sources(&prepared);
    let core = ServerCore::new(ServerConfig {
        workers: 4,
        queue_capacity: 128,
        cache_capacity: 256,
        default_deadline_ms: None,
        executors: 0,
        kernel_threads: 1,
        batch_max: 8,
        batch_wait_us: 0,
        compact_threshold: 0,
    });
    core.add_graph("rmat16", Arc::clone(&prepared));
    let server = Server::bind_tcp(core, "127.0.0.1:0").unwrap();
    let addr = match server.addr() {
        ServerAddr::Tcp(a) => a.to_string(),
        other => panic!("{other:?}"),
    };

    // 64 distinct (algo, source) cells, one connection each, all
    // released at once so all 64 are in flight together.
    let barrier = Arc::new(Barrier::new(64));
    let handles: Vec<_> = (0..64usize)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let algo = MIX[i / 16];
            // CC is global: the protocol rejects a source for it, so its
            // 16 cells are deliberately identical concurrent queries.
            let source = (algo != Algo::Cc).then(|| sources[i % 16]);
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).unwrap();
                barrier.wait();
                let mut query = QueryRequest::new("rmat16", algo, source);
                query.include_values = true;
                let r = client.query(query).unwrap();
                (algo, source, r)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (algo, source, r) in results {
        let expect = expected_values(&prepared, algo, source);
        assert_eq!(r.nodes as usize, expect.len());
        assert_eq!(
            r.values.as_deref(),
            Some(expect.as_slice()),
            "{}/{source:?}: served values diverged from the sequential run",
            algo.label()
        );
    }

    let mut client = Client::connect_tcp(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.received, 64);
    assert_eq!(stats.completed, 64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.workers, 4);
    assert!(stats.p95_us >= stats.p50_us);
    server.shutdown();
}

#[test]
fn overflowing_the_admission_queue_rejects_with_typed_errors() {
    let prepared = shared_graph();
    let sources = sources(&prepared);
    // Batching stays on: a typed queue-full rejection must survive
    // workers draining the queue in batches.
    let core = ServerCore::new(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        cache_capacity: 0,
        default_deadline_ms: None,
        executors: 0,
        kernel_threads: 1,
        batch_max: 8,
        batch_wait_us: 0,
        compact_threshold: 0,
    });
    core.add_graph("rmat16", Arc::clone(&prepared));

    let barrier = Arc::new(Barrier::new(24));
    let handles: Vec<_> = (0..24usize)
        .map(|i| {
            let core = Arc::clone(&core);
            let barrier = Arc::clone(&barrier);
            let source = sources[i % sources.len()];
            std::thread::spawn(move || {
                let mut client = Client::local(core);
                barrier.wait();
                client.query(QueryRequest::new("rmat16", Algo::Sssp, Some(source)))
            })
        })
        .collect();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for h in handles {
        match h.join().unwrap() {
            Ok(r) => {
                completed += 1;
                let expect = expected_values(&prepared, Algo::Sssp, r.source);
                assert_eq!(r.checksum, tigr::server::checksum(&expect));
            }
            Err(ClientError::Protocol(p)) => {
                assert_eq!(p.code, ErrorCode::QueueFull, "{p:?}");
                assert!(!p.message.is_empty());
                rejected += 1;
            }
            Err(other) => panic!("{other}"),
        }
    }
    assert_eq!(completed + rejected, 24);
    assert!(
        rejected >= 1,
        "24 racing clients never overflowed a 2-slot queue"
    );

    let mut client = Client::local(Arc::clone(&core));
    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed, completed);
    core.shutdown();
}

/// Satellite: a deadline-cancelled SSSP must leave no partially-written
/// state observable through a subsequent cached query — the next query
/// is a cache miss (cancelled runs are never inserted) and its values
/// are the complete sequential answer.
#[test]
fn cancelled_sssp_leaves_no_partial_state_in_the_cache() {
    let prepared = shared_graph();
    let source = sources(&prepared)[3];
    let core = ServerCore::new(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 64,
        default_deadline_ms: None,
        executors: 0,
        kernel_threads: 1,
        batch_max: 8,
        batch_wait_us: 0,
        compact_threshold: 0,
    });
    core.add_graph("rmat16", Arc::clone(&prepared));
    let mut client = Client::local(core);

    // A scale-16 SSSP takes ~10ms sequentially; a 1ms deadline fires at
    // an early iteration boundary, after partial distances exist
    // internally.
    let mut doomed = QueryRequest::new("rmat16", Algo::Sssp, Some(source));
    doomed.deadline_ms = Some(1);
    match client.query(doomed) {
        Err(ClientError::Protocol(p)) => assert_eq!(p.code, ErrorCode::DeadlineExceeded, "{p:?}"),
        other => panic!("1ms SSSP unexpectedly finished: {other:?}"),
    }

    let full = client
        .query(QueryRequest::new("rmat16", Algo::Sssp, Some(source)))
        .unwrap();
    assert!(
        !full.cached,
        "cancelled run leaked a cache entry for source {source}"
    );
    let expect = expected_values(&prepared, Algo::Sssp, Some(source));
    assert_eq!(full.checksum, tigr::server::checksum(&expect));

    let warm = client
        .query(QueryRequest::new("rmat16", Algo::Sssp, Some(source)))
        .unwrap();
    assert!(warm.cached);
    assert_eq!(warm.checksum, full.checksum);
}

/// Satellite: mixed-algorithm traffic is partitioned into compatible
/// batches — a burst of BFS/SSSP/SSWP/CC queries released while the
/// single worker is pinned by a PageRank blocker must come back as one
/// fused batch per algorithm (CC's identical deadline-free queries
/// additionally coalesce onto one lane), every answer byte-equal to
/// the sequential reference.
#[test]
fn mixed_algorithm_burst_partitions_into_per_algorithm_batches() {
    let prepared = shared_graph();
    let sources = sources(&prepared);
    let core = ServerCore::new(ServerConfig {
        workers: 1,
        queue_capacity: 128,
        cache_capacity: 0,
        default_deadline_ms: None,
        executors: 0,
        kernel_threads: 1,
        batch_max: 8,
        batch_wait_us: 0,
        compact_threshold: 0,
    });
    core.add_graph("rmat16", Arc::clone(&prepared));

    // PageRank never enters the batch path; it pins the lone worker
    // long enough for the whole burst to queue up behind it.
    let blocker = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || {
            Client::local(core)
                .query(QueryRequest::new("rmat16", Algo::Pr, None))
                .unwrap()
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));

    let barrier = Arc::new(Barrier::new(16));
    let handles: Vec<_> = (0..16usize)
        .map(|i| {
            let core = Arc::clone(&core);
            let barrier = Arc::clone(&barrier);
            let algo = MIX[i % 4];
            let source = (algo != Algo::Cc).then(|| sources[i / 4]);
            std::thread::spawn(move || {
                let mut client = Client::local(core);
                barrier.wait();
                let r = client
                    .query(QueryRequest::new("rmat16", algo, source))
                    .unwrap();
                (algo, source, r)
            })
        })
        .collect();
    for h in handles {
        let (algo, source, r) = h.join().unwrap();
        let expect = expected_values(&prepared, algo, source);
        assert_eq!(
            r.checksum,
            tigr::server::checksum(&expect),
            "{}/{source:?} diverged inside a mixed batch",
            algo.label()
        );
        assert!(!r.cached);
    }
    blocker.join().unwrap();

    let stats = Client::local(Arc::clone(&core)).stats().unwrap();
    assert_eq!(stats.completed, 17);
    assert_eq!(stats.failed, 0);
    // 16 monotone queries in 4 single-algorithm batches of 4 — the
    // partitioner must neither fuse across algorithms (which would
    // break the compatibility rule) nor fall back to singletons.
    assert_eq!(stats.batched_queries, 16);
    assert_eq!(stats.batches, 4, "burst was not fused per algorithm");
    assert_eq!(stats.max_batch, 4);
    core.shutdown();
}

/// Satellite: a deadline-cancelled query sharing a batch with a
/// healthy one poisons only its own lane — its cell is never cached,
/// while its batchmate's answer is correct and cached.
#[test]
fn cancelled_query_in_a_batch_poisons_only_its_own_lane() {
    let prepared = shared_graph();
    let sources = sources(&prepared);
    let (doomed_src, healthy_src) = (sources[5], sources[9]);
    let core = ServerCore::new(ServerConfig {
        workers: 1,
        queue_capacity: 16,
        cache_capacity: 64,
        default_deadline_ms: None,
        executors: 0,
        kernel_threads: 1,
        batch_max: 8,
        batch_wait_us: 0,
        compact_threshold: 0,
    });
    core.add_graph("rmat16", Arc::clone(&prepared));

    // Pin the worker so both SSSP queries queue up and are drained into
    // one batch; the doomed one's deadline fires while it waits or
    // during the fused run — both must surface as `deadline-exceeded`.
    let blocker = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || {
            Client::local(core)
                .query(QueryRequest::new("rmat16", Algo::Pr, None))
                .unwrap()
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));

    let doomed = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || {
            let mut q = QueryRequest::new("rmat16", Algo::Sssp, Some(doomed_src));
            q.deadline_ms = Some(60);
            Client::local(core).query(q)
        })
    };
    let healthy = {
        let core = Arc::clone(&core);
        std::thread::spawn(move || {
            Client::local(core).query(QueryRequest::new("rmat16", Algo::Sssp, Some(healthy_src)))
        })
    };
    match doomed.join().unwrap() {
        Err(ClientError::Protocol(p)) => {
            assert_eq!(p.code, ErrorCode::DeadlineExceeded, "{p:?}")
        }
        other => panic!("doomed query was not cancelled: {other:?}"),
    }
    let healthy = healthy.join().unwrap().unwrap();
    let expect = expected_values(&prepared, Algo::Sssp, Some(healthy_src));
    assert_eq!(healthy.checksum, tigr::server::checksum(&expect));
    blocker.join().unwrap();

    let mut client = Client::local(Arc::clone(&core));
    // The healthy lane was cached despite its batchmate's cancellation…
    let warm = client
        .query(QueryRequest::new("rmat16", Algo::Sssp, Some(healthy_src)))
        .unwrap();
    assert!(warm.cached, "healthy lane lost its cache entry");
    assert_eq!(warm.checksum, healthy.checksum);
    // …and the cancelled lane never reached the cache.
    let fresh = client
        .query(QueryRequest::new("rmat16", Algo::Sssp, Some(doomed_src)))
        .unwrap();
    assert!(!fresh.cached, "cancelled lane leaked a cache entry");
    let expect = expected_values(&prepared, Algo::Sssp, Some(doomed_src));
    assert_eq!(fresh.checksum, tigr::server::checksum(&expect));
    core.shutdown();
}

/// Satellite: the same workload is byte-identical across runs and
/// worker counts — batching and scheduling change only throughput,
/// never a single checksum.
#[test]
fn checksums_are_identical_across_runs_and_worker_counts() {
    let prepared = shared_graph();
    let sources = sources(&prepared);
    let mut observed: Vec<std::collections::BTreeMap<(String, Option<u32>), u64>> = Vec::new();
    // Two worker counts, two runs each: four complete traversals of the
    // same 12-cell mix, all through the batched path with caching off.
    for &workers in &[1usize, 4] {
        let core = ServerCore::new(ServerConfig {
            workers,
            queue_capacity: 128,
            cache_capacity: 0,
            default_deadline_ms: None,
            executors: 0,
            kernel_threads: 1,
            batch_max: 8,
            batch_wait_us: 0,
            compact_threshold: 0,
        });
        core.add_graph("rmat16", Arc::clone(&prepared));
        for _run in 0..2 {
            let barrier = Arc::new(Barrier::new(12));
            let handles: Vec<_> = (0..12usize)
                .map(|i| {
                    let core = Arc::clone(&core);
                    let barrier = Arc::clone(&barrier);
                    let algo = MIX[i % 4];
                    let source = (algo != Algo::Cc).then(|| sources[i / 4]);
                    std::thread::spawn(move || {
                        let mut client = Client::local(core);
                        barrier.wait();
                        let r = client
                            .query(QueryRequest::new("rmat16", algo, source))
                            .unwrap();
                        ((algo.label().to_string(), source), r.checksum)
                    })
                })
                .collect();
            observed.push(handles.into_iter().map(|h| h.join().unwrap()).collect());
        }
        core.shutdown();
    }
    for later in &observed[1..] {
        assert_eq!(
            &observed[0], later,
            "same workload produced different checksums across runs/worker counts"
        );
    }
    for ((algo, source), sum) in &observed[0] {
        let expect = expected_values(&prepared, Algo::parse(algo).unwrap(), *source);
        assert_eq!(
            *sum,
            tigr::server::checksum(&expect),
            "{algo}/{source:?} diverged from the sequential reference"
        );
    }
}
