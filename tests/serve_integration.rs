//! Integration tests of the serving subsystem against the acceptance
//! bar: 64 concurrent in-flight queries over an ephemeral TCP socket on
//! a scale-16 RMAT graph with every answer byte-equal to a direct
//! sequential engine run, typed queue-full rejections under a tiny
//! admission queue, cancelled runs leaving no partial state observable
//! through the cache, and the `stats` verb reporting it all.

use std::sync::{Arc, Barrier, OnceLock};

use tigr::core::{GraphStore, PrepareSpec, PreparedGraph};
use tigr::engine::BackendKind;
use tigr::server::{
    Algo, Client, ClientError, ErrorCode, QueryRequest, Server, ServerAddr, ServerConfig,
    ServerCore,
};
use tigr::{Engine, MonotoneProgram, NodeId};

const MIX: [Algo; 4] = [Algo::Bfs, Algo::Sssp, Algo::Sswp, Algo::Cc];

/// The scale-16 RMAT analog every test shares (prepared once; the
/// server only ever reads it through an `Arc`).
fn shared_graph() -> Arc<PreparedGraph> {
    static GRAPH: OnceLock<Arc<PreparedGraph>> = OnceLock::new();
    Arc::clone(GRAPH.get_or_init(|| {
        let spec = PrepareSpec::generated("rmat:16:16", 2018).with_uniform_weights(1, 64, 2018);
        Arc::new(GraphStore::disabled().prepare(&spec).unwrap())
    }))
}

/// Sixteen sources spread across the id space.
fn sources(prepared: &PreparedGraph) -> Vec<u32> {
    let stride = (prepared.graph().num_nodes() / 16).max(1) as u32;
    (0..16u32).map(|i| i * stride).collect()
}

/// What `tigr run <algo> --backend sequential` would print: a direct
/// single-threaded engine run with the server's exact plan.
fn expected_values(prepared: &PreparedGraph, algo: Algo, source: Option<u32>) -> Vec<u32> {
    let engine = Engine::default()
        .with_backend(BackendKind::Sequential)
        .with_device_memory(u64::MAX);
    let prog = match algo {
        Algo::Bfs => MonotoneProgram::BFS,
        Algo::Sssp => MonotoneProgram::SSSP,
        Algo::Sswp => MonotoneProgram::SSWP,
        Algo::Cc => MonotoneProgram::CC,
        Algo::Pr => unreachable!("monotone analytics only"),
    };
    let out = engine
        .run_prepared(prepared, prog, source.map(NodeId::new))
        .unwrap();
    match prepared.transformed() {
        Some(t) => t.project_values(&out.values),
        None => out.values,
    }
}

#[test]
fn sixty_four_concurrent_queries_match_sequential_runs() {
    let prepared = shared_graph();
    let sources = sources(&prepared);
    let core = ServerCore::new(ServerConfig {
        workers: 4,
        queue_capacity: 128,
        cache_capacity: 256,
        default_deadline_ms: None,
    });
    core.add_graph("rmat16", Arc::clone(&prepared));
    let server = Server::bind_tcp(core, "127.0.0.1:0").unwrap();
    let addr = match server.addr() {
        ServerAddr::Tcp(a) => a.to_string(),
        other => panic!("{other:?}"),
    };

    // 64 distinct (algo, source) cells, one connection each, all
    // released at once so all 64 are in flight together.
    let barrier = Arc::new(Barrier::new(64));
    let handles: Vec<_> = (0..64usize)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let algo = MIX[i / 16];
            // CC is global: the protocol rejects a source for it, so its
            // 16 cells are deliberately identical concurrent queries.
            let source = (algo != Algo::Cc).then(|| sources[i % 16]);
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).unwrap();
                barrier.wait();
                let mut query = QueryRequest::new("rmat16", algo, source);
                query.include_values = true;
                let r = client.query(query).unwrap();
                (algo, source, r)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (algo, source, r) in results {
        let expect = expected_values(&prepared, algo, source);
        assert_eq!(r.nodes as usize, expect.len());
        assert_eq!(
            r.values.as_deref(),
            Some(expect.as_slice()),
            "{}/{source:?}: served values diverged from the sequential run",
            algo.label()
        );
    }

    let mut client = Client::connect_tcp(&addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.received, 64);
    assert_eq!(stats.completed, 64);
    assert_eq!(stats.rejected, 0);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.workers, 4);
    assert!(stats.p95_us >= stats.p50_us);
    server.shutdown();
}

#[test]
fn overflowing_the_admission_queue_rejects_with_typed_errors() {
    let prepared = shared_graph();
    let sources = sources(&prepared);
    let core = ServerCore::new(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        cache_capacity: 0,
        default_deadline_ms: None,
    });
    core.add_graph("rmat16", Arc::clone(&prepared));

    let barrier = Arc::new(Barrier::new(24));
    let handles: Vec<_> = (0..24usize)
        .map(|i| {
            let core = Arc::clone(&core);
            let barrier = Arc::clone(&barrier);
            let source = sources[i % sources.len()];
            std::thread::spawn(move || {
                let mut client = Client::local(core);
                barrier.wait();
                client.query(QueryRequest::new("rmat16", Algo::Sssp, Some(source)))
            })
        })
        .collect();
    let mut completed = 0u64;
    let mut rejected = 0u64;
    for h in handles {
        match h.join().unwrap() {
            Ok(r) => {
                completed += 1;
                let expect = expected_values(&prepared, Algo::Sssp, r.source);
                assert_eq!(r.checksum, tigr::server::checksum(&expect));
            }
            Err(ClientError::Protocol(p)) => {
                assert_eq!(p.code, ErrorCode::QueueFull, "{p:?}");
                assert!(!p.message.is_empty());
                rejected += 1;
            }
            Err(other) => panic!("{other}"),
        }
    }
    assert_eq!(completed + rejected, 24);
    assert!(
        rejected >= 1,
        "24 racing clients never overflowed a 2-slot queue"
    );

    let mut client = Client::local(Arc::clone(&core));
    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed, completed);
    core.shutdown();
}

/// Satellite: a deadline-cancelled SSSP must leave no partially-written
/// state observable through a subsequent cached query — the next query
/// is a cache miss (cancelled runs are never inserted) and its values
/// are the complete sequential answer.
#[test]
fn cancelled_sssp_leaves_no_partial_state_in_the_cache() {
    let prepared = shared_graph();
    let source = sources(&prepared)[3];
    let core = ServerCore::new(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 64,
        default_deadline_ms: None,
    });
    core.add_graph("rmat16", Arc::clone(&prepared));
    let mut client = Client::local(core);

    // A scale-16 SSSP takes ~10ms sequentially; a 1ms deadline fires at
    // an early iteration boundary, after partial distances exist
    // internally.
    let mut doomed = QueryRequest::new("rmat16", Algo::Sssp, Some(source));
    doomed.deadline_ms = Some(1);
    match client.query(doomed) {
        Err(ClientError::Protocol(p)) => assert_eq!(p.code, ErrorCode::DeadlineExceeded, "{p:?}"),
        other => panic!("1ms SSSP unexpectedly finished: {other:?}"),
    }

    let full = client
        .query(QueryRequest::new("rmat16", Algo::Sssp, Some(source)))
        .unwrap();
    assert!(
        !full.cached,
        "cancelled run leaked a cache entry for source {source}"
    );
    let expect = expected_values(&prepared, Algo::Sssp, Some(source));
    assert_eq!(full.checksum, tigr::server::checksum(&expect));

    let warm = client
        .query(QueryRequest::new("rmat16", Algo::Sssp, Some(source)))
        .unwrap();
    assert!(warm.cached);
    assert_eq!(warm.checksum, full.checksum);
}
