//! Property-based invariants of the GPU simulator, exercised through
//! randomly generated kernels.

use proptest::collection::vec;
use proptest::prelude::*;

use tigr_sim::{GpuConfig, GpuSimulator, TimingModel};

/// A randomly generated per-thread workload: (compute weight, number of
/// loads, load stride, issue atomic?).
type ThreadSpec = (u8, u8, u8, bool);

fn run_kernel(
    config: GpuConfig,
    specs: &[ThreadSpec],
    host_threads: usize,
) -> tigr_sim::KernelMetrics {
    let sim = GpuSimulator::new(config).with_host_threads(host_threads);
    sim.launch(specs.len(), |tid, lane| {
        let (weight, loads, stride, atomic) = specs[tid];
        lane.compute(weight as u64);
        for i in 0..loads as u64 {
            lane.load(tid as u64 * 4 + i * (stride as u64 + 1) * 4, 4);
        }
        if atomic {
            lane.atomic(0x9000_0000 + (tid as u64 % 16) * 4, 4);
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn efficiency_is_a_valid_fraction(specs in vec(any::<ThreadSpec>(), 0..300)) {
        let m = run_kernel(GpuConfig::default(), &specs, 1);
        let eff = m.warp_efficiency();
        prop_assert!((0.0..=1.0).contains(&eff), "efficiency {eff}");
        prop_assert!(m.instructions <= m.issued_slots.max(m.instructions));
    }

    #[test]
    fn parallel_replay_is_metric_identical(specs in vec(any::<ThreadSpec>(), 0..300)) {
        let seq = run_kernel(GpuConfig::default(), &specs, 1);
        let par = run_kernel(GpuConfig::default(), &specs, 4);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn cycles_never_below_launch_overhead(specs in vec(any::<ThreadSpec>(), 0..100)) {
        let cfg = GpuConfig::default();
        let m = run_kernel(cfg, &specs, 1);
        prop_assert!(m.cycles >= cfg.cost.kernel_launch_cycles);
    }

    #[test]
    fn mimd_is_never_slower_than_lockstep(specs in vec(any::<ThreadSpec>(), 0..200)) {
        let lockstep = run_kernel(GpuConfig::default(), &specs, 1);
        let mimd = run_kernel(
            GpuConfig { timing: TimingModel::IdealMimd, ..GpuConfig::default() },
            &specs,
            1,
        );
        // Identical useful work, but MIMD wastes no slots...
        prop_assert_eq!(mimd.instructions, lockstep.instructions);
        prop_assert!(mimd.warp_efficiency() >= lockstep.warp_efficiency() - 1e-12);
    }

    #[test]
    fn instructions_equal_total_declared_work(specs in vec(any::<ThreadSpec>(), 0..200)) {
        let m = run_kernel(GpuConfig::default(), &specs, 1);
        let expect: u64 = specs
            .iter()
            .map(|&(w, loads, _, atomic)| w as u64 + loads as u64 + atomic as u64)
            .sum();
        prop_assert_eq!(m.instructions, expect);
    }

    #[test]
    fn warp_count_matches_grid(n in 0usize..5000) {
        let sim = GpuSimulator::new(GpuConfig::default());
        let m = sim.launch(n, |_, lane| lane.compute(1));
        prop_assert_eq!(m.warps as usize, n.div_ceil(32));
    }

    #[test]
    fn coalesced_never_costs_more_transactions_than_strided(
        lanes in 1usize..64,
        accesses in 1u8..8,
    ) {
        let sim = GpuSimulator::new(GpuConfig::default());
        let coalesced = sim.launch(lanes, |tid, lane| {
            for i in 0..accesses as u64 {
                lane.load((tid as u64 + i * lanes as u64) * 4, 4);
            }
        });
        let strided = sim.launch(lanes, |tid, lane| {
            for i in 0..accesses as u64 {
                lane.load((tid as u64 * 1024) + i * 4096, 4);
            }
        });
        prop_assert!(coalesced.mem_transactions <= strided.mem_transactions);
    }
}
