//! The full topology × dumb-weight × analytic matrix: every physical
//! split transformation must preserve exactly the analyses its dumb
//! weights target, on a realistic power-law analog.

use tigr::core::correctness::{
    verify_bottleneck_preservation, verify_connectivity_preservation, verify_distance_preservation,
    verify_split_definition,
};
use tigr::graph::datasets;
use tigr::{
    circular_transform, clique_transform, recursive_star_transform, star_transform, udt_transform,
    Csr, DumbWeight, NodeId, TransformedGraph,
};

type Transform = fn(&Csr, u32, DumbWeight) -> TransformedGraph;

const TOPOLOGIES: [(&str, Transform); 5] = [
    ("udt", udt_transform),
    ("star", star_transform),
    ("recursive-star", recursive_star_transform),
    ("circular", circular_transform),
    ("clique", clique_transform),
];

fn fixture() -> Csr {
    datasets::by_name("pokec")
        .unwrap()
        .generate_weighted(8192, 99)
}

#[test]
fn every_topology_is_a_split_transformation() {
    let g = fixture();
    for (name, transform) in TOPOLOGIES {
        let t = transform(&g, 8, DumbWeight::Zero);
        assert!(t.num_split_nodes() > 0, "{name} must split the fixture");
        verify_split_definition(&g, &t).unwrap_or_else(|e| panic!("{name}: {e}"));
        verify_connectivity_preservation(&g, &t).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn zero_weights_preserve_distances_for_every_topology() {
    let g = fixture();
    let sources = [NodeId::new(0), NodeId::new(7)];
    for (name, transform) in TOPOLOGIES {
        let t = transform(&g, 8, DumbWeight::Zero);
        for src in sources {
            verify_distance_preservation(&g, &t, src)
                .unwrap_or_else(|e| panic!("{name} from {src}: {e}"));
        }
    }
}

#[test]
fn infinity_weights_preserve_bottlenecks_for_every_topology() {
    let g = fixture();
    for (name, transform) in TOPOLOGIES {
        let t = transform(&g, 8, DumbWeight::Infinity);
        verify_bottleneck_preservation(&g, &t, NodeId::new(0))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn unweighted_policy_strips_weights_for_every_topology() {
    let g = fixture();
    for (name, transform) in TOPOLOGIES {
        let t = transform(&g, 8, DumbWeight::Unweighted);
        assert!(!t.graph().is_weighted(), "{name}");
        verify_connectivity_preservation(&g, &t).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn only_udt_guarantees_the_degree_bound() {
    let g = fixture();
    let k = 8u32;
    let udt = udt_transform(&g, k, DumbWeight::Zero);
    assert!(udt.graph().max_out_degree() <= k as usize);
    let rec = recursive_star_transform(&g, k, DumbWeight::Zero);
    assert!(
        rec.graph().max_out_degree() <= k as usize,
        "recursive star also bounds"
    );
    // Circular tops out at K+1; star and clique can exceed it.
    let circ = circular_transform(&g, k, DumbWeight::Zero);
    assert!(circ.graph().max_out_degree() <= k as usize + 1);
    let star = star_transform(&g, k, DumbWeight::Zero);
    assert!(star.graph().max_out_degree() > k as usize);
}

#[test]
fn size_costs_order_as_table_1_predicts() {
    let g = fixture();
    let k = 8u32;
    let new_edges = |t: &TransformedGraph| t.num_new_edges();
    let cliq = clique_transform(&g, k, DumbWeight::Zero);
    let circ = circular_transform(&g, k, DumbWeight::Zero);
    let star = star_transform(&g, k, DumbWeight::Zero);
    let udt = udt_transform(&g, k, DumbWeight::Zero);
    assert!(
        new_edges(&cliq) > 3 * new_edges(&circ),
        "clique is quadratic"
    );
    // Circ/star/udt are all linear in the number of families.
    assert!(new_edges(&circ) < 2 * new_edges(&star));
    assert!(new_edges(&udt) < 2 * new_edges(&star));
}
