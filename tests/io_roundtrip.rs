//! Property-based round-trip tests of the graph I/O formats.

use proptest::collection::vec;
use proptest::prelude::*;

use tigr::graph::io::{parse_edge_list, read_binary, write_binary, write_edge_list};
use tigr::{Csr, CsrBuilder, Edge, NodeId};

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..40, any::<bool>()).prop_flat_map(|(nodes, weighted)| {
        vec((0..nodes as u32, 0..nodes as u32, 1..1000u32), 0..120).prop_map(move |edges| {
            let mut b = CsrBuilder::new(nodes);
            for (s, d, w) in edges {
                b.add(Edge::new(
                    NodeId::new(s),
                    NodeId::new(d),
                    if weighted { w } else { 1 },
                ));
            }
            b.force_weighted(weighted);
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_round_trip(g in arb_graph()) {
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        prop_assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn edge_list_round_trip_preserves_topology(g in arb_graph()) {
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = parse_edge_list(buf.as_slice()).unwrap();
        // Text round-trips may shrink the node count when trailing nodes
        // are isolated; the edge multiset must survive exactly.
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert!(back.num_nodes() <= g.num_nodes());
    }

    #[test]
    fn binary_rejects_random_corruption(g in arb_graph(), flip in 0usize..200, val in any::<u8>()) {
        prop_assume!(g.num_edges() > 0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let idx = flip % buf.len();
        prop_assume!(buf[idx] != val);
        buf[idx] = val;
        // Corruption must never panic: either a clean error or a
        // structurally valid (possibly different) graph.
        match read_binary(buf.as_slice()) {
            Ok(g2) => {
                let _ = g2.num_edges();
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn matrix_market_round_trip_via_edge_list_semantics() {
    // Cross-format check on a fixed fixture.
    let text =
        "%%MatrixMarket matrix coordinate integer general\n4 4 4\n1 2 5\n2 3 6\n3 4 7\n4 1 8\n";
    let g = tigr::graph::io::parse_matrix_market(text.as_bytes()).unwrap();
    assert_eq!(g.num_nodes(), 4);
    assert_eq!(g.num_edges(), 4);
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let back = parse_edge_list(buf.as_slice()).unwrap();
    assert_eq!(back, g);
}
