//! Property-based round-trip tests of the graph I/O formats: every
//! format × weighted/unweighted × arbitrary/empty/singleton inputs.

use proptest::collection::vec;
use proptest::prelude::*;

use std::sync::atomic::{AtomicUsize, Ordering};

use tigr::graph::io::{
    parse_dimacs, parse_edge_list, parse_matrix_market, parse_section_table, read_binary,
    write_binary, write_binary_v1, write_dimacs, write_edge_list, write_matrix_market,
    MappedContainer, VerifyMode, SECTION_CSR,
};
use tigr::{Csr, CsrBuilder, Edge, NodeId};

static TMP_SEQ: AtomicUsize = AtomicUsize::new(0);

/// Writes `bytes` to a unique temp file (mapped opens need a real
/// file); callers remove it when done.
fn temp_container(bytes: &[u8]) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("tigr_it_io_mapped");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!(
        "{}_{}.tigr",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, bytes).unwrap();
    path
}

fn arb_graph() -> impl Strategy<Value = Csr> {
    (2usize..40, any::<bool>()).prop_flat_map(|(nodes, weighted)| {
        vec((0..nodes as u32, 0..nodes as u32, 1..1000u32), 0..120).prop_map(move |edges| {
            let mut b = CsrBuilder::new(nodes);
            for (s, d, w) in edges {
                b.add(Edge::new(
                    NodeId::new(s),
                    NodeId::new(d),
                    if weighted { w } else { 1 },
                ));
            }
            b.force_weighted(weighted);
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_round_trip(g in arb_graph()) {
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        prop_assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn edge_list_round_trip_preserves_topology(g in arb_graph()) {
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = parse_edge_list(buf.as_slice()).unwrap();
        // Text round-trips may shrink the node count when trailing nodes
        // are isolated; the edge multiset must survive exactly.
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert!(back.num_nodes() <= g.num_nodes());
    }

    #[test]
    fn legacy_v1_binary_round_trip(g in arb_graph()) {
        let mut buf = Vec::new();
        write_binary_v1(&g, &mut buf).unwrap();
        // read_binary auto-detects the legacy magic.
        prop_assert_eq!(read_binary(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn matrix_market_round_trip(g in arb_graph()) {
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        // The dims header preserves the node count exactly.
        prop_assert_eq!(parse_matrix_market(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn dimacs_round_trip_preserves_edges(g in arb_graph()) {
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let back = parse_dimacs(buf.as_slice()).unwrap();
        // DIMACS always carries weights, so an unweighted input comes
        // back weighted — but node count and the exact edge multiset
        // (weights included) must survive.
        prop_assert_eq!(back.num_nodes(), g.num_nodes());
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = back.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        if g.is_weighted() {
            prop_assert_eq!(back, g);
        }
    }

    #[test]
    fn mapped_open_equals_decoded_read(g in arb_graph()) {
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let decoded = read_binary(buf.as_slice()).unwrap();
        let path = temp_container(&buf);
        for verify in [VerifyMode::Eager, VerifyMode::Lazy] {
            let c = MappedContainer::open(&path, verify).unwrap();
            let mapped = c.csr(SECTION_CSR).unwrap().expect("CSR section present");
            prop_assert_eq!(&mapped, &decoded);
            prop_assert_eq!(&mapped, &g);
            if cfg!(all(unix, target_pointer_width = "64")) {
                prop_assert!(c.is_mapped());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_container_fails_cleanly(g in arb_graph(), keep_pct in 0usize..100) {
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let keep = buf.len() * keep_pct / 100;
        let truncated = &buf[..keep];
        // The table parse must reject the cut (a section range now
        // escapes the container) or, at worst, fail later without
        // panicking — truncation is never UB.
        if let Err(e) = parse_section_table(truncated) {
            let _ = e.to_string();
        }
        let path = temp_container(truncated);
        for verify in [VerifyMode::Eager, VerifyMode::Lazy] {
            match MappedContainer::open(&path, verify) {
                Ok(c) => {
                    let _ = c.csr(SECTION_CSR);
                }
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn misaligned_section_offset_is_rejected(g in arb_graph(), nudge in 1u64..8) {
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Nudge the first section entry's offset field (bytes 24..32:
        // 16-byte header, then id + reserved) off 8-byte alignment.
        let old = u64::from_le_bytes(buf[24..32].try_into().unwrap());
        buf[24..32].copy_from_slice(&(old + nudge).to_le_bytes());
        let err = parse_section_table(&buf).unwrap_err();
        prop_assert!(err.to_string().contains("aligned"), "{}", err);
        // Both verify modes validate the table, so neither maps it.
        let path = temp_container(&buf);
        for verify in [VerifyMode::Eager, VerifyMode::Lazy] {
            prop_assert!(MappedContainer::open(&path, verify).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_rejects_random_corruption(g in arb_graph(), flip in 0usize..200, val in any::<u8>()) {
        prop_assume!(g.num_edges() > 0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let idx = flip % buf.len();
        prop_assume!(buf[idx] != val);
        buf[idx] = val;
        // Corruption must never panic: either a clean error or a
        // structurally valid (possibly different) graph.
        match read_binary(buf.as_slice()) {
            Ok(g2) => {
                let _ = g2.num_edges();
            }
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

/// Degenerate inputs — the empty graph, a single isolated node, and a
/// weighted single self-loop — must survive every format that preserves
/// node counts, and keep their edge multiset in the text formats that
/// may drop trailing isolated nodes.
#[test]
fn every_format_handles_empty_and_singleton() {
    let empty = CsrBuilder::new(0).build();
    let singleton = CsrBuilder::new(1).build();
    let self_loop = CsrBuilder::new(1).weighted_edge(0, 0, 42).build();

    for (name, g) in [
        ("empty", &empty),
        ("singleton", &singleton),
        ("self-loop", &self_loop),
    ] {
        // Binary v2, binary v1, and MatrixMarket store the node count:
        // exact equality.
        let mut buf = Vec::new();
        write_binary(g, &mut buf).unwrap();
        assert_eq!(&read_binary(buf.as_slice()).unwrap(), g, "{name} v2");

        let mut buf = Vec::new();
        write_binary_v1(g, &mut buf).unwrap();
        assert_eq!(&read_binary(buf.as_slice()).unwrap(), g, "{name} v1");

        let mut buf = Vec::new();
        write_matrix_market(g, &mut buf).unwrap();
        assert_eq!(
            &parse_matrix_market(buf.as_slice()).unwrap(),
            g,
            "{name} mtx"
        );

        // DIMACS keeps the node count but always carries weights; edge
        // lists may drop trailing isolated nodes. Both must keep the
        // edge multiset without erroring.
        let mut buf = Vec::new();
        write_dimacs(g, &mut buf).unwrap();
        let back = parse_dimacs(buf.as_slice()).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes(), "{name} gr");
        assert_eq!(back.num_edges(), g.num_edges(), "{name} gr");

        let mut buf = Vec::new();
        write_edge_list(g, &mut buf).unwrap();
        let back = parse_edge_list(buf.as_slice()).unwrap();
        assert!(back.num_nodes() <= g.num_nodes(), "{name} txt");
        assert_eq!(back.num_edges(), g.num_edges(), "{name} txt");
    }
}

/// The committed legacy `TIGRCSR1` fixture must stay readable forever:
/// auto-detected on load and upgraded to `TIGRCSR2` on save.
#[test]
fn committed_legacy_fixture_upgrades_on_load() {
    let bytes = include_bytes!("fixtures/legacy_v1.bin");
    assert_eq!(&bytes[..8], b"TIGRCSR1");
    let g = read_binary(&bytes[..]).unwrap();
    assert_eq!(g.num_nodes(), 3);
    assert_eq!(g.num_edges(), 3);
    assert!(g.is_weighted());
    assert_eq!(g.neighbors(NodeId::new(0)), &[NodeId::new(1)]);
    assert_eq!(g.neighbors(NodeId::new(1)), &[NodeId::new(2)]);
    assert_eq!(g.neighbors(NodeId::new(2)), &[NodeId::new(0)]);
    assert_eq!(g.weights(), Some(&[5, 7, 9][..]));
    // Saving writes the current container version.
    let mut upgraded = Vec::new();
    write_binary(&g, &mut upgraded).unwrap();
    assert_eq!(&upgraded[..8], b"TIGRCSR2");
    assert_eq!(read_binary(upgraded.as_slice()).unwrap(), g);
}

#[test]
fn matrix_market_round_trip_via_edge_list_semantics() {
    // Cross-format check on a fixed fixture.
    let text =
        "%%MatrixMarket matrix coordinate integer general\n4 4 4\n1 2 5\n2 3 6\n3 4 7\n4 1 8\n";
    let g = tigr::graph::io::parse_matrix_market(text.as_bytes()).unwrap();
    assert_eq!(g.num_nodes(), 4);
    assert_eq!(g.num_edges(), 4);
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).unwrap();
    let back = parse_edge_list(buf.as_slice()).unwrap();
    assert_eq!(back, g);
}
