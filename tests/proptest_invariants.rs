//! Property-based tests of the core invariants, across randomly
//! generated graphs.

use proptest::collection::vec;
use proptest::prelude::*;

use tigr::core::correctness;
use tigr::engine::{run_cpu, MonotoneProgram};
use tigr::graph::properties as oracle;
use tigr::graph::reverse::transpose;
use tigr::{
    circular_transform, clique_transform, star_transform, udt_transform, Csr, CsrBuilder,
    DumbWeight, Edge, NodeId, VirtualGraph,
};

/// Strategy: an arbitrary weighted directed graph with up to `n` nodes
/// and `m` edges.
fn arb_graph(n: usize, m: usize) -> impl Strategy<Value = Csr> {
    (2..n).prop_flat_map(move |nodes| {
        vec((0..nodes as u32, 0..nodes as u32, 1..100u32), 0..m).prop_map(move |edges| {
            let mut b = CsrBuilder::new(nodes);
            for (s, d, w) in edges {
                b.add(Edge::new(NodeId::new(s), NodeId::new(d), w));
            }
            b.force_weighted(true);
            b.build()
        })
    })
}

/// Strategy: a graph guaranteed to contain at least one high-degree node
/// (a hub wired to everything) so transformations actually fire.
fn arb_hubbed_graph(n: usize, m: usize) -> impl Strategy<Value = Csr> {
    arb_graph(n, m).prop_map(|g| {
        let nodes = g.num_nodes();
        let mut b = CsrBuilder::new(nodes);
        for e in g.edges() {
            b.add(e);
        }
        for t in 1..nodes as u32 {
            b.add(Edge::new(NodeId::new(0), NodeId::new(t), 7));
        }
        b.force_weighted(true);
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn udt_respects_degree_bound(g in arb_hubbed_graph(40, 150), k in 2u32..12) {
        let t = udt_transform(&g, k, DumbWeight::Zero);
        prop_assert!(t.graph().max_out_degree() <= k as usize);
    }

    #[test]
    fn udt_conserves_original_edges(g in arb_hubbed_graph(40, 150), k in 2u32..12) {
        let t = udt_transform(&g, k, DumbWeight::Zero);
        // Original edges are re-attached exactly once: total edges =
        // original + introduced.
        prop_assert_eq!(
            t.graph().num_edges(),
            g.num_edges() + t.num_new_edges()
        );
        prop_assert!(correctness::verify_split_definition(&g, &t).is_ok());
    }

    #[test]
    fn udt_preserves_distances_from_every_source(
        g in arb_hubbed_graph(24, 80),
        k in 2u32..8,
        src in 0u32..24,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let t = udt_transform(&g, k, DumbWeight::Zero);
        prop_assert!(correctness::verify_distance_preservation(&g, &t, src).is_ok());
    }

    #[test]
    fn udt_with_infinity_preserves_bottlenecks(
        g in arb_hubbed_graph(24, 80),
        k in 2u32..8,
        src in 0u32..24,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let t = udt_transform(&g, k, DumbWeight::Infinity);
        prop_assert!(correctness::verify_bottleneck_preservation(&g, &t, src).is_ok());
    }

    #[test]
    fn all_split_topologies_preserve_connectivity(
        g in arb_hubbed_graph(30, 100),
        k in 2u32..8,
    ) {
        for t in [
            udt_transform(&g, k, DumbWeight::Zero),
            star_transform(&g, k, DumbWeight::Zero),
            circular_transform(&g, k, DumbWeight::Zero),
            clique_transform(&g, k, DumbWeight::Zero),
        ] {
            prop_assert!(correctness::verify_connectivity_preservation(&g, &t).is_ok(),
                "{} broke connectivity", t.topology());
            // Corollary 4 (in-degree preservation) is a UDT/star property:
            // the circular and clique constructions route intra-family
            // edges back into the root, adding inert incoming edges.
            if matches!(t.topology(), "udt" | "star") {
                prop_assert!(correctness::verify_indegree_preservation(&g, &t).is_ok(),
                    "{} broke in-degrees", t.topology());
            }
        }
    }

    #[test]
    fn virtual_overlay_covers_every_edge_exactly_once(
        g in arb_graph(60, 300),
        k in 1u32..16,
    ) {
        let plain = VirtualGraph::new(&g, k);
        prop_assert!(plain.validate_against(&g).is_ok());
        let coal = VirtualGraph::coalesced(&g, k);
        prop_assert!(coal.validate_against(&g).is_ok());
        // Same virtual node count in both layouts.
        prop_assert_eq!(plain.num_virtual_nodes(), coal.num_virtual_nodes());
    }

    #[test]
    fn transpose_is_an_involution(g in arb_graph(50, 200)) {
        prop_assert_eq!(transpose(&transpose(&g)), g);
    }

    #[test]
    fn transpose_preserves_edge_multiset(g in arb_graph(50, 200)) {
        let t = transpose(&g);
        let mut fwd: Vec<(u32, u32, u32)> =
            g.edges().map(|e| (e.src.raw(), e.dst.raw(), e.weight)).collect();
        let mut rev: Vec<(u32, u32, u32)> =
            t.edges().map(|e| (e.dst.raw(), e.src.raw(), e.weight)).collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn cpu_engine_sssp_matches_dijkstra(g in arb_graph(40, 200), src in 0u32..40) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let out = run_cpu(&g, MonotoneProgram::SSSP, Some(src), 2);
        prop_assert_eq!(out.values, oracle::dijkstra(&g, src));
    }

    #[test]
    fn cpu_engine_sswp_matches_widest_path(g in arb_graph(40, 200), src in 0u32..40) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let out = run_cpu(&g, MonotoneProgram::SSWP, Some(src), 2);
        prop_assert_eq!(out.values, oracle::widest_path(&g, src));
    }

    #[test]
    fn csr_builder_edge_count_and_degrees_consistent(g in arb_graph(50, 250)) {
        let total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        prop_assert_eq!(total, g.num_edges());
        prop_assert_eq!(g.edges().count(), g.num_edges());
    }

    #[test]
    fn degree_stats_are_internally_consistent(g in arb_graph(50, 250)) {
        let s = tigr::graph::stats::degree_stats(&g);
        prop_assert_eq!(s.num_edges, g.num_edges());
        prop_assert!(s.median_degree <= s.p99_degree);
        prop_assert!(s.p99_degree <= s.max_degree);
        prop_assert!((0.0..=1.0).contains(&s.frac_below_20));
    }
}

/// Deterministic edge-case regressions for `VirtualGraph::{new, coalesced}`
/// — degenerate inputs the random strategies above rarely hit exactly.
mod virtual_graph_edge_cases {
    use super::*;

    fn both(g: &Csr, k: u32) -> [VirtualGraph; 2] {
        [VirtualGraph::new(g, k), VirtualGraph::coalesced(g, k)]
    }

    #[test]
    fn empty_graph_yields_empty_overlay() {
        let g = CsrBuilder::new(0).build();
        for ov in both(&g, 4) {
            assert_eq!(ov.num_virtual_nodes(), 0);
            assert_eq!(ov.num_physical_nodes(), 0);
            ov.validate_against(&g).unwrap();
            assert!(ov.expand_active(&[]).is_empty());
        }
    }

    #[test]
    fn single_isolated_node_gets_one_empty_family() {
        let g = CsrBuilder::new(1).build();
        for ov in both(&g, 4) {
            // Zero-degree nodes still get a virtual node covering no edges.
            assert_eq!(ov.num_virtual_nodes(), 1);
            assert_eq!(ov.vnode_range(NodeId::new(0)), 0..1);
            assert_eq!(ov.vnode(0).count, 0);
            ov.validate_against(&g).unwrap();
            assert_eq!(ov.expand_active(&[0]), vec![0]);
        }
    }

    #[test]
    fn self_loops_are_covered_like_any_edge() {
        let mut b = CsrBuilder::new(3);
        b.edge(0, 0).edge(0, 1).edge(0, 0).edge(2, 2);
        let g = b.build();
        for ov in both(&g, 2) {
            ov.validate_against(&g).unwrap();
            // Node 0's three edges split into two virtual nodes at K = 2.
            assert_eq!(ov.vnode_range(NodeId::new(0)).len(), 2);
            let covered: usize = ov.vnodes().iter().map(|vn| vn.count as usize).sum();
            assert_eq!(covered, g.num_edges());
        }
    }

    #[test]
    fn k_one_gives_one_virtual_node_per_edge() {
        let mut b = CsrBuilder::new(4);
        b.edge(0, 1).edge(0, 2).edge(0, 3).edge(1, 2);
        let g = b.build();
        for ov in both(&g, 1) {
            ov.validate_against(&g).unwrap();
            // Every edge-covering family has exactly one edge; zero-degree
            // nodes contribute their placeholder.
            assert!(ov.vnodes().iter().all(|vn| vn.count <= 1));
            let zero_degree = g.nodes().filter(|&v| g.out_degree(v) == 0).count();
            assert_eq!(ov.num_virtual_nodes(), g.num_edges() + zero_degree);
            assert_eq!(ov.max_virtual_degree(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "degree bound K must be at least 1")]
    fn k_zero_rejected() {
        let _ = VirtualGraph::new(&CsrBuilder::new(2).build(), 0);
    }
}
