//! Integration tests of the device-memory model: footprints, budgets,
//! and the Table 4 OOM pattern.

use tigr::baselines::{Baseline, CushaMode};
use tigr::engine::MonotoneProgram;
use tigr::graph::datasets;
use tigr::{Engine, NodeId, Representation, VirtualGraph};
use tigr_sim::GpuSimulator;

#[test]
fn oom_pattern_matches_table_4() {
    // At the paper's 8GB-to-graph ratio, the largest graphs break CuSha
    // and Gunrock but not MW or Tigr.
    let denom = 1024;
    let budget = 8 * 1024 * 1024 * 1024 / denom;
    let spec = datasets::by_name("sinaweibo").unwrap();
    let g = spec.generate_weighted(denom, 1);

    let cusha = Baseline::CuSha {
        mode: CushaMode::GShards,
    };
    assert!(
        cusha.check_budget(&g, Some(budget)).is_err(),
        "CuSha must OOM on the sinaweibo analog (footprint {} vs budget {budget})",
        cusha.footprint_bytes(&g)
    );
    assert!(Baseline::Gunrock.check_budget(&g, Some(budget)).is_err());
    assert!(Baseline::MaximumWarp { width: Some(8) }
        .check_budget(&g, Some(budget))
        .is_ok());

    // Tigr-V+ fits: the virtual node array is a bounded overhead.
    let overlay = VirtualGraph::coalesced(&g, 10);
    let engine = Engine::parallel(tigr::GpuConfig::default()).with_device_memory(budget);
    assert!(engine
        .check_footprint(&Representation::Virtual {
            graph: &g,
            overlay: &overlay
        })
        .is_ok());
}

#[test]
fn small_graphs_fit_everywhere() {
    let spec = datasets::by_name("pokec").unwrap();
    let g = spec.generate(4096, 1);
    let budget = 8 * 1024 * 1024 * 1024 / 1024;
    for b in Baseline::ALL {
        assert!(b.check_budget(&g, Some(budget)).is_ok(), "{}", b.name());
    }
}

#[test]
fn oom_error_is_reported_not_panicked() {
    let spec = datasets::by_name("pokec").unwrap();
    let g = spec.generate(4096, 1);
    let sim = GpuSimulator::new(tigr::GpuConfig::default());
    let err = Baseline::Gunrock
        .run_monotone(
            &sim,
            &g,
            MonotoneProgram::BFS,
            Some(NodeId::new(0)),
            Some(1024),
        )
        .unwrap_err();
    assert!(err.to_string().contains("out of device memory"));
}

#[test]
fn virtual_overlay_footprint_shrinks_with_k() {
    let spec = datasets::by_name("livejournal").unwrap();
    let g = spec.generate(2048, 1);
    let f = |k: u32| {
        let ov = VirtualGraph::new(&g, k);
        Representation::Virtual {
            graph: &g,
            overlay: &ov,
        }
        .device_footprint_bytes()
    };
    assert!(f(4) > f(8));
    assert!(f(8) > f(32));
}
