//! Integration tests of the device-memory model: footprints, budgets,
//! the Table 4 OOM pattern, and the zero-copy guarantee of mapped
//! artifact opens.

use tigr::baselines::{Baseline, CushaMode};
use tigr::core::{GraphStore, OpenMode, PrepareSpec};
use tigr::engine::MonotoneProgram;
use tigr::graph::datasets;
use tigr::{Engine, NodeId, Representation, VirtualGraph};
use tigr_sim::GpuSimulator;

#[test]
fn oom_pattern_matches_table_4() {
    // At the paper's 8GB-to-graph ratio, the largest graphs break CuSha
    // and Gunrock but not MW or Tigr.
    let denom = 1024;
    let budget = 8 * 1024 * 1024 * 1024 / denom;
    let spec = datasets::by_name("sinaweibo").unwrap();
    let g = spec.generate_weighted(denom, 1);

    let cusha = Baseline::CuSha {
        mode: CushaMode::GShards,
    };
    assert!(
        cusha.check_budget(&g, Some(budget)).is_err(),
        "CuSha must OOM on the sinaweibo analog (footprint {} vs budget {budget})",
        cusha.footprint_bytes(&g)
    );
    assert!(Baseline::Gunrock.check_budget(&g, Some(budget)).is_err());
    assert!(Baseline::MaximumWarp { width: Some(8) }
        .check_budget(&g, Some(budget))
        .is_ok());

    // Tigr-V+ fits: the virtual node array is a bounded overhead.
    let overlay = VirtualGraph::coalesced(&g, 10);
    let engine = Engine::parallel(tigr::GpuConfig::default()).with_device_memory(budget);
    assert!(engine
        .check_footprint(&Representation::Virtual {
            graph: &g,
            overlay: &overlay
        })
        .is_ok());
}

#[test]
fn small_graphs_fit_everywhere() {
    let spec = datasets::by_name("pokec").unwrap();
    let g = spec.generate(4096, 1);
    let budget = 8 * 1024 * 1024 * 1024 / 1024;
    for b in Baseline::ALL {
        assert!(b.check_budget(&g, Some(budget)).is_ok(), "{}", b.name());
    }
}

#[test]
fn oom_error_is_reported_not_panicked() {
    let spec = datasets::by_name("pokec").unwrap();
    let g = spec.generate(4096, 1);
    let sim = GpuSimulator::new(tigr::GpuConfig::default());
    let err = Baseline::Gunrock
        .run_monotone(
            &sim,
            &g,
            MonotoneProgram::BFS,
            Some(NodeId::new(0)),
            Some(1024),
        )
        .unwrap_err();
    assert!(err.to_string().contains("out of device memory"));
}

/// A mapped artifact open must not copy payload bytes: every CSR and
/// overlay table borrows the file mapping in place, so the views report
/// zero heap bytes and their slices point into the segment's address
/// range.
#[test]
fn mapped_open_does_not_copy_payload_bytes() {
    if !cfg!(all(
        unix,
        target_pointer_width = "64",
        target_endian = "little"
    )) {
        return; // owned-decode fallback targets copy by design
    }
    let dir = std::env::temp_dir().join("tigr_it_mapped_zero_copy");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = GraphStore::new(Some(dir)); // default policy: map on hit
    let spec = PrepareSpec::generated("rmat:8:8", 11)
        .with_uniform_weights(1, 9, 5)
        .with_virtual(8, true)
        .with_transpose(true);
    store.prepare(&spec).unwrap();
    let warm = store.prepare(&spec).unwrap();

    assert_eq!(warm.open_info().mode, OpenMode::Mapped);
    assert!(warm.open_info().mapped_bytes > 0);
    assert_eq!(warm.graph().heap_bytes(), 0, "CSR payload was copied");
    assert_eq!(warm.transpose().unwrap().heap_bytes(), 0);
    assert_eq!(warm.overlay().unwrap().heap_bytes(), 0);
    assert_eq!(warm.rev_overlay().unwrap().heap_bytes(), 0);

    // The borrowed slices must point inside the mapped file bytes.
    let seg = warm.segment().expect("mapped open keeps its segment");
    let bytes = seg.as_bytes();
    let range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
    for (label, ptr) in [
        ("row_ptr", warm.graph().row_ptr().as_ptr() as usize),
        ("col_idx", warm.graph().col_idx().as_ptr() as usize),
        ("weights", warm.graph().weights().unwrap().as_ptr() as usize),
        (
            "transpose col_idx",
            warm.transpose().unwrap().col_idx().as_ptr() as usize,
        ),
    ] {
        assert!(range.contains(&ptr), "{label} escaped the mapping");
    }
}

#[test]
fn virtual_overlay_footprint_shrinks_with_k() {
    let spec = datasets::by_name("livejournal").unwrap();
    let g = spec.generate(2048, 1);
    let f = |k: u32| {
        let ov = VirtualGraph::new(&g, k);
        Representation::Virtual {
            graph: &g,
            overlay: &ov,
        }
        .device_footprint_bytes()
    };
    assert!(f(4) > f(8));
    assert!(f(8) > f(32));
}
