//! Differential harness for active-frontier scheduling: on every
//! representation — original CSR, each physical split topology, and both
//! virtual overlay layouts — every frontier mode must reach exactly the
//! full-sweep fixpoint for every monotone program, while never
//! attempting more edge relaxations. The CPU-parallel path is held to
//! the same contract across thread counts.
//!
//! Each proptest below runs 24 random hubbed graphs through *all*
//! program × transform × mode combinations, so every combination sees
//! at least 20 generated cases.

use proptest::collection::vec;
use proptest::prelude::*;

use tigr::engine::{
    run_cpu_virtual, run_cpu_with, run_monotone, BackendKind, CpuOptions, CpuSchedule, Direction,
    EdgeOp, Engine, EngineError, FrontierMode, MonotoneProgram, PlanError, PushOptions, SyncMode,
};
use tigr::{
    circular_transform, clique_transform, star_transform, udt_transform, Csr, CsrBuilder,
    DumbWeight, Edge, NodeId, Representation, VirtualGraph,
};
use tigr_sim::{GpuConfig, GpuSimulator};

const PROGRAMS: [MonotoneProgram; 4] = [
    MonotoneProgram::BFS,
    MonotoneProgram::SSSP,
    MonotoneProgram::SSWP,
    MonotoneProgram::CC,
];

const MODES: [FrontierMode; 3] = [
    FrontierMode::Auto,
    FrontierMode::Dense,
    FrontierMode::Sparse,
];

fn opts(worklist: bool, frontier: FrontierMode) -> PushOptions {
    PushOptions {
        worklist,
        frontier,
        sort_frontier_by_degree: false,
        sync: SyncMode::Relaxed,
        max_iterations: 100_000,
    }
}

/// The dumb weight that keeps `prog` exact on a physically split graph:
/// zero for additive programs (and inert for label copying), infinity
/// for the min-weight bottleneck fold.
fn sound_dumb_weight(prog: MonotoneProgram) -> DumbWeight {
    match prog.edge_op {
        EdgeOp::MinWeight => DumbWeight::Infinity,
        _ => DumbWeight::Zero,
    }
}

/// Strategy: a weighted directed graph with a guaranteed hub so every
/// split transformation actually fires.
fn arb_hubbed_graph(n: usize, m: usize) -> impl Strategy<Value = Csr> {
    (4..n).prop_flat_map(move |nodes| {
        vec((0..nodes as u32, 0..nodes as u32, 1..100u32), 0..m).prop_map(move |edges| {
            let mut b = CsrBuilder::new(nodes);
            for (s, d, w) in edges {
                b.add(Edge::new(NodeId::new(s), NodeId::new(d), w));
            }
            for t in 1..nodes as u32 {
                b.add(Edge::new(NodeId::new(0), NodeId::new(t), 7));
            }
            b.force_weighted(true);
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frontier_matches_full_sweep_on_original_and_virtual(
        g in arb_hubbed_graph(28, 100),
        k in 1u32..8,
        src in 0u32..28,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let sim = GpuSimulator::new(GpuConfig::tiny());
        let plain = VirtualGraph::new(&g, k);
        let coal = VirtualGraph::coalesced(&g, k);
        let reps = [
            ("original", Representation::Original(&g)),
            ("virtual", Representation::Virtual { graph: &g, overlay: &plain }),
            ("virtual+", Representation::Virtual { graph: &g, overlay: &coal }),
        ];
        for prog in PROGRAMS {
            let source = prog.needs_source().then_some(src);
            for (label, rep) in &reps {
                let full = run_monotone(&sim, rep, prog, source, &opts(false, FrontierMode::Auto));
                for mode in MODES {
                    let out = run_monotone(&sim, rep, prog, source, &opts(true, mode));
                    prop_assert_eq!(
                        &out.values, &full.values,
                        "{}/{}/{} diverged from full sweep", prog.name, label, mode.label()
                    );
                    prop_assert!(out.converged);
                    prop_assert!(
                        out.edges_touched <= full.edges_touched,
                        "{}/{}/{}: frontier touched {} edges, full sweep {}",
                        prog.name, label, mode.label(), out.edges_touched, full.edges_touched
                    );
                }
            }
        }
    }

    #[test]
    fn frontier_matches_full_sweep_on_physical_splits(
        g in arb_hubbed_graph(24, 80),
        k in 2u32..8,
        src in 0u32..24,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let sim = GpuSimulator::new(GpuConfig::tiny());
        for prog in PROGRAMS {
            let source = prog.needs_source().then_some(src);
            let dumb = sound_dumb_weight(prog);
            for (label, t) in [
                ("udt", udt_transform(&g, k, dumb)),
                ("star", star_transform(&g, k, dumb)),
                ("circular", circular_transform(&g, k, dumb)),
                ("clique", clique_transform(&g, k, dumb)),
            ] {
                let rep = Representation::Physical(&t);
                let full = run_monotone(&sim, &rep, prog, source, &opts(false, FrontierMode::Auto));
                for mode in MODES {
                    let out = run_monotone(&sim, &rep, prog, source, &opts(true, mode));
                    prop_assert_eq!(
                        &out.values, &full.values,
                        "{}/{}/{} diverged from full sweep", prog.name, label, mode.label()
                    );
                    prop_assert!(
                        out.edges_touched <= full.edges_touched,
                        "{}/{}/{}: frontier touched {} edges, full sweep {}",
                        prog.name, label, mode.label(), out.edges_touched, full.edges_touched
                    );
                }
            }
        }
    }

    #[test]
    fn cpu_schedules_match_sequential_sweep(
        g in arb_hubbed_graph(32, 140),
        src in 0u32..32,
        k in 1u32..8,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        for prog in PROGRAMS {
            let source = prog.needs_source().then_some(src);
            // The reference: a sequential (1-thread, no-steal) full sweep
            // over the original representation.
            let seq = run_cpu_with(&g, prog, source, &cpu_opts(1, false, CpuSchedule::NodeChunk));
            for schedule in CpuSchedule::ALL {
                for frontier in [false, true] {
                    for threads in [1usize, 4] {
                        let mut o = cpu_opts(threads, frontier, schedule);
                        o.virtual_k = k.max(1);
                        let out = run_cpu_with(&g, prog, source, &o);
                        prop_assert_eq!(
                            &out.values, &seq.values,
                            "{}/{}/frontier={}/threads={} diverged from sequential sweep",
                            prog.name, schedule.label(), frontier, threads
                        );
                        // The strict work-saving bound holds only for the
                        // deterministic single-thread run: under relaxed
                        // sync with real threads, a stale value read can
                        // re-activate an already-settled node and touch a
                        // few extra edges beyond the full-sweep count.
                        if frontier && threads == 1 {
                            prop_assert!(
                                out.edges_touched <= seq.edges_touched,
                                "{}/{}/threads={}: frontier touched {} edges, full sweep {}",
                                prog.name, schedule.label(), threads,
                                out.edges_touched, seq.edges_touched
                            );
                        }
                        prop_assert_eq!(out.sched.worker_edges.len(), threads);
                        prop_assert_eq!(
                            out.sched.worker_edges.iter().sum::<u64>(),
                            out.edges_touched
                        );
                    }
                }
            }
            // A prebuilt coalesced overlay must reach the same fixpoint
            // as the internally built consecutive one.
            let coal = VirtualGraph::coalesced(&g, k.max(1));
            let out = run_cpu_virtual(&g, &coal, prog, source, &cpu_opts(3, true, CpuSchedule::Virtual));
            prop_assert_eq!(
                &out.values, &seq.values,
                "{} on coalesced overlay diverged from sequential sweep", prog.name
            );
        }
    }

    /// Work-stealing and edge-balanced cuts change only *which worker*
    /// relaxes an edge: repeated runs of the same configuration must
    /// produce bit-identical value arrays.
    #[test]
    fn cpu_schedules_are_deterministic_across_runs(
        g in arb_hubbed_graph(28, 120),
        src in 0u32..28,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        for prog in [MonotoneProgram::SSSP, MonotoneProgram::CC] {
            let source = prog.needs_source().then_some(src);
            for schedule in [CpuSchedule::EdgeBalanced, CpuSchedule::Virtual] {
                for frontier in [false, true] {
                    let o = cpu_opts(4, frontier, schedule);
                    let first = run_cpu_with(&g, prog, source, &o);
                    for _ in 0..2 {
                        let again = run_cpu_with(&g, prog, source, &o);
                        prop_assert_eq!(
                            &again.values, &first.values,
                            "{}/{}/frontier={} nondeterministic", prog.name, schedule.label(), frontier
                        );
                    }
                }
            }
        }
    }
}

fn cpu_opts(threads: usize, frontier: bool, schedule: CpuSchedule) -> CpuOptions {
    CpuOptions {
        threads,
        frontier,
        schedule,
        ..CpuOptions::default()
    }
}

proptest! {
    // The full plan matrix multiplies out to a few hundred engine runs
    // per case; fewer cases keep the suite fast while every combination
    // still sees double-digit generated graphs.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Plan-matrix differential: every backend × direction × frontier
    /// mode × CPU schedule × representation must reach exactly the
    /// fixpoint of a sequential push full sweep, and the combinations
    /// the theorems rule out must fail as *typed* plan errors, not
    /// wrong answers.
    #[test]
    fn plan_matrix_matches_sequential_push_sweep(
        g in arb_hubbed_graph(22, 80),
        k in 1u32..8,
        src in 0u32..22,
    ) {
        let src = NodeId::new(src % g.num_nodes() as u32);
        let plain = VirtualGraph::new(&g, k);
        let coal = VirtualGraph::coalesced(&g, k);
        let reps = [
            ("original", Representation::Original(&g)),
            ("virtual", Representation::Virtual { graph: &g, overlay: &plain }),
            ("virtual+", Representation::Virtual { graph: &g, overlay: &coal }),
        ];
        for prog in PROGRAMS {
            let source = prog.needs_source().then_some(src);
            for (label, rep) in &reps {
                // Reference: a sequential push full sweep — no simulator,
                // no worklist, no parallelism.
                let reference = Engine::new(GpuConfig::tiny())
                    .with_backend(BackendKind::Sequential)
                    .with_options(opts(false, FrontierMode::Auto))
                    .run_program(rep, prog, source)
                    .unwrap();

                // Warp simulator: direction × frontier mode.
                for direction in Direction::ALL {
                    for mode in MODES {
                        let out = Engine::new(GpuConfig::tiny())
                            .with_direction(direction)
                            .with_options(opts(true, mode))
                            .run_program(rep, prog, source)
                            .unwrap();
                        prop_assert_eq!(
                            &out.values, &reference.values,
                            "warpsim/{}/{}/{}/{} diverged",
                            prog.name, label, direction.label(), mode.label()
                        );
                    }
                }

                // CPU pool: direction × schedule. Pull and auto run
                // through the batched executor's gather side (every
                // program here has an associative combine, so pull is
                // licensed on all three representations).
                for direction in Direction::ALL {
                    for schedule in CpuSchedule::ALL {
                        let engine = Engine::new(GpuConfig::tiny())
                            .with_backend(BackendKind::CpuPool)
                            .with_direction(direction)
                            .with_cpu_options(cpu_opts(2, true, schedule));
                        let out = engine.run_program(rep, prog, source).unwrap();
                        prop_assert_eq!(
                            &out.values, &reference.values,
                            "cpupool/{}/{}/{}/{} diverged",
                            prog.name, label, direction.label(), schedule.label()
                        );
                    }
                }

                // Sequential backend: every direction, worklist on.
                for direction in Direction::ALL {
                    let out = Engine::new(GpuConfig::tiny())
                        .with_backend(BackendKind::Sequential)
                        .with_direction(direction)
                        .with_options(opts(true, FrontierMode::Auto))
                        .run_program(rep, prog, source)
                        .unwrap();
                    prop_assert_eq!(
                        &out.values, &reference.values,
                        "sequential/{}/{}/{} diverged",
                        prog.name, label, direction.label()
                    );
                }
            }

            // Theorem 3 boundary: pull over a physically split graph is a
            // typed error on every backend that can express it.
            let t = udt_transform(&g, k.max(2), sound_dumb_weight(prog));
            let rep = Representation::Physical(&t);
            for backend in [BackendKind::WarpSim, BackendKind::Sequential] {
                let err = Engine::new(GpuConfig::tiny())
                    .with_backend(backend)
                    .with_direction(Direction::Pull)
                    .run_program(&rep, prog, source)
                    .unwrap_err();
                prop_assert!(
                    matches!(err, EngineError::InvalidPlan(PlanError::PullOverPhysical)),
                    "{}: expected PullOverPhysical, got {err}", prog.name
                );
            }
        }
    }
}
