//! Road network vs social network: when does Tigr help?
//!
//! Tigr's transformations target *power-law* irregularity. A road
//! network (modeled as a grid) is already regular — every intersection
//! has at most four neighbors — so splitting has nothing to do. This
//! example quantifies that contrast, reproducing the paper's framing
//! that the benefit tracks the degree skew of the input.
//!
//! ```sh
//! cargo run --release --example road_vs_social
//! ```

use tigr::graph::generators::{grid_2d, rmat, with_uniform_weights, RmatConfig};
use tigr::graph::stats::degree_stats;
use tigr::graph::Csr;
use tigr::{Engine, NodeId, Representation, VirtualGraph};

fn report(name: &str, g: &Csr, engine: &Engine) {
    let s = degree_stats(g);
    let overlay = VirtualGraph::coalesced(g, 10);
    let src = NodeId::new(0);

    let base = engine.sssp(&Representation::Original(g), src).unwrap();
    let tigr = engine
        .sssp(
            &Representation::Virtual {
                graph: g,
                overlay: &overlay,
            },
            src,
        )
        .unwrap();
    assert_eq!(base.values, tigr.values);

    println!(
        "{name:<14} dmax {:>6}  CV {:>5.2}  | warp effi. {:>5.1}% -> {:>5.1}%  | speedup {:.2}x",
        s.max_degree,
        s.coefficient_of_variation,
        100.0 * base.report.warp_efficiency(),
        100.0 * tigr.report.warp_efficiency(),
        base.report.total_cycles() as f64 / tigr.report.total_cycles() as f64,
    );
}

fn main() {
    let engine = Engine::default();

    // A 150x150 city grid with travel times: regular, high diameter.
    let road = with_uniform_weights(&grid_2d(150, 150), 1, 10, 3);

    // A social graph of the same node count: skewed, low diameter.
    let social = with_uniform_weights(&rmat(&RmatConfig::heavy_tail(15, 8), 3), 1, 10, 3);

    println!("SSSP with Tigr-V+ (K=10) vs untransformed baseline:\n");
    report("road grid", &road, &engine);
    report("social rmat", &social, &engine);

    println!(
        "\nthe transformation pays off where the degree distribution is skewed; on a\n\
         regular, high-diameter grid nothing is split and the virtual layer only adds\n\
         per-iteration frontier-expansion overhead — use the plain engine there."
    );
}
