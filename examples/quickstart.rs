//! Quickstart: transform an irregular graph and watch SIMD efficiency
//! recover.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tigr::engine::pr;
use tigr::graph::generators::{rmat, with_uniform_weights, RmatConfig};
use tigr::graph::properties::dijkstra;
use tigr::graph::stats::degree_stats;
use tigr::{DumbWeight, Engine, NodeId, Representation, VirtualGraph};

fn main() {
    // 1. A synthetic power-law graph: 16K nodes, ~128K edges, with hubs.
    let graph = with_uniform_weights(&rmat(&RmatConfig::graph500(14, 8), 42), 1, 64, 42);
    let stats = degree_stats(&graph);
    println!(
        "graph: {} nodes, {} edges, max degree {}, degree CV {:.2}",
        stats.num_nodes, stats.num_edges, stats.max_degree, stats.coefficient_of_variation
    );

    // 2. Transform it. Physically (UDT) ...
    let udt = tigr::udt_transform(&graph, 64, DumbWeight::Zero);
    println!(
        "UDT(K=64): +{} split nodes, +{} edges, max degree now {}",
        udt.num_split_nodes(),
        udt.num_new_edges(),
        udt.graph().max_out_degree()
    );
    // ... or virtually (no graph change at all — just an overlay).
    let overlay = VirtualGraph::coalesced(&graph, 10);
    println!(
        "virtual(K=10): {} virtual nodes over {} physical, overlay costs {} KiB",
        overlay.num_virtual_nodes(),
        overlay.num_physical_nodes(),
        overlay.size_bytes() / 1024
    );

    // 3. Run SSSP on the simulated GPU, all three ways.
    let engine = Engine::default();
    let src = NodeId::new(0);
    let base = engine.sssp(&Representation::Original(&graph), src).unwrap();
    let phys = engine.sssp(&Representation::Physical(&udt), src).unwrap();
    let virt = engine
        .sssp(
            &Representation::Virtual {
                graph: &graph,
                overlay: &overlay,
            },
            src,
        )
        .unwrap();

    // All agree with Dijkstra.
    let oracle = dijkstra(&graph, src);
    assert_eq!(base.values, oracle);
    assert_eq!(udt.project_values(&phys.values), oracle);
    assert_eq!(virt.values, oracle);
    println!("\nall three representations agree with Dijkstra ✓");

    println!(
        "\n{:<12} {:>8} {:>14} {:>12}",
        "repr", "#iter", "cycles", "warp effi."
    );
    for (name, out) in [("original", &base), ("udt", &phys), ("virtual+", &virt)] {
        println!(
            "{:<12} {:>8} {:>14} {:>11.1}%",
            name,
            out.report.num_iterations(),
            out.report.total_cycles(),
            100.0 * out.report.warp_efficiency()
        );
    }
    println!(
        "\nTigr-V+ speedup over baseline: {:.2}x",
        base.report.total_cycles() as f64 / virt.report.total_cycles() as f64
    );

    // 4. PageRank works on the virtual layer too (Corollary 4).
    let ranks = engine
        .pagerank(
            &Representation::Virtual {
                graph: &graph,
                overlay: &overlay,
            },
            &pr::out_degrees(&graph),
            &pr::PrOptions::default(),
        )
        .unwrap();
    let top = ranks
        .ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    println!("top PageRank node: {} (rank {:.5})", top.0, top.1);
}
