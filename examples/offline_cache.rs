//! Offline transformation caching — the §6.4 amortization claim:
//! "physical transformation can be performed offline, its cost can be
//! amortized across different runs. For virtual transformation, it can
//! be easily integrated into the graph loading phase."
//!
//! This example resolves a UDT-transformed graph through the
//! [`GraphStore`] artifact layer once — a cache miss that builds the
//! transform and writes a checksummed `TIGRCSR2` artifact — and shows
//! that later runs are a pure load: a cache hit reporting zero
//! transform/transpose/overlay work. The virtual overlay, by contrast,
//! is cheap enough to build at load time even with no cache at all.
//!
//! ```sh
//! cargo run --release --example offline_cache
//! ```

use std::time::Instant;

use tigr::core::{CacheStatus, GraphStore, PrepareSpec, TransformKind};
use tigr::graph::properties;
use tigr::{DumbWeight, Engine, NodeId, Representation, VirtualGraph};

fn main() {
    let dir = std::env::temp_dir().join("tigr_offline_cache_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store = GraphStore::new(Some(dir.clone()));

    // One spec describes everything this workload derives from the
    // input: a LiveJournal analog plus its offline UDT transform.
    let spec = PrepareSpec::generated("dataset:livejournal:512:weighted", 2018).with_transform(
        TransformKind::Udt,
        Some(64),
        DumbWeight::Zero,
    );

    // --- One-time offline step: generate + transform + write artifact. ---
    let t0 = Instant::now();
    let cold = store.prepare(&spec).expect("prepare");
    let offline_time = t0.elapsed();
    let graph = cold.graph();
    let transformed = cold.transformed().expect("spec requested a transform");
    assert_eq!(cold.report().cache, CacheStatus::Miss);
    println!(
        "input: {} nodes, {} edges (LiveJournal analog)",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!(
        "offline: generate + UDT transform took {offline_time:.2?}; cached {} nodes to {}",
        transformed.graph().num_nodes(),
        cold.report()
            .artifact
            .as_ref()
            .expect("store has a cache dir")
            .display()
    );

    // --- Every subsequent run: load the artifact instead of transforming. ---
    let t1 = Instant::now();
    let warm = store.prepare(&spec).expect("prepare");
    let load_time = t1.elapsed();
    assert_eq!(warm.report().cache, CacheStatus::Hit);
    assert_eq!(warm.report().work_items(), 0, "warm run derives nothing");
    assert_eq!(
        warm.transformed().expect("loaded from artifact").graph(),
        transformed.graph()
    );
    println!(
        "online: artifact load took {load_time:.2?} ({}x faster than transforming)",
        (offline_time.as_nanos() / load_time.as_nanos().max(1))
    );

    // --- The virtual overlay needs no cache at all. ---
    let t2 = Instant::now();
    let overlay = VirtualGraph::coalesced(graph, 10);
    println!(
        "online: virtual overlay built in {:.2?} — no cache needed",
        t2.elapsed()
    );

    // Both paths produce correct SSSP results.
    let engine = Engine::default();
    let src = NodeId::new(0);
    let expect = properties::dijkstra(graph, src);
    let phys = engine
        .sssp(
            &Representation::Original(warm.transformed().expect("transform").graph()),
            src,
        )
        .expect("runs");
    assert_eq!(&phys.values[..graph.num_nodes()], &expect[..]);
    let virt = engine
        .sssp(
            &Representation::Virtual {
                graph,
                overlay: &overlay,
            },
            src,
        )
        .expect("runs");
    assert_eq!(virt.values, expect);
    println!("\nboth cached-physical and virtual runs match Dijkstra ✓");

    std::fs::remove_dir_all(&dir).ok();
}
