//! Offline transformation caching — the §6.4 amortization claim:
//! "physical transformation can be performed offline, its cost can be
//! amortized across different runs. For virtual transformation, it can
//! be easily integrated into the graph loading phase."
//!
//! This example transforms a graph once, caches the result in the
//! `TIGRCSR1` binary container, and shows that later runs pay only a
//! fast binary load — while the virtual overlay is rebuilt at load time
//! in microseconds.
//!
//! ```sh
//! cargo run --release --example offline_cache
//! ```

use std::time::Instant;

use tigr::graph::io::binary::{load_binary, save_binary};
use tigr::graph::{datasets, properties};
use tigr::{DumbWeight, Engine, NodeId, Representation, VirtualGraph};

fn main() {
    let dir = std::env::temp_dir().join("tigr_offline_cache_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cache = dir.join("livejournal_udt.bin");

    let spec = datasets::by_name("livejournal").expect("table 3 dataset");
    let graph = spec.generate_weighted(512, 2018);
    println!(
        "input: {} nodes, {} edges (LiveJournal analog)",
        graph.num_nodes(),
        graph.num_edges()
    );

    // --- One-time offline step: physical UDT transformation + cache. ---
    let t0 = Instant::now();
    let transformed = tigr::udt_transform(&graph, 64, DumbWeight::Zero);
    let transform_time = t0.elapsed();
    save_binary(transformed.graph(), &cache).expect("write cache");
    println!(
        "offline: UDT transform took {transform_time:.2?}; cached {} nodes to {}",
        transformed.graph().num_nodes(),
        cache.display()
    );

    // --- Every subsequent run: load the cache instead of transforming. ---
    let t1 = Instant::now();
    let cached = load_binary(&cache).expect("read cache");
    let load_time = t1.elapsed();
    println!(
        "online: binary load took {load_time:.2?} ({}x faster than transforming)",
        (transform_time.as_nanos() / load_time.as_nanos().max(1))
    );
    assert_eq!(&cached, transformed.graph());

    // --- The virtual overlay needs no cache at all. ---
    let t2 = Instant::now();
    let overlay = VirtualGraph::coalesced(&graph, 10);
    println!(
        "online: virtual overlay built in {:.2?} — no cache needed",
        t2.elapsed()
    );

    // Both paths produce correct SSSP results.
    let engine = Engine::default();
    let src = NodeId::new(0);
    let expect = properties::dijkstra(&graph, src);
    let phys = engine
        .sssp(&Representation::Original(&cached), src)
        .expect("runs");
    assert_eq!(&phys.values[..graph.num_nodes()], &expect[..]);
    let virt = engine
        .sssp(
            &Representation::Virtual {
                graph: &graph,
                overlay: &overlay,
            },
            src,
        )
        .expect("runs");
    assert_eq!(virt.values, expect);
    println!("\nboth cached-physical and virtual runs match Dijkstra ✓");

    std::fs::remove_dir_all(&dir).ok();
}
