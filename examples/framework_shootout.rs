//! Mini Table 4: one dataset, every framework.
//!
//! Runs BFS, SSSP, and PageRank on a Pokec-like analog with Maximum
//! Warp, CuSha, a Gunrock-style frontier engine, and Tigr-V+, printing a
//! small comparison table — the workflow of the paper's §6.2 in one
//! binary.
//!
//! ```sh
//! cargo run --release --example framework_shootout
//! ```

use tigr::baselines::Baseline;
use tigr::engine::{pr, MonotoneProgram, PrMode, PrOptions};
use tigr::graph::datasets;
use tigr::{Engine, GpuConfig, GpuSimulator, Representation, VirtualGraph};

fn main() {
    let spec = datasets::by_name("pokec").expect("pokec is a Table 3 dataset");
    let graph = spec.generate(1024, 2018);
    let weighted = spec.generate_weighted(1024, 2018);
    println!(
        "pokec analog: {} nodes, {} edges, dmax {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_out_degree()
    );

    let sim = GpuSimulator::new_parallel(GpuConfig::default());
    let src = tigr::NodeId::new(0);
    let overlay = VirtualGraph::coalesced(&graph, 10);
    let overlay_w = VirtualGraph::coalesced(&weighted, 10);
    let engine = Engine::parallel(GpuConfig::default());
    let ms = |cycles: u64| GpuConfig::default().cycles_to_ms(cycles);

    println!(
        "\n{:<8} {:>10} {:>10} {:>10} {:>10}",
        "alg", "MW", "CuSha", "Gunrock", "Tigr-V+"
    );
    for (alg, prog, g, ov) in [
        ("BFS", MonotoneProgram::BFS, &graph, &overlay),
        ("SSSP", MonotoneProgram::SSSP, &weighted, &overlay_w),
    ] {
        let mut cells = Vec::new();
        for b in Baseline::ALL {
            let r = b.run_monotone(&sim, g, prog, Some(src), None).unwrap();
            cells.push(ms(r.report.total_cycles()));
        }
        let tigr = engine
            .run(
                &Representation::Virtual {
                    graph: g,
                    overlay: ov,
                },
                prog,
                Some(src),
            )
            .unwrap();
        cells.push(ms(tigr.report.total_cycles()));
        println!(
            "{:<8} {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9.2}ms",
            alg, cells[0], cells[1], cells[2], cells[3]
        );
    }

    // PageRank: the one analytic where shard-based CuSha usually wins.
    let opts = PrOptions {
        max_iterations: 20,
        tolerance: 1e-4,
        mode: PrMode::Push,
        ..PrOptions::default()
    };
    let mut cells = Vec::new();
    for b in Baseline::ALL {
        let r = b.run_pagerank(&sim, &graph, &opts, None).unwrap();
        cells.push(ms(r.report.total_cycles()));
    }
    let tigr = engine
        .pagerank(
            &Representation::Virtual {
                graph: &graph,
                overlay: &overlay,
            },
            &pr::out_degrees(&graph),
            &opts,
        )
        .unwrap();
    cells.push(ms(tigr.report.total_cycles()));
    println!(
        "{:<8} {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>9.2}ms",
        "PR", cells[0], cells[1], cells[2], cells[3]
    );

    println!("\n(simulated milliseconds; expect Tigr-V+ ahead on BFS/SSSP, CuSha on PR)");
}
