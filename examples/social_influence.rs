//! Social-network influence analysis — the paper's motivating use case
//! ("identifying influencers in social networks", §1).
//!
//! Builds a Barabási–Albert friendship network, then finds influencers
//! two ways: PageRank (global standing) and betweenness centrality
//! (brokerage). Both run on the virtually transformed graph, and the
//! example shows how much SIMD utilization the transformation recovers
//! on exactly this kind of hub-heavy data.
//!
//! ```sh
//! cargo run --release --example social_influence
//! ```

use tigr::engine::{bc, pr};
use tigr::graph::generators::{barabasi_albert, BarabasiAlbertConfig};
use tigr::graph::stats::degree_stats;
use tigr::{Engine, NodeId, Representation, VirtualGraph};

fn main() {
    // A friendship network with preferential attachment: early members
    // become hubs, exactly the irregularity Tigr targets.
    let network = barabasi_albert(
        &BarabasiAlbertConfig {
            num_nodes: 20_000,
            edges_per_node: 4,
            symmetric: true,
        },
        7,
    );
    let stats = degree_stats(&network);
    println!(
        "social network: {} members, {} friendships, biggest hub has {} connections",
        stats.num_nodes,
        stats.num_edges / 2,
        stats.max_degree
    );

    let overlay = VirtualGraph::coalesced(&network, 10);
    let rep = Representation::Virtual {
        graph: &network,
        overlay: &overlay,
    };
    let engine = Engine::default();

    // --- PageRank influencers ---
    let ranks = engine
        .pagerank(&rep, &pr::out_degrees(&network), &pr::PrOptions::default())
        .unwrap();
    let mut by_rank: Vec<(usize, f32)> = ranks.ranks.iter().copied().enumerate().collect();
    by_rank.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 influencers by PageRank:");
    for (v, r) in by_rank.iter().take(5) {
        println!(
            "  member {v:>6}  rank {:.5}  ({} friends)",
            r,
            network.out_degree(NodeId::from_index(*v))
        );
    }

    // --- Brokers by betweenness (sampled sources) ---
    let sources: Vec<NodeId> = [0u32, 77, 500, 9_001, 19_999]
        .into_iter()
        .map(NodeId::new)
        .collect();
    let (centrality, bc_report) = bc::run_sampled(engine.sim(), &rep, &sources);
    let total_cycles = bc_report.total_cycles();
    let mut by_bc: Vec<(usize, f64)> = centrality.iter().copied().enumerate().collect();
    by_bc.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\ntop-5 brokers by sampled betweenness ({} sources):",
        sources.len()
    );
    for (v, c) in by_bc.iter().take(5) {
        println!("  member {v:>6}  score {c:.1}");
    }
    println!("betweenness cost: {total_cycles} simulated cycles");

    // --- What the transformation bought us ---
    let base = engine
        .bfs(&Representation::Original(&network), NodeId::new(0))
        .unwrap();
    let tigr = engine.bfs(&rep, NodeId::new(0)).unwrap();
    println!(
        "\nBFS sweep efficiency: {:.1}% untransformed -> {:.1}% with Tigr-V+ ({:.2}x faster)",
        100.0 * base.report.warp_efficiency(),
        100.0 * tigr.report.warp_efficiency(),
        base.report.total_cycles() as f64 / tigr.report.total_cycles() as f64
    );
}
