//! Offline stand-in for `serde_derive`.
//!
//! The sibling `serde` shim blanket-implements `Serialize` and
//! `Deserialize` for every type, so the derive macros here only need to
//! exist — they expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
