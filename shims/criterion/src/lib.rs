//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the subset of the API the workspace's benches use
//! (`Criterion`, benchmark groups, `BenchmarkId`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros). Measurement is a
//! single timed pass per benchmark — enough to exercise every bench
//! body under `cargo test`/`cargo bench` offline, not a statistics
//! engine. Each registered closure runs exactly `sample_size` clamped
//! iterations (default 1) so bench targets stay fast.

use std::fmt::Display;
use std::time::Instant;

/// Top-level harness handle passed to every bench function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Registers and immediately runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim always runs one
    /// measurement pass regardless of the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and immediately runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Registers a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = Bencher::default();
        let start = Instant::now();
        f(&mut b, input);
        report(&label, start, b.iters);
        self
    }

    /// Ends the group (no-op; results are reported as benches run).
    pub fn finish(self) {}
}

/// Function-plus-parameter benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle handed to each benchmark body.
#[derive(Default)]
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs the routine once and keeps its output alive via
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        self.iters += 1;
        black_box(routine());
    }
}

/// Opaque value barrier (re-exported shim over `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher::default();
    let start = Instant::now();
    f(&mut b);
    report(label, start, b.iters);
}

fn report(label: &str, start: Instant, iters: u64) {
    let elapsed = start.elapsed();
    let per_iter = elapsed.checked_div(iters.max(1) as u32).unwrap_or(elapsed);
    println!("bench {label}: {per_iter:?}/iter ({iters} iters, {elapsed:?} total)");
}

/// Bundles bench functions under a name, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bench_bodies() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut seen = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| b.iter(|| seen = x));
        g.finish();
        assert_eq!(seen, 7);
    }
}
