//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach a crates.io registry, so this shim
//! supplies the subset of serde the workspace actually relies on: the
//! `Serialize` / `Deserialize` trait names (usable as derive targets and
//! bounds) with blanket implementations. No serialization format is ever
//! exercised in-tree, so the traits carry no methods.

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
