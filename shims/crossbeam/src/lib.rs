//! Offline stand-in for `crossbeam`.
//!
//! The workspace only uses `crossbeam::queue::SegQueue` as a
//! multi-producer collector; this shim provides the same API over
//! `Mutex<VecDeque>`. Throughput is lower than the real lock-free
//! segment queue, but the queues in-tree hold at most a frontier's worth
//! of node ids per iteration.

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// Unbounded MPMC FIFO queue, API-compatible with
    /// `crossbeam::queue::SegQueue` for the operations used in-tree.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends `value` at the back.
        pub fn push(&self, value: T) {
            self.inner.lock().unwrap().push_back(value);
        }

        /// Removes and returns the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner.lock().unwrap().pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().len()
        }

        /// `true` if nothing is queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let q = SegQueue::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..1000 {
                        q.push(t * 1000 + i);
                    }
                });
            }
        });
        let mut seen: Vec<u32> = std::iter::from_fn(|| q.pop()).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 4000);
        assert_eq!(seen, (0..4000).collect::<Vec<_>>());
    }
}
