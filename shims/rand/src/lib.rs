//! Offline stand-in for `rand` 0.8.
//!
//! Implements the exact API surface the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen::<f64>()`, and
//! `Rng::gen_range(..)` over integer ranges — on top of a xoshiro256**
//! generator seeded through SplitMix64. Streams are deterministic per
//! seed (what the determinism tests require) but intentionally differ
//! from upstream `rand`'s ChaCha12 streams; nothing in-tree asserts
//! specific draws.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding entry points (only `seed_from_u64` is used in-tree).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from an integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift (Lemire) without the rejection step: the bias is
    // below 2^-64 · span, irrelevant for test-data generation.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
range_impls!(u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64. Deterministic per seed; not cryptographic.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u32..=9);
            assert!((1..=9).contains(&w));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn f64_is_a_unit_fraction() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        assert!((acc / 1000.0 - 0.5).abs() < 0.05, "mean {}", acc / 1000.0);
    }
}
