//! Case runner support types: configuration, per-test RNG, and the
//! accept/reject/fail result carried out of each case.

/// Per-block configuration (only `cases` is honored).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition failed; the case is retried.
    Reject(String),
    /// `prop_assert*!` failed; the property fails.
    Fail(String),
}

/// Deterministic per-test RNG (SplitMix64 seeded from the test's path),
/// so every `cargo test` run replays the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier (typically `module_path!() + name`).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-mixed seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::from_name("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
