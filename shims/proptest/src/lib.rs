//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros the workspace's
//! property tests use: integer-range and tuple strategies, `any::<T>()`,
//! `collection::vec`, `prop_map` / `prop_flat_map`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!` macros, driven by a
//! deterministic per-test RNG. Failing cases are reported with the
//! assertion message but are **not shrunk** — when a property fails,
//! rerun with the printed case number and add a focused regression test.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs a block of property-test functions.
///
/// Supports the subset of upstream grammar used in-tree: an optional
/// leading `#![proptest_config(expr)]`, then `#[test] fn name(pat in
/// strategy, ...) { body }` items. Each function draws `config.cases`
/// accepted cases; `prop_assume!` rejections are retried (with a cap),
/// `prop_assert*!` failures panic with the case's assertion message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(20).max(100);
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest `{}`: too many rejected cases ({accepted} accepted of {} wanted)",
                    stringify!($name),
                    cfg.cases,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                match result {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest `{}` failed on case {}: {}",
                        stringify!($name),
                        accepted,
                        msg
                    ),
                }
            }
        }
    )*};
}

/// Property assertion: on failure the current case fails with the
/// formatted message (no process panic until the runner reports it).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}` (from `{}` == `{}`)",
            a,
            b,
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` != `{:?}` (from `{}` != `{}`)",
            a,
            b,
            stringify!($a),
            stringify!($b)
        );
    }};
}

/// Rejects the current case (retried without counting toward the case
/// budget) when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
