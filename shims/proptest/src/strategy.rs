//! Value-generation strategies and combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies behind references generate like their referents.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = TestRng::from_name("compose");
        let strat = (0u32..10, 5usize..=6).prop_map(|(a, b)| a as usize + b);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((5..16).contains(&v));
        }
    }

    #[test]
    fn flat_map_threads_dependent_bounds() {
        let mut rng = TestRng::from_name("flat");
        let strat = (1usize..5).prop_flat_map(|n| (0usize..n, Just(n)));
        for _ in 0..200 {
            let (v, n) = strat.generate(&mut rng);
            assert!(v < n);
        }
    }
}
