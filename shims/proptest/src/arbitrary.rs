//! `any::<T>()` and the `Arbitrary` trait for primitives and tuples.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! arbitrary_tuples {
    ($(($($T:ident),+))*) => {$(
        impl<$($T: Arbitrary),+> Arbitrary for ($($T,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($T::arbitrary(rng),)+)
            }
        }
    )*};
}
arbitrary_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuples_of_primitives_generate() {
        let mut rng = TestRng::from_name("arb");
        let strat = any::<(u8, u8, u8, bool)>();
        let mut trues = 0;
        for _ in 0..200 {
            let (_, _, _, b) = strat.generate(&mut rng);
            trues += b as u32;
        }
        assert!(
            trues > 50 && trues < 150,
            "bool should be balanced: {trues}"
        );
    }
}
