//! Collection strategies (`vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s whose length is drawn from `len` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::from_name("vec");
        let strat = vec(0u32..5, 2..10);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
