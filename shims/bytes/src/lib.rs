//! Offline stand-in for `bytes`.
//!
//! Supplies the `Buf` (reading cursor over `&[u8]`) and `BufMut`
//! (appending writer over `Vec<u8>`) method subset the binary graph
//! container uses: little-endian integer accessors plus slice copies.

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append-only writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_slice(b"xy");

        let mut cur = buf.as_slice();
        assert_eq!(cur.remaining(), 15);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), u64::MAX - 1);
        let mut tail = [0u8; 2];
        cur.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u32_le();
    }
}
