//! # Tigr — Transforming Irregular Graphs for GPU-Friendly Graph Processing
//!
//! A Rust reproduction of the ASPLOS 2018 paper by Nodehi Sabet, Qiu, and
//! Zhao. This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `tigr-graph` | CSR storage, loaders, power-law generators, dataset analogs, statistics, oracles |
//! | [`sim`] | `tigr-sim` | deterministic GPU SIMD simulator (warps, coalescing, warp efficiency) |
//! | [`core`] | `tigr-core` | split transformations (clique/circular/star/**UDT**), dumb weights, **virtual node arrays**, edge-array coalescing, correctness checks |
//! | [`engine`] | `tigr-engine` | push/pull vertex-centric engine, worklist + relaxation, BFS/CC/SSSP/SSWP/BC/PR |
//! | [`baselines`] | `tigr-baselines` | Maximum Warp, CuSha, Gunrock re-implementations |
//! | [`server`] | `tigr-server` | concurrent query serving over prepared graphs (TCP/Unix socket) |
//!
//! The most common items are also re-exported at the crate root.
//!
//! # Quickstart
//!
//! ```
//! use tigr::{Engine, NodeId, Representation, VirtualGraph};
//! use tigr::graph::generators::star_graph;
//!
//! // A power-law-extreme input: one node with 10,000 neighbors.
//! let g = star_graph(10_001);
//!
//! // Virtually split every high-degree node down to K = 10 (Tigr-V+).
//! let overlay = VirtualGraph::coalesced(&g, 10);
//!
//! let engine = Engine::default();
//! let baseline = engine.bfs(&Representation::Original(&g), NodeId::new(0))?;
//! let tigr = engine.bfs(
//!     &Representation::Virtual { graph: &g, overlay: &overlay },
//!     NodeId::new(0),
//! )?;
//!
//! // Identical results, far better SIMD utilization.
//! assert_eq!(baseline.values, tigr.values);
//! assert!(tigr.report.warp_efficiency() > baseline.report.warp_efficiency());
//! assert!(tigr.report.total_cycles() < baseline.report.total_cycles());
//! # Ok::<(), tigr::engine::EngineError>(())
//! ```

#![warn(missing_docs)]

pub use tigr_baselines as baselines;
pub use tigr_core as core;
pub use tigr_engine as engine;
pub use tigr_graph as graph;
pub use tigr_server as server;
pub use tigr_sim as sim;

pub use tigr_baselines::Baseline;
pub use tigr_core::{
    circular_transform, clique_transform, recursive_star_transform, star_transform, udt_transform,
    DumbWeight, TransformedGraph, VirtualGraph,
};
pub use tigr_engine::{
    Engine, FrontierMode, MonotoneProgram, PushOptions, Representation, SyncMode,
};
pub use tigr_graph::{Csr, CsrBuilder, Edge, NodeId, Weight};
pub use tigr_sim::{GpuConfig, GpuSimulator, SimReport};
