//! Minimal dependency-free argument parsing.
//!
//! Grammar: `tigr <command> [subcommand] [--flag value | --switch] [positional...]`.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Flags that never take a value.
const SWITCHES: &[&str] = &[
    "coalesced",
    "weighted",
    "report",
    "help",
    "symmetric",
    "cpu",
    "stats",
    "no-cache",
    "values",
    "mutable",
];

impl Args {
    /// Parses a raw token list (excluding the program name and command).
    ///
    /// # Errors
    ///
    /// Returns a message when a value-taking flag is missing its value.
    pub fn parse(tokens: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = tokens.iter().peekable();
        while let Some(tok) = it.next() {
            let flag_name = tok
                .strip_prefix("--")
                .or_else(|| tok.strip_prefix('-').filter(|n| n.len() == 1));
            if let Some(name) = flag_name {
                if SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} requires a value"))?;
                    args.flags.insert(name.to_string(), value.clone());
                }
            } else {
                args.positionals.push(tok.clone());
            }
        }
        Ok(args)
    }

    /// Positional argument at `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    #[cfg(test)]
    pub fn num_positionals(&self) -> usize {
        self.positionals.len()
    }

    /// Value of `--name`, if given.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Parsed value of `--name`, or `default`.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{name}")),
        }
    }

    /// Required flag value.
    ///
    /// # Errors
    ///
    /// Returns a message when the flag is absent or does not parse.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.flag(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?
            .parse()
            .map_err(|_| format!("invalid value for --{name}"))
    }

    /// Whether the boolean switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn short_flags_take_values() {
        let a = Args::parse(&toks("-o out.bin -i in.txt")).unwrap();
        assert_eq!(a.flag("o"), Some("out.bin"));
        assert_eq!(a.flag("i"), Some("in.txt"));
        assert_eq!(a.num_positionals(), 0);
    }

    #[test]
    fn parses_mixed_arguments() {
        let a = Args::parse(&toks("input.txt --k 10 --coalesced output.bin")).unwrap();
        assert_eq!(a.positional(0), Some("input.txt"));
        assert_eq!(a.positional(1), Some("output.bin"));
        assert_eq!(a.num_positionals(), 2);
        assert_eq!(a.flag("k"), Some("10"));
        assert!(a.switch("coalesced"));
        assert!(!a.switch("report"));
    }

    #[test]
    fn flag_or_defaults_and_parses() {
        let a = Args::parse(&toks("--k 42")).unwrap();
        assert_eq!(a.flag_or("k", 7u32).unwrap(), 42);
        assert_eq!(a.flag_or("seed", 7u64).unwrap(), 7);
        assert!(a.flag_or::<u32>("k", 0).is_ok());
    }

    #[test]
    fn require_reports_missing_and_invalid() {
        let a = Args::parse(&toks("--k ten")).unwrap();
        assert!(a.require::<u32>("k").unwrap_err().contains("invalid"));
        assert!(a.require::<u32>("scale").unwrap_err().contains("missing"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&toks("--k"))
            .unwrap_err()
            .contains("requires a value"));
    }

    #[test]
    fn switch_at_end_is_fine() {
        let a = Args::parse(&toks("--report")).unwrap();
        assert!(a.switch("report"));
    }
}
