//! `tigr` — command-line interface to the Tigr graph-transformation
//! toolkit.
//!
//! ```text
//! tigr stats <graph>                         degree statistics & K suggestions
//! tigr generate <model> -o <file>            synthetic graphs (rmat/ba/er/ws/grid/dataset)
//! tigr transform <topology> -i <in> -o <out> physical split transformations
//! tigr prepare --graph <file>                warm the prepared-graph artifact cache
//! tigr run <analytic> --graph <file>         analytics on the simulated GPU
//! tigr convert -i <in> -o <out>              format conversion by extension
//! ```

mod args;
mod commands;
mod io_util;

use args::Args;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(match dispatch(&raw) {
        Ok(output) => {
            print!("{output}");
            0
        }
        Err(message) => {
            eprintln!("error: {message}");
            if message.starts_with(commands::TIMEOUT_PREFIX) {
                commands::EXIT_TIMEOUT
            } else {
                2
            }
        }
    });
}

fn dispatch(raw: &[String]) -> commands::CmdResult {
    let command = raw.first().map(String::as_str).unwrap_or("help");
    let rest = if raw.is_empty() { &[] } else { &raw[1..] };
    let args = Args::parse(rest)?;
    match command {
        "stats" => commands::stats::run(&args),
        "analyze" => commands::analyze::run(&args),
        "generate" => commands::generate::run(&args),
        "transform" => commands::transform::run(&args),
        "prepare" => commands::prepare::run(&args),
        "run" => commands::run::run(&args),
        "serve" => commands::serve::run(&args),
        "query" => commands::query::run(&args),
        "mutate" => commands::mutate::run(&args),
        "ingest" => commands::ingest::run(&args),
        "convert" => convert(&args),
        "help" | "--help" | "-h" => Ok(HELP.to_string()),
        other => Err(format!("unknown command `{other}`\n{HELP}")),
    }
}

fn convert(args: &Args) -> commands::CmdResult {
    let input: String = args.require("i")?;
    let output: String = args.require("o")?;
    let g = io_util::load_graph(&input)?;
    io_util::save_graph(&g, &output)?;
    Ok(format!(
        "converted {input} -> {output} ({} nodes, {} edges)\n",
        g.num_nodes(),
        g.num_edges()
    ))
}

const HELP: &str = "tigr — transforming irregular graphs for GPU-friendly processing

commands:
  stats <graph>                          degree statistics & K suggestions
  analyze <graph> [--k K]                irregularity reduction per transformation
  generate <model> -o <file>             rmat | ba | er | ws | grid | dataset
  transform <topology> -i <in> -o <out>  udt | star | recursive-star | circular | clique
  prepare --graph <file>                 warm the artifact cache for later runs
  run <analytic> --graph <file>          bfs | sssp | sswp | cc | pr | bc
  serve --graph <file>                   long-lived query daemon (TCP/Unix socket)
  query <verb> --addr HOST:PORT          bfs | sssp | sswp | cc | pr | stats | ping
  mutate <op> --addr HOST:PORT           add-edge | remove-edge | add-node | set-weight | compact
  ingest --file <edges> --addr H:P       bulk-append an edge list into a mutable graph
  convert -i <in> -o <out>               formats by extension: .txt .mtx .gr .bin

formats: edge list (.txt), MatrixMarket (.mtx), DIMACS (.gr), binary (.bin/.tigr)
caching: --cache-dir DIR (or TIGR_CACHE_DIR) stores prepared TIGRCSR2 artifacts
mutation: serve --mutable accepts mutate/ingest (WAL + delta overlay); mutate compact folds the delta
deadlines: run/prepare/query accept --deadline-ms; expiry exits with code 3
";

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn help_by_default_and_on_request() {
        assert!(dispatch(&[]).unwrap().contains("commands:"));
        assert!(dispatch(&toks("help")).unwrap().contains("transform"));
    }

    #[test]
    fn unknown_command_errors_with_help() {
        let err = dispatch(&toks("frobnicate")).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("commands:"));
    }

    #[test]
    fn full_pipeline_generate_transform_run() {
        let dir = std::env::temp_dir().join("tigr_cli_pipeline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let raw = dir.join("raw.bin").to_str().unwrap().to_string();
        let trans = dir.join("udt.bin").to_str().unwrap().to_string();

        dispatch(&toks(&format!(
            "generate rmat --scale 8 --edge-factor 4 --weighted -o {raw}"
        )))
        .unwrap();
        let out = dispatch(&toks(&format!("transform udt -i {raw} -o {trans} --k 8"))).unwrap();
        assert!(out.contains("udt transform"));
        let cache = dir.join("cache").to_str().unwrap().to_string();
        let out = dispatch(&toks(&format!(
            "prepare --graph {raw} --virtual 10 --coalesced --cache-dir {cache}"
        )))
        .unwrap();
        assert!(out.contains("prepared"), "{out}");
        let out = dispatch(&toks(&format!(
            "run sssp --graph {raw} --virtual 10 --coalesced --direction auto --stats --cache-dir {cache}"
        )))
        .unwrap();
        assert!(out.contains("virtual+"));
        assert!(out.contains("cache           hit"), "{out}");
        let out = dispatch(&toks(&format!("stats {trans}"))).unwrap();
        assert!(out.contains("max degree"));
        let out = dispatch(&toks(&format!("analyze {raw} --k 8"))).unwrap();
        assert!(out.contains("virtual"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_between_formats() {
        let dir = std::env::temp_dir().join("tigr_cli_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.txt").to_str().unwrap().to_string();
        let b = dir.join("b.bin").to_str().unwrap().to_string();
        dispatch(&toks(&format!("generate grid --rows 4 --cols 4 -o {a}"))).unwrap();
        let out = dispatch(&toks(&format!("convert -i {a} -o {b}"))).unwrap();
        assert!(out.contains("16 nodes"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
