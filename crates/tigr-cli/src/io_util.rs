//! Extension-driven graph loading and saving: thin error-formatting
//! wrappers over [`tigr_graph::io::load_path`]/[`tigr_graph::io::save_path`].

use tigr_graph::{io, Csr};

/// Loads a graph, picking the parser from the file extension:
/// `.bin`/`.tigr` → binary, `.mtx` → MatrixMarket, `.gr` → DIMACS,
/// anything else → whitespace edge list.
///
/// # Errors
///
/// Returns a human-readable message on I/O or parse failure.
pub fn load_graph(path: &str) -> Result<Csr, String> {
    io::load_path(path).map_err(|e| format!("cannot load {path}: {e}"))
}

/// Saves a graph, picking the writer from the file extension (same
/// mapping as [`load_graph`], plus `.mtx` → MatrixMarket).
///
/// # Errors
///
/// Returns a human-readable message on I/O failure.
pub fn save_graph(g: &Csr, path: &str) -> Result<(), String> {
    io::save_path(g, path).map_err(|e| format!("cannot write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::CsrBuilder;

    #[test]
    fn round_trips_by_extension() {
        let dir = std::env::temp_dir().join("tigr_cli_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = CsrBuilder::new(3)
            .weighted_edge(0, 1, 5)
            .weighted_edge(1, 2, 7)
            .build();
        for name in ["g.bin", "g.txt", "g.gr", "g.mtx"] {
            let path = dir.join(name);
            let path = path.to_str().unwrap();
            save_graph(&g, path).unwrap();
            assert_eq!(load_graph(path).unwrap(), g, "{name}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_reports_path() {
        let err = load_graph("/nonexistent/g.txt").unwrap_err();
        assert!(err.contains("/nonexistent/g.txt"));
    }
}
