//! `tigr generate <model> -o <file>` — synthetic graph generation.

use tigr_graph::generators::{
    barabasi_albert, erdos_renyi, grid_2d, rmat, watts_strogatz, with_uniform_weights,
    BarabasiAlbertConfig, RmatConfig, WattsStrogatzConfig,
};
use tigr_graph::Csr;

use crate::args::Args;
use crate::commands::CmdResult;
use crate::io_util::save_graph;

/// Runs the `generate` command.
pub fn run(args: &Args) -> CmdResult {
    let model = args.positional(0).ok_or(USAGE)?;
    let out_path: String = args.require("o").map_err(|_| USAGE.to_string())?;
    let seed: u64 = args.flag_or("seed", 2018)?;

    let mut g: Csr = match model {
        "rmat" => {
            let scale: u32 = args.flag_or("scale", 12)?;
            let ef: usize = args.flag_or("edge-factor", 8)?;
            let cfg = match args.flag("skew").unwrap_or("social") {
                "heavy" | "follower" => RmatConfig::heavy_tail(scale, ef),
                _ => RmatConfig::graph500(scale, ef),
            };
            rmat(&cfg, seed)
        }
        "ba" | "barabasi-albert" => barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: args.flag_or("nodes", 10_000)?,
                edges_per_node: args.flag_or("edges-per-node", 4)?,
                symmetric: args.switch("symmetric"),
            },
            seed,
        ),
        "er" | "erdos-renyi" => erdos_renyi(
            args.flag_or("nodes", 10_000)?,
            args.flag_or("edges", 80_000)?,
            seed,
        ),
        "ws" | "watts-strogatz" => watts_strogatz(
            &WattsStrogatzConfig {
                num_nodes: args.flag_or("nodes", 10_000)?,
                neighbors_each_side: args.flag_or("neighbors", 3)?,
                rewire_probability: args.flag_or("rewire", 0.05)?,
            },
            seed,
        ),
        "grid" => grid_2d(args.flag_or("rows", 100)?, args.flag_or("cols", 100)?),
        "dataset" => {
            let name: String = args.require("name")?;
            let spec = tigr_graph::datasets::by_name(&name)
                .ok_or_else(|| format!("unknown dataset `{name}`"))?;
            spec.generate(args.flag_or("denominator", 256)?, seed)
        }
        other => return Err(format!("unknown model `{other}`\n{USAGE}")),
    };

    if args.switch("weighted") {
        let hi: u32 = args.flag_or("max-weight", 64)?;
        g = with_uniform_weights(&g, 1, hi.max(1), seed ^ 0x5EED);
    }

    save_graph(&g, &out_path)?;
    Ok(format!(
        "wrote {} nodes, {} edges to {out_path}\n",
        g.num_nodes(),
        g.num_edges()
    ))
}

const USAGE: &str = "usage: tigr generate <rmat|ba|er|ws|grid|dataset> -o <file> \
[--seed N] [--weighted [--max-weight W]] [model options]";

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("tigr_cli_gen_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn generates_rmat_to_binary() {
        let path = tmp("r.bin");
        let out = run(&parse(&format!("rmat --scale 8 --edge-factor 4 -o {path}"))).unwrap();
        assert!(out.contains("256 nodes"));
        let g = crate::io_util::load_graph(&path).unwrap();
        assert_eq!(g.num_nodes(), 256);
        assert_eq!(g.num_edges(), 1024);
    }

    #[test]
    fn generates_weighted_dataset_analog() {
        let path = tmp("d.txt");
        let out = run(&parse(&format!(
            "dataset --name pokec --denominator 2048 --weighted -o {path}"
        )))
        .unwrap();
        assert!(out.contains("wrote"));
        assert!(crate::io_util::load_graph(&path).unwrap().is_weighted());
    }

    #[test]
    fn unknown_model_is_rejected() {
        let path = tmp("x.txt");
        let err = run(&parse(&format!("mystery -o {path}"))).unwrap_err();
        assert!(err.contains("unknown model"));
    }

    #[test]
    fn missing_output_is_usage() {
        assert!(run(&parse("rmat")).unwrap_err().contains("usage"));
    }
}
