//! `tigr analyze <graph>` — compare every transformation's
//! irregularity reduction on one input (the quantitative Figure 1).

use tigr_core::analysis::compare_irregularity_reduction;
use tigr_core::PrepareSpec;
use tigr_graph::stats::degree_stats;

use crate::args::Args;
use crate::commands::{store_from_args, CmdResult};

/// Runs the `analyze` command.
pub fn run(args: &Args) -> CmdResult {
    let path = args
        .positional(0)
        .ok_or("usage: tigr analyze <graph> [--k K] [--cache-dir DIR]")?;
    let k: u32 = args.flag_or("k", 10)?;
    if k < 2 {
        return Err("--k must be at least 2".into());
    }
    let prepared = store_from_args(args)?
        .prepare(&PrepareSpec::from_file(path))
        .map_err(|e| format!("cannot load {path}: {e}"))?;
    let g = prepared.graph();

    let before = degree_stats(g);
    let mut out = format!(
        "input: {} nodes, {} edges, max degree {}, degree CV {:.2}\n\n\
         {:<16} {:>10} {:>8} {:>10} {:>10}\n",
        before.num_nodes,
        before.num_edges,
        before.max_degree,
        before.coefficient_of_variation,
        "design",
        "max deg",
        "CV",
        "nodes x",
        "edges x",
    );
    for r in compare_irregularity_reduction(g, k) {
        out.push_str(&format!(
            "{:<16} {:>10} {:>8.2} {:>10.2} {:>10.2}\n",
            r.name, r.max_degree_after, r.cv_after, r.node_growth, r.edge_growth
        ));
    }
    out.push_str(&format!(
        "\n(K = {k}; \"virtual\" rows cost no edge storage — the overlay shares the CSR)\n"
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_reports_all_designs() {
        let dir = std::env::temp_dir().join("tigr_cli_analyze_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin").to_str().unwrap().to_string();
        crate::io_util::save_graph(&tigr_graph::generators::star_graph(500), &path).unwrap();

        let args = Args::parse(&[path, "--k".into(), "8".into()]).unwrap();
        let out = run(&args).unwrap();
        for design in [
            "udt",
            "star",
            "recursive-star",
            "circular",
            "clique",
            "virtual",
        ] {
            assert!(out.contains(design), "{design} missing:\n{out}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_k_one() {
        let args = Args::parse(&["x.txt".into(), "--k".into(), "1".into()]).unwrap();
        assert!(run(&args).unwrap_err().contains("at least 2"));
    }
}
