//! `tigr run <analytic> --graph <file>` — run an analytic on the
//! simulated GPU, optionally through a virtual transformation.
//!
//! Inputs resolve through the [`tigr_core::GraphStore`] artifact layer:
//! with `--cache-dir` (or `TIGR_CACHE_DIR`) set, the loaded graph and
//! every derived view the run needs — virtual overlay, pull-direction
//! transpose, mirrored reverse overlay — are cached as one `TIGRCSR2`
//! artifact, so a warm rerun performs zero transform/transpose work
//! (`--stats` shows the cache outcome and work counters).

use tigr_core::{CancelToken, PrepareSpec};
use tigr_engine::{
    default_threads, pr, Algo, CpuOptions, CpuSchedule, Direction, Engine, FrontierMode,
    MonotoneProgram, Pipeline, PrMode, PushOptions, Representation, ScheduleStats,
};
use tigr_graph::{Csr, NodeId};
use tigr_sim::GpuConfig;

use crate::args::Args;
use crate::commands::{format_prepare_report, store_from_args, timeout_message, CmdResult};

/// Runs the `run` command.
pub fn run(args: &Args) -> CmdResult {
    let analytic = args.positional(0).ok_or(USAGE)?;
    // One shared verb table ([`tigr_engine::Algo`]) names every
    // analytic across `tigr run`, `tigr query`, and the server.
    let algo = Algo::parse(analytic).ok_or_else(|| {
        format!(
            "unknown analytic `{analytic}` (known: {})\n{USAGE}",
            Algo::known_labels()
        )
    })?;
    let path: String = args.require("graph").map_err(|_| USAGE.to_string())?;
    // --limit carries the algo-specific bound: k for khop, radius for
    // paths, rounds for lp. Arity is enforced by the shared table.
    let limit: Option<u32> = match args.flag("limit") {
        Some(s) => Some(s.parse().map_err(|_| "invalid --limit".to_string())?),
        None => None,
    };
    if algo.needs_limit() && limit.is_none() {
        return Err(format!(
            "{} requires --limit ({})",
            algo.label(),
            algo.limit_name().unwrap_or("limit"),
        ));
    }
    if !algo.needs_limit() && limit.is_some() {
        return Err(format!("{} takes no --limit", algo.label()));
    }

    // --frontier selects the worklist scheduling policy: auto (default),
    // dense, sparse, or off (full sweeps every iteration).
    let frontier_flag = args.flag("frontier").unwrap_or("auto");
    let (worklist, frontier) = match frontier_flag {
        "off" => (false, FrontierMode::Auto),
        other => match FrontierMode::parse(other) {
            Some(mode) => (true, mode),
            None => {
                return Err(format!(
                    "invalid --frontier `{other}` (expected auto, dense, sparse, or off)"
                ))
            }
        },
    };
    // --direction selects push (top-down), pull (bottom-up over an
    // internally built transpose), or auto (the Beamer-style density
    // switch generalized to every monotone program).
    let direction = match args.flag("direction") {
        Some(s) => Direction::parse(s).ok_or(format!(
            "invalid --direction `{s}` (expected push, pull, or auto)"
        ))?,
        None => Direction::Push,
    };
    // --cpu runs the analytic on the wall-clock CPU engine instead of
    // the simulator; --cpu-schedule (or TIGR_CPU_SCHEDULE) selects the
    // work-distribution policy and implies --cpu.
    let schedule = match args.flag("cpu-schedule") {
        Some(s) => Some(CpuSchedule::parse(s).ok_or(format!(
            "invalid --cpu-schedule `{s}` (expected node-chunk, edge-balanced, or virtual)"
        ))?),
        None => CpuSchedule::from_env(),
    };
    let cpu = args.switch("cpu") || args.flag("cpu-schedule").is_some();
    let virtual_k: Option<u32> = args
        .flag("virtual")
        .map(|k| k.parse().map_err(|_| "invalid --virtual K".to_string()))
        .transpose()?;

    // Describe everything this run derives from the input as one
    // PrepareSpec, so the store can cache it all in a single artifact.
    // The CPU engine builds its own overlay from CpuOptions and its
    // own transpose lazily on the first pull sweep, so its spec is
    // just the loaded graph.
    let needs_transpose = !cpu
        && match algo {
            Algo::Bfs | Algo::Sssp | Algo::Sswp | Algo::Cc | Algo::Khop | Algo::Paths => {
                direction != Direction::Push
            }
            Algo::Pr => direction == Direction::Pull,
            _ => false,
        };
    let mut spec = PrepareSpec::from_file(&path).with_transpose(needs_transpose);
    if let (Some(k), false) = (virtual_k, cpu) {
        spec = spec.with_virtual(k, args.switch("coalesced"));
    }
    // --deadline-ms bounds preparation *and* execution with one
    // cooperative cancel token, polled at iteration boundaries; expiry
    // exits with the distinct timeout code.
    let cancel = match args.flag("deadline-ms") {
        Some(ms) => {
            let ms: u64 = ms
                .parse()
                .map_err(|_| "invalid --deadline-ms".to_string())?;
            CancelToken::with_deadline(std::time::Duration::from_millis(ms))
        }
        None => CancelToken::never(),
    };
    let prepared = store_from_args(args)?
        .prepare_cancellable(&spec, &cancel)
        .map_err(|e| match e {
            tigr_graph::GraphError::Cancelled => {
                timeout_message(format!("loading {path} hit --deadline-ms"))
            }
            other => format!("cannot load {path}: {other}"),
        })?;
    let g = prepared.graph();
    if g.num_nodes() == 0 {
        return Err("graph is empty".into());
    }
    let source = NodeId::new(args.flag_or("source", 0u32)?);
    if source.index() >= g.num_nodes() {
        return Err(format!("--source {source} out of range"));
    }

    if cpu {
        if direction == Direction::Pull && algo == Algo::Pr {
            return Err(
                "pull-mode PageRank runs on the simulator; drop --cpu or use --direction push"
                    .into(),
            );
        }
        let mut out = run_cpu(
            args, g, algo, source, worklist, schedule, direction, &cancel,
        )?;
        if args.switch("stats") {
            out.push_str(&format_prepare_report(&prepared));
        }
        return Ok(out);
    }

    let engine = Engine::parallel(GpuConfig::default())
        .with_options(PushOptions {
            worklist,
            frontier,
            ..PushOptions::default()
        })
        .with_direction(direction)
        .with_cancel(cancel.clone());
    let rep = Representation::from_prepared(&prepared);

    // The operator-pipeline workloads (k-hop, bounded paths, label
    // propagation, triangle counting) report value summaries and
    // iteration counts; the six paper analytics below keep their full
    // simulator reports.
    if matches!(algo, Algo::Khop | Algo::Paths | Algo::Lp | Algo::Tc) {
        let pipeline = Pipeline::for_algo(algo, limit).map_err(|e| e.to_string())?;
        let src = algo.needs_source().then_some(source);
        let result = engine
            .run_prepared_pipeline(&prepared, &pipeline, src)
            .map_err(|e| e.to_string())?;
        if result.cancelled {
            return Err(timeout_message(format!(
                "{} stopped after {} iterations",
                algo.label(),
                result.iterations
            )));
        }
        let mut out = String::new();
        match algo {
            Algo::Khop => {
                let k = limit.expect("arity checked above");
                let reached = result.values.iter().filter(|&&v| v != u32::MAX).count();
                out.push_str(&format!(
                    "khop from {source}: {reached} nodes within {k} hops\n"
                ));
            }
            Algo::Paths => {
                let n = result.values.len() / 2;
                let (dist, pred) = result.values.split_at(n);
                let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
                let tree_edges = (0..n)
                    .filter(|&v| dist[v] != u32::MAX && pred[v] != v as u32)
                    .count();
                out.push_str(&format!(
                    "paths from {source}: {reached} nodes within cost {}, {tree_edges} tree edges\n",
                    limit.expect("arity checked above"),
                ));
            }
            Algo::Lp => {
                let mut labels = result.values.clone();
                labels.sort_unstable();
                labels.dedup();
                out.push_str(&format!(
                    "lp after {} rounds: {} distinct labels\n",
                    limit.expect("arity checked above"),
                    labels.len()
                ));
            }
            Algo::Tc => {
                let corners: u64 = result.values.iter().map(|&c| u64::from(c)).sum();
                out.push_str(&format!(
                    "tc: {} triangles ({corners} corner incidences)\n",
                    corners / 3
                ));
            }
            _ => unreachable!(),
        }
        out.push_str(&format!(
            "representation  {}\niterations      {}\n",
            rep.label(),
            result.iterations
        ));
        if args.switch("stats") {
            out.push_str(&format_prepare_report(&prepared));
        }
        return Ok(out);
    }

    let mut out = String::new();
    let report = match algo {
        Algo::Bfs | Algo::Sssp | Algo::Sswp | Algo::Cc => {
            let prog = match algo {
                Algo::Bfs => MonotoneProgram::BFS,
                Algo::Sssp => MonotoneProgram::SSSP,
                Algo::Sswp => MonotoneProgram::SSWP,
                _ => MonotoneProgram::CC,
            };
            let src = prog.needs_source().then_some(source);
            let result = engine
                .run_prepared(&prepared, prog, src)
                .map_err(|e| e.to_string())?;
            if result.cancelled {
                return Err(timeout_message(format!(
                    "{analytic} stopped after {} iterations",
                    result.directions.len()
                )));
            }
            let finite = result
                .values
                .iter()
                .filter(|&&v| v != u32::MAX && v != 0)
                .count();
            out.push_str(&format!(
                "{analytic} from {source}: {} nodes with non-trivial values\n",
                finite
            ));
            let pulls = result
                .directions
                .iter()
                .filter(|&&d| d == Direction::Pull)
                .count();
            let direction_line = match direction {
                Direction::Auto => format!(
                    "auto ({} push / {} pull)",
                    result.directions.len() - pulls,
                    pulls
                ),
                other => other.label().to_string(),
            };
            out.push_str(&format!(
                "direction       {direction_line}\nfrontier        {}\nedges touched   {}\n",
                if worklist { frontier.label() } else { "off" },
                result.edges_touched,
            ));
            result.report
        }
        Algo::Pr => {
            // Pull-mode PR gathers along in-edges: the prepared
            // transpose (and mirrored overlay) feeds it directly
            // (PageRank has no density switch, so auto means push here).
            let options = pr::PrOptions {
                mode: if direction == Direction::Pull {
                    PrMode::Pull
                } else {
                    PrMode::Push
                },
                ..pr::PrOptions::default()
            };
            let result = engine
                .pagerank_prepared(&prepared, &options)
                .map_err(|e| e.to_string())?;
            if result.cancelled {
                return Err(timeout_message(format!(
                    "pagerank stopped after {} iterations",
                    result.report.num_iterations()
                )));
            }
            let (top, rank) = result
                .ranks
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty graph");
            out.push_str(&format!(
                "pagerank: top node {top} (rank {rank:.6})\ndirection       {}\n",
                if options.mode == PrMode::Pull {
                    "pull"
                } else {
                    "push"
                }
            ));
            result.report
        }
        Algo::Bc => {
            let result = engine
                .betweenness(&rep, source)
                .map_err(|e| e.to_string())?;
            let (top, score) = result
                .centrality
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty graph");
            out.push_str(&format!(
                "bc from {source}: top broker {top} (dependency {score:.2})\n"
            ));
            if direction != Direction::Push {
                out.push_str("direction       push (bc schedules the forward frontier only)\n");
            }
            result.report
        }
        _ => unreachable!("pipeline workloads returned above"),
    };

    out.push_str(&format!(
        "representation  {}\niterations      {}\nsim cycles      {} ({:.3} ms at 1.2 GHz)\nwarp efficiency {:.1}%\n",
        rep.label(),
        report.num_iterations(),
        report.total_cycles(),
        GpuConfig::default().cycles_to_ms(report.total_cycles()),
        100.0 * report.warp_efficiency(),
    ));
    if args.switch("stats") {
        out.push_str(&format_prepare_report(&prepared));
    }
    if args.switch("report") {
        out.push_str("per-iteration cycles:\n");
        for it in &report.iterations {
            out.push_str(&format!(
                "  iter {:>3}: {:>8} threads {:>12} cycles\n",
                it.iteration, it.threads, it.metrics.cycles
            ));
        }
    }
    Ok(out)
}

/// The `--cpu` branch: wall-clock execution with a scheduling policy.
#[allow(clippy::too_many_arguments)]
fn run_cpu(
    args: &Args,
    g: &Csr,
    algo: Algo,
    source: NodeId,
    frontier: bool,
    schedule: Option<CpuSchedule>,
    direction: Direction,
    cancel: &CancelToken,
) -> CmdResult {
    let mut cpu = CpuOptions {
        threads: args.flag_or("threads", default_threads())?,
        frontier,
        schedule: schedule.unwrap_or_default(),
        ..CpuOptions::default()
    };
    if let Some(k) = args.flag("virtual") {
        cpu.virtual_k = k.parse().map_err(|_| "invalid --virtual K".to_string())?;
    }
    if cpu.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let engine = Engine::default()
        .with_cpu_options(cpu)
        .with_cancel(cancel.clone());

    // Pull and auto route through the pool backend's gather side (the
    // batched executor's one-lane case) instead of the push-only solo
    // CPU driver.
    if direction != Direction::Push
        && matches!(algo, Algo::Bfs | Algo::Sssp | Algo::Sswp | Algo::Cc)
    {
        return run_cpu_directed(args, g, algo, source, engine, direction);
    }

    let mut out = String::new();
    let (iterations, edges, elapsed, sched) = match algo {
        Algo::Bfs | Algo::Sssp | Algo::Sswp | Algo::Cc => {
            let prog = match algo {
                Algo::Bfs => MonotoneProgram::BFS,
                Algo::Sssp => MonotoneProgram::SSSP,
                Algo::Sswp => MonotoneProgram::SSWP,
                _ => MonotoneProgram::CC,
            };
            let src = prog.needs_source().then_some(source);
            let result = engine.run_cpu(g, prog, src);
            if result.cancelled {
                return Err(timeout_message(format!(
                    "{} on cpu stopped after {} iterations",
                    algo.label(),
                    result.iterations
                )));
            }
            let finite = result
                .values
                .iter()
                .filter(|&&v| v != u32::MAX && v != 0)
                .count();
            out.push_str(&format!(
                "{} on cpu: {finite} nodes with non-trivial values\n",
                algo.label()
            ));
            (
                result.iterations,
                result.edges_touched,
                result.elapsed,
                result.sched,
            )
        }
        Algo::Pr => {
            let result = engine.cpu_pagerank(g, &pr::PrOptions::default());
            if result.cancelled {
                return Err(timeout_message(format!(
                    "pagerank on cpu stopped after {} iterations",
                    result.iterations
                )));
            }
            let (top, rank) = result
                .ranks
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .expect("non-empty graph");
            out.push_str(&format!(
                "pagerank on cpu: top node {top} (rank {rank:.6}, converged: {})\n",
                result.converged
            ));
            (
                result.iterations,
                result.edges_touched,
                result.elapsed,
                result.sched,
            )
        }
        other => {
            return Err(format!(
                "analytic `{}` is not supported on the CPU path\n{USAGE}",
                other.label()
            ))
        }
    };

    let secs = elapsed.as_secs_f64();
    let meps = if secs > 0.0 {
        edges as f64 / secs / 1e6
    } else {
        0.0
    };
    out.push_str(&format!(
        "schedule        {}\nthreads         {}\nfrontier        {}\niterations      {}\nedges touched   {}\nwall time       {:.3} ms ({:.1} Medges/s)\n",
        sched.schedule.label(),
        engine.cpu_options().threads,
        if frontier { "on" } else { "off" },
        iterations,
        edges,
        secs * 1e3,
        meps,
    ));
    if args.switch("stats") {
        out.push_str(&format_schedule_stats(&sched));
    }
    Ok(out)
}

/// The `--cpu` branch for pull/auto monotone runs: the CpuPool backend
/// executes the plan (gather sweeps, Beamer switching), timed here
/// since the backend reports no wall clock of its own.
fn run_cpu_directed(
    args: &Args,
    g: &Csr,
    algo: Algo,
    source: NodeId,
    engine: Engine,
    direction: Direction,
) -> CmdResult {
    let prog = match algo {
        Algo::Bfs => MonotoneProgram::BFS,
        Algo::Sssp => MonotoneProgram::SSSP,
        Algo::Sswp => MonotoneProgram::SSWP,
        _ => MonotoneProgram::CC,
    };
    let src = prog.needs_source().then_some(source);
    let engine = engine
        .with_backend(tigr_engine::BackendKind::CpuPool)
        .with_direction(direction);
    let start = std::time::Instant::now();
    let result = engine
        .run_program(&Representation::Original(g), prog, src)
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    if result.cancelled {
        return Err(timeout_message(format!(
            "{} on cpu stopped after {} iterations",
            algo.label(),
            result.directions.len()
        )));
    }
    let finite = result
        .values
        .iter()
        .filter(|&&v| v != u32::MAX && v != 0)
        .count();
    let pulls = result
        .directions
        .iter()
        .filter(|&&d| d == Direction::Pull)
        .count();
    let direction_line = match direction {
        Direction::Auto => format!(
            "auto ({} push / {} pull)",
            result.directions.len() - pulls,
            pulls
        ),
        other => other.label().to_string(),
    };
    let secs = elapsed.as_secs_f64();
    let meps = if secs > 0.0 {
        result.edges_touched as f64 / secs / 1e6
    } else {
        0.0
    };
    let mut out = format!(
        "{} on cpu: {finite} nodes with non-trivial values\ndirection       {direction_line}\nschedule        {}\nthreads         {}\niterations      {}\nedges touched   {}\nwall time       {:.3} ms ({:.1} Medges/s)\n",
        algo.label(),
        engine.cpu_options().schedule.label(),
        engine.cpu_options().threads,
        result.directions.len(),
        result.edges_touched,
        secs * 1e3,
        meps,
    );
    if args.switch("stats") {
        out.push_str("steals          n/a (batched executor)\n");
    }
    Ok(out)
}

/// Formats the steal/imbalance counters for `--stats`.
fn format_schedule_stats(sched: &ScheduleStats) -> String {
    format!(
        "steals          {}\nworker edges    min {} / max {} (imbalance {:.2})\n",
        sched.steals,
        sched.worker_edges_min(),
        sched.worker_edges_max(),
        sched.imbalance_ratio(),
    )
}

const USAGE: &str = "usage: tigr run <bfs|sssp|sswp|cc|pr|bc|khop|paths|lp|tc> --graph <file> \
[--source N] [--limit K|RADIUS|ROUNDS] [--virtual K [--coalesced]] \
[--direction push|pull|auto] \
[--frontier auto|dense|sparse|off] [--deadline-ms MS] [--report] [--stats] \
[--cache-dir DIR] [--mmap on|off|auto] [--verify eager|lazy] \
[--cpu [--cpu-schedule node-chunk|edge-balanced|virtual] [--threads N]]";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn fixture() -> String {
        let dir = std::env::temp_dir().join("tigr_cli_run_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin").to_str().unwrap().to_string();
        let g = tigr_graph::generators::with_uniform_weights(
            &tigr_graph::generators::rmat(&tigr_graph::generators::RmatConfig::graph500(8, 6), 3),
            1,
            9,
            4,
        );
        crate::io_util::save_graph(&g, &path).unwrap();
        path
    }

    #[test]
    fn runs_sssp_virtual_with_report() {
        let path = fixture();
        let out = run(&parse(&format!(
            "sssp --graph {path} --source 0 --virtual 10 --coalesced --report"
        )))
        .unwrap();
        assert!(out.contains("representation  virtual+"));
        assert!(out.contains("per-iteration cycles"));
    }

    #[test]
    fn runs_pagerank_original() {
        let path = fixture();
        let out = run(&parse(&format!("pr --graph {path}"))).unwrap();
        assert!(out.contains("pagerank: top node"));
        assert!(out.contains("representation  original"));
    }

    #[test]
    fn frontier_modes_report_and_match() {
        let path = fixture();
        let on = run(&parse(&format!("sssp --graph {path} --frontier sparse"))).unwrap();
        assert!(on.contains("frontier        sparse"));
        let off = run(&parse(&format!("sssp --graph {path} --frontier off"))).unwrap();
        assert!(off.contains("frontier        off"));
        let touched = |s: &str| -> u64 {
            s.lines()
                .find(|l| l.starts_with("edges touched"))
                .and_then(|l| l.split_whitespace().last())
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            touched(&on) < touched(&off),
            "frontier run should attempt fewer relaxations"
        );
    }

    #[test]
    fn cpu_path_reports_schedule_and_stats() {
        let path = fixture();
        let out = run(&parse(&format!(
            "sssp --graph {path} --cpu --cpu-schedule edge-balanced --threads 2 --stats"
        )))
        .unwrap();
        assert!(out.contains("sssp on cpu:"));
        assert!(out.contains("schedule        edge-balanced"));
        assert!(out.contains("threads         2"));
        assert!(out.contains("steals"));
        assert!(out.contains("imbalance"));
    }

    #[test]
    fn cpu_schedule_flag_implies_cpu_and_defaults_apply() {
        let path = fixture();
        let out = run(&parse(&format!(
            "cc --graph {path} --cpu-schedule virtual --frontier off"
        )))
        .unwrap();
        assert!(out.contains("cc on cpu:"));
        assert!(out.contains("schedule        virtual"));
        assert!(out.contains("frontier        off"));
        // Without --stats the counters stay hidden.
        assert!(!out.contains("steals"));
        // Plain --cpu uses the default schedule.
        let out = run(&parse(&format!("pr --graph {path} --cpu"))).unwrap();
        assert!(out.contains("pagerank on cpu: top node"));
        assert!(out.contains("schedule        edge-balanced"));
    }

    #[test]
    fn cpu_path_rejects_bad_schedule_and_bc() {
        let path = fixture();
        let err = run(&parse(&format!("bfs --graph {path} --cpu-schedule chunky"))).unwrap_err();
        assert!(err.contains("invalid --cpu-schedule"));
        let err = run(&parse(&format!("bc --graph {path} --cpu"))).unwrap_err();
        assert!(err.contains("not supported on the CPU path"));
    }

    #[test]
    fn direction_flag_runs_and_reports_every_analytic() {
        let path = fixture();
        let values = |s: &str| -> u64 {
            s.lines()
                .find(|l| l.contains("non-trivial values"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|l| l.split_whitespace().next())
                .unwrap()
                .parse()
                .unwrap()
        };
        let push = run(&parse(&format!("bfs --graph {path} --direction push"))).unwrap();
        assert!(push.contains("direction       push"));
        for d in ["pull", "auto"] {
            let out = run(&parse(&format!("bfs --graph {path} --direction {d}"))).unwrap();
            assert!(out.contains(&format!("direction       {d}")), "{out}");
            assert_eq!(values(&out), values(&push), "--direction {d}");
        }
        // Auto runs every analytic, even the push-only ones.
        for analytic in ["sssp", "sswp", "cc", "pr", "bc"] {
            let out = run(&parse(&format!(
                "{analytic} --graph {path} --direction auto"
            )))
            .unwrap();
            assert!(!out.is_empty(), "{analytic}");
        }
        // Pull PR gathers over the transpose and says so.
        let out = run(&parse(&format!("pr --graph {path} --direction pull"))).unwrap();
        assert!(out.contains("direction       pull"));
    }

    #[test]
    fn rejects_bad_direction_and_cpu_pull_pagerank() {
        let path = fixture();
        let err = run(&parse(&format!("bfs --graph {path} --direction sideways"))).unwrap_err();
        assert!(err.contains("invalid --direction"));
        // PageRank has no CPU gather side; the monotone analytics do.
        let err = run(&parse(&format!("pr --graph {path} --cpu --direction pull"))).unwrap_err();
        assert!(err.contains("pull-mode PageRank"));
    }

    #[test]
    fn cpu_pull_and_auto_match_the_simulator() {
        let path = fixture();
        let values = |s: &str| -> u64 {
            s.lines()
                .find(|l| l.contains("non-trivial values"))
                .and_then(|l| l.split(':').nth(1))
                .and_then(|l| l.split_whitespace().next())
                .unwrap()
                .parse()
                .unwrap()
        };
        let reference = run(&parse(&format!("bfs --graph {path}"))).unwrap();
        for d in ["pull", "auto"] {
            let out = run(&parse(&format!(
                "bfs --graph {path} --cpu --threads 2 --direction {d} --stats"
            )))
            .unwrap();
            assert!(out.contains("on cpu"), "{out}");
            assert!(out.contains(&format!("direction       {d}")), "{out}");
            assert_eq!(values(&out), values(&reference), "--direction {d}");
        }
    }

    #[test]
    fn rejects_bad_frontier_mode() {
        let path = fixture();
        let err = run(&parse(&format!("bfs --graph {path} --frontier bitmap"))).unwrap_err();
        assert!(err.contains("invalid --frontier"));
    }

    #[test]
    fn cache_dir_hits_on_second_run_with_zero_work() {
        let path = fixture();
        let cache = std::env::temp_dir().join("tigr_cli_run_cache_test");
        std::fs::remove_dir_all(&cache).ok();
        let cache = cache.to_str().unwrap().to_string();
        let cmd = format!(
            "sssp --graph {path} --virtual 10 --coalesced --direction auto --stats --cache-dir {cache}"
        );
        let cold = run(&parse(&cmd)).unwrap();
        assert!(cold.contains("cache           miss"), "{cold}");
        let warm = run(&parse(&cmd)).unwrap();
        assert!(warm.contains("cache           hit"), "{warm}");
        assert!(
            warm.contains("prep work       0 transforms, 0 transposes, 0 overlays"),
            "{warm}"
        );
        // The cached run is bit-for-bit the same computation: only the
        // cache-outcome lines differ.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("cache") && !l.starts_with("prep work"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&cold), strip(&warm));
    }

    #[test]
    fn stats_without_cache_dir_reports_off() {
        if std::env::var_os("TIGR_CACHE_DIR").is_some() {
            return; // ambient cache directory: outcome is miss/hit, not off
        }
        let path = fixture();
        let out = run(&parse(&format!("bfs --graph {path} --stats"))).unwrap();
        assert!(out.contains("cache           off"), "{out}");
        // The CPU path appends the same cache lines after its own stats.
        let out = run(&parse(&format!("bfs --graph {path} --cpu --stats"))).unwrap();
        assert!(out.contains("steals"), "{out}");
        assert!(out.contains("cache           off"), "{out}");
    }

    #[test]
    fn zero_deadline_times_out_with_marker() {
        let path = fixture();
        for cmd in [
            format!("sssp --graph {path} --deadline-ms 0"),
            format!("sssp --graph {path} --cpu --deadline-ms 0"),
        ] {
            let err = run(&parse(&cmd)).unwrap_err();
            assert!(
                err.starts_with(crate::commands::TIMEOUT_PREFIX),
                "{cmd}: {err}"
            );
        }
        let err = run(&parse(&format!("sssp --graph {path} --deadline-ms soon"))).unwrap_err();
        assert!(err.contains("invalid --deadline-ms"));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let path = fixture();
        let out = run(&parse(&format!("bfs --graph {path} --deadline-ms 60000"))).unwrap();
        assert!(out.contains("non-trivial values"), "{out}");
    }

    #[test]
    fn rejects_bad_source() {
        let path = fixture();
        let err = run(&parse(&format!("bfs --graph {path} --source 99999"))).unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn rejects_unknown_analytic() {
        let path = fixture();
        let err = run(&parse(&format!("coloring --graph {path}"))).unwrap_err();
        assert!(err.contains("unknown analytic"));
        // The rejection names the shared verb table.
        assert!(err.contains("khop"), "{err}");
        assert!(err.contains("tc"), "{err}");
    }

    #[test]
    fn pipeline_workloads_run_from_the_cli() {
        let path = fixture();
        let out = run(&parse(&format!("khop --graph {path} --source 0 --limit 2"))).unwrap();
        assert!(out.contains("khop from 0:"), "{out}");
        assert!(out.contains("within 2 hops"), "{out}");
        let out = run(&parse(&format!(
            "paths --graph {path} --source 0 --limit 40"
        )))
        .unwrap();
        assert!(out.contains("paths from 0:"), "{out}");
        assert!(out.contains("tree edges"), "{out}");
        let out = run(&parse(&format!("lp --graph {path} --limit 3"))).unwrap();
        assert!(out.contains("lp after 3 rounds:"), "{out}");
        assert!(out.contains("distinct labels"), "{out}");
        let out = run(&parse(&format!("tc --graph {path}"))).unwrap();
        assert!(out.contains("tc: "), "{out}");
        assert!(out.contains("triangles"), "{out}");
    }

    #[test]
    fn khop_widens_with_k_and_limit_arity_is_enforced() {
        let path = fixture();
        let reached = |out: &str| -> u64 {
            out.lines()
                .next()
                .and_then(|l| l.split(':').nth(1))
                .and_then(|l| l.split_whitespace().next())
                .unwrap()
                .parse()
                .unwrap()
        };
        let narrow = run(&parse(&format!("khop --graph {path} --source 0 --limit 1"))).unwrap();
        let wide = run(&parse(&format!("khop --graph {path} --source 0 --limit 8"))).unwrap();
        assert!(reached(&narrow) < reached(&wide), "{narrow}\n{wide}");
        let err = run(&parse(&format!("khop --graph {path} --source 0"))).unwrap_err();
        assert!(err.contains("requires --limit (k)"), "{err}");
        let err = run(&parse(&format!("bfs --graph {path} --limit 2"))).unwrap_err();
        assert!(err.contains("takes no --limit"), "{err}");
    }
}
