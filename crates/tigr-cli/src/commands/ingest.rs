//! `tigr ingest` — bulk-append an edge-list file into a mutable
//! graph's WAL over the serving protocol.
//!
//! ```text
//! tigr ingest --file new-edges.txt --addr 127.0.0.1:7171 --graph-name web
//! ```
//!
//! The file is whitespace-separated `u v [w]` lines (`#`/`%` comments
//! and blank lines ignored), the same shape `tigr convert` reads.
//! Edges ship in batches (`--batch`, default 1024) so the WAL fsyncs
//! once per batch instead of once per edge; each batch that references
//! nodes beyond what was grown so far is prefixed with an `add-node`
//! growth op. Duplicate edges are skipped server-side, so re-ingesting
//! the same file is idempotent and the skip count says so.

use std::io::{BufRead, BufReader};

use tigr_server::{Client, MutationOp};

use crate::args::Args;
use crate::commands::CmdResult;

/// Runs the `ingest` command.
pub fn run(args: &Args) -> CmdResult {
    let file: String = args.require("file").map_err(|_| USAGE.to_string())?;
    let graph: String = args.require("graph-name").map_err(|_| USAGE.to_string())?;
    let batch_size: usize = args.flag_or("batch", 1024)?;
    if batch_size == 0 {
        return Err("--batch must be at least 1".into());
    }
    let mut client = connect(args)?;

    let reader =
        BufReader::new(std::fs::File::open(&file).map_err(|e| format!("cannot open {file}: {e}"))?);
    let mut pending: Vec<MutationOp> = Vec::with_capacity(batch_size + 1);
    let mut grown: u64 = 0;
    let mut edges: u64 = 0;
    let mut batches: u64 = 0;
    let (mut applied, mut skipped) = (0u64, 0u64);
    let (mut wal_len, mut epoch) = (0u64, 0u64);
    let mut flush = |pending: &mut Vec<MutationOp>| -> Result<(), String> {
        if pending.is_empty() {
            return Ok(());
        }
        let r = client
            .mutate(&graph, std::mem::take(pending))
            .map_err(|e| e.to_string())?;
        batches += 1;
        applied += r.applied;
        skipped += r.skipped;
        wal_len = r.wal_len;
        epoch = r.epoch;
        Ok(())
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("cannot read {file}: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let mut num = |what: &str| -> Result<u32, String> {
            fields
                .next()
                .ok_or_else(|| format!("{file}:{}: missing {what}", lineno + 1))?
                .parse()
                .map_err(|_| format!("{file}:{}: invalid {what}", lineno + 1))
        };
        let u = num("source")?;
        let v = num("destination")?;
        let w = match fields.next() {
            None => 1,
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("{file}:{}: invalid weight", lineno + 1))?,
        };
        let needed = u64::from(u.max(v)) + 1;
        if needed > grown {
            pending.push(MutationOp::AddNode {
                nodes: u.max(v) + 1,
            });
            grown = needed;
        }
        pending.push(MutationOp::AddEdge { u, v, w });
        edges += 1;
        if pending.len() >= batch_size {
            flush(&mut pending)?;
        }
    }
    flush(&mut pending)?;
    if edges == 0 {
        return Err(format!("{file}: no edges to ingest"));
    }
    Ok(format!(
        "ingested {edges} edges into {graph} ({batches} batches)\n\
         applied         {applied} ops / {skipped} skipped (duplicates)\n\
         wal             {wal_len} records\n\
         epoch           {epoch}\n"
    ))
}

fn connect(args: &Args) -> Result<Client, String> {
    match (args.flag("socket"), args.flag("addr")) {
        (Some(path), _) => {
            Client::connect_unix(path).map_err(|e| format!("cannot connect to {path}: {e}"))
        }
        (None, Some(addr)) => {
            Client::connect_tcp(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
        }
        (None, None) => Err(format!("missing --addr or --socket\n{USAGE}")),
    }
}

const USAGE: &str = "usage: tigr ingest --file <edge-list> \
(--addr HOST:PORT | --socket PATH) --graph-name NAME [--batch N]";

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tigr_core::{GraphStore, MutableGraph, PrepareSpec};
    use tigr_server::{Server, ServerConfig, ServerCore};

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn ephemeral_mutable_server() -> (Server, String) {
        let store = GraphStore::disabled();
        let prepared = store
            .prepare(&PrepareSpec::generated("rmat:7:6", 3).with_uniform_weights(1, 9, 4))
            .unwrap();
        let mutable = MutableGraph::open(store, prepared).unwrap();
        let core = ServerCore::new(ServerConfig::default());
        core.add_mutable_graph("demo", Arc::new(mutable));
        let server = Server::bind_tcp(core, "127.0.0.1:0").unwrap();
        let addr = match server.addr() {
            tigr_server::ServerAddr::Tcp(a) => a.to_string(),
            other => panic!("{other:?}"),
        };
        (server, addr)
    }

    #[test]
    fn ingests_batched_and_reingest_is_idempotent() {
        let dir = std::env::temp_dir().join("tigr_cli_ingest_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("edges.txt");
        std::fs::write(
            &file,
            "# new edges beyond the 128-node base\n\
             0 128 3\n\
             128 129 2\n\
             % a duplicate of the first line\n\
             0 128 3\n\
             1 0\n",
        )
        .unwrap();
        let file = file.to_str().unwrap().to_string();
        let (server, addr) = ephemeral_mutable_server();
        let out = run(&parse(&format!(
            "--file {file} --addr {addr} --graph-name demo --batch 2"
        )))
        .unwrap();
        assert!(out.contains("ingested 4 edges into demo"), "{out}");
        // 4 edges + 2 growth ops across the batches; the duplicate edge
        // is the one skip (edge 1→0 may exist in the rmat base).
        assert!(out.contains("skipped (duplicates)"), "{out}");
        let again = run(&parse(&format!(
            "--file {file} --addr {addr} --graph-name demo --batch 2"
        )))
        .unwrap();
        // Everything the first pass applied is now a duplicate.
        assert!(again.contains("0 ops"), "{again}");
        server.shutdown();
    }

    #[test]
    fn rejects_bad_input() {
        assert!(run(&parse("")).unwrap_err().contains("usage:"));
        let dir = std::env::temp_dir().join("tigr_cli_ingest_bad_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.txt");
        std::fs::write(&good, "0 1\n").unwrap();
        let good = good.to_str().unwrap().to_string();
        let err = run(&parse(&format!("--file {good} --graph-name demo"))).unwrap_err();
        assert!(err.contains("--addr or --socket"), "{err}");
        let (server, addr) = ephemeral_mutable_server();
        let err = run(&parse(&format!(
            "--file {good} --addr {addr} --graph-name demo --batch 0"
        )))
        .unwrap_err();
        assert!(err.contains("--batch"), "{err}");
        let err = run(&parse(&format!(
            "--file {}/missing.txt --addr {addr} --graph-name demo",
            dir.display()
        )))
        .unwrap_err();
        assert!(err.contains("cannot open"), "{err}");
        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "0 x\n").unwrap();
        let bad = bad.to_str().unwrap().to_string();
        let err = run(&parse(&format!(
            "--file {bad} --addr {addr} --graph-name demo"
        )))
        .unwrap_err();
        assert!(err.contains("invalid destination"), "{err}");
        let empty = dir.join("empty.txt");
        std::fs::write(&empty, "# nothing\n").unwrap();
        let empty = empty.to_str().unwrap().to_string();
        let err = run(&parse(&format!(
            "--file {empty} --addr {addr} --graph-name demo"
        )))
        .unwrap_err();
        assert!(err.contains("no edges"), "{err}");
        server.shutdown();
    }
}
