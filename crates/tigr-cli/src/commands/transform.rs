//! `tigr transform <topology> -i <in> -o <out>` — physical split
//! transformations from the command line.

use tigr_core::{
    circular_transform, clique_transform, recursive_star_transform, star_transform, udt_transform,
    DumbWeight, TransformedGraph,
};

use crate::args::Args;
use crate::commands::CmdResult;
use crate::io_util::{load_graph, save_graph};

/// Runs the `transform` command.
pub fn run(args: &Args) -> CmdResult {
    let topology = args.positional(0).ok_or(USAGE)?;
    let input: String = args.require("i").map_err(|_| USAGE.to_string())?;
    let output: String = args.require("o").map_err(|_| USAGE.to_string())?;
    let g = load_graph(&input)?;

    let k: u32 = match args.flag("k") {
        Some(v) => v.parse().map_err(|_| "invalid --k".to_string())?,
        None => tigr_core::k_select::physical_k(&g),
    };
    let dumb = match args.flag("dumb").unwrap_or("zero") {
        "zero" => DumbWeight::Zero,
        "inf" | "infinity" => DumbWeight::Infinity,
        "none" | "unweighted" => DumbWeight::Unweighted,
        other => return Err(format!("unknown dumb-weight policy `{other}`")),
    };

    let t: TransformedGraph = match topology {
        "udt" => udt_transform(&g, k, dumb),
        "star" => star_transform(&g, k, dumb),
        "recursive-star" => recursive_star_transform(&g, k, dumb),
        "circular" => circular_transform(&g, k, dumb),
        "clique" => clique_transform(&g, k, dumb),
        other => return Err(format!("unknown topology `{other}`\n{USAGE}")),
    };

    save_graph(t.graph(), &output)?;
    Ok(format!(
        "{} transform (K={k}, dumb={:?}):\n  {} -> {} nodes (+{} split)\n  {} -> {} edges (+{} new)\n  max degree {} -> {}\n  space {:.2}% of original CSR\nwrote {output}\n",
        t.topology(),
        dumb,
        g.num_nodes(),
        t.graph().num_nodes(),
        t.num_split_nodes(),
        g.num_edges(),
        t.graph().num_edges(),
        t.num_new_edges(),
        g.max_out_degree(),
        t.graph().max_out_degree(),
        100.0 * t.space_cost_ratio(&g),
    ))
}

const USAGE: &str = "usage: tigr transform <udt|star|recursive-star|circular|clique> \
-i <in> -o <out> [--k K] [--dumb zero|inf|none]";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn fixture() -> (String, String) {
        let dir = std::env::temp_dir().join("tigr_cli_transform_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt").to_str().unwrap().to_string();
        let output = dir.join("out.bin").to_str().unwrap().to_string();
        save_graph(&tigr_graph::generators::star_graph(50), &input).unwrap();
        (input, output)
    }

    #[test]
    fn udt_transform_end_to_end() {
        let (input, output) = fixture();
        let out = run(&parse(&format!("udt -i {input} -o {output} --k 4"))).unwrap();
        assert!(out.contains("udt transform (K=4"));
        let t = load_graph(&output).unwrap();
        assert!(t.max_out_degree() <= 4);
        assert!(t.num_nodes() > 50);
    }

    #[test]
    fn k_defaults_to_heuristic() {
        let (input, output) = fixture();
        let out = run(&parse(&format!("udt -i {input} -o {output}"))).unwrap();
        assert!(out.contains("K=100"), "{out}");
    }

    #[test]
    fn bad_topology_rejected() {
        let (input, output) = fixture();
        let err = run(&parse(&format!("spiral -i {input} -o {output}"))).unwrap_err();
        assert!(err.contains("unknown topology"));
    }

    #[test]
    fn bad_dumb_policy_rejected() {
        let (input, output) = fixture();
        let err = run(&parse(&format!("udt -i {input} -o {output} --dumb heavy"))).unwrap_err();
        assert!(err.contains("unknown dumb-weight"));
    }
}
