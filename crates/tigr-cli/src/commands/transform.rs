//! `tigr transform <topology> -i <in> -o <out>` — physical split
//! transformations from the command line, resolved through the
//! [`tigr_core::GraphStore`] artifact layer (so with `--cache-dir` or
//! `TIGR_CACHE_DIR` set, repeating a transform reuses the cached
//! artifact instead of re-splitting).

use tigr_core::{DumbWeight, PrepareSpec, TransformKind};

use crate::args::Args;
use crate::commands::{format_prepare_report, store_from_args, CmdResult};
use crate::io_util::save_graph;

/// Runs the `transform` command.
pub fn run(args: &Args) -> CmdResult {
    let topology = args.positional(0).ok_or(USAGE)?;
    let input: String = args.require("i").map_err(|_| USAGE.to_string())?;
    let output: String = args.require("o").map_err(|_| USAGE.to_string())?;
    let kind =
        TransformKind::parse(topology).ok_or(format!("unknown topology `{topology}`\n{USAGE}"))?;
    let k: Option<u32> = args
        .flag("k")
        .map(|v| v.parse().map_err(|_| "invalid --k".to_string()))
        .transpose()?;
    let dumb = match args.flag("dumb").unwrap_or("zero") {
        "zero" => DumbWeight::Zero,
        "inf" | "infinity" => DumbWeight::Infinity,
        "none" | "unweighted" => DumbWeight::Unweighted,
        other => return Err(format!("unknown dumb-weight policy `{other}`")),
    };

    let spec = PrepareSpec::from_file(&input).with_transform(kind, k, dumb);
    let prepared = store_from_args(args)?
        .prepare(&spec)
        .map_err(|e| format!("cannot load {input}: {e}"))?;
    let g = prepared.graph();
    let t = prepared.transformed().expect("spec requested a transform");

    save_graph(t.graph(), &output)?;
    let mut out = format!(
        "{} transform (K={}, dumb={dumb:?}):\n  {} -> {} nodes (+{} split)\n  {} -> {} edges (+{} new)\n  max degree {} -> {}\n  space {:.2}% of original CSR\nwrote {output}\n",
        t.topology(),
        t.k(),
        g.num_nodes(),
        t.graph().num_nodes(),
        t.num_split_nodes(),
        g.num_edges(),
        t.graph().num_edges(),
        t.num_new_edges(),
        g.max_out_degree(),
        t.graph().max_out_degree(),
        100.0 * t.space_cost_ratio(g),
    );
    if args.switch("stats") {
        out.push_str(&format_prepare_report(&prepared));
    }
    Ok(out)
}

const USAGE: &str = "usage: tigr transform <udt|star|recursive-star|circular|clique> \
-i <in> -o <out> [--k K] [--dumb zero|inf|none] [--stats] [--cache-dir DIR]";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io_util::load_graph;

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn fixture() -> (String, String) {
        let dir = std::env::temp_dir().join("tigr_cli_transform_test");
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.txt").to_str().unwrap().to_string();
        let output = dir.join("out.bin").to_str().unwrap().to_string();
        save_graph(&tigr_graph::generators::star_graph(50), &input).unwrap();
        (input, output)
    }

    #[test]
    fn udt_transform_end_to_end() {
        let (input, output) = fixture();
        let out = run(&parse(&format!("udt -i {input} -o {output} --k 4"))).unwrap();
        assert!(out.contains("udt transform (K=4"));
        let t = load_graph(&output).unwrap();
        assert!(t.max_out_degree() <= 4);
        assert!(t.num_nodes() > 50);
    }

    #[test]
    fn k_defaults_to_heuristic() {
        let (input, output) = fixture();
        let out = run(&parse(&format!("udt -i {input} -o {output}"))).unwrap();
        assert!(out.contains("K=100"), "{out}");
    }

    #[test]
    fn cached_transform_hits_on_repeat() {
        let (input, output) = fixture();
        let cache = std::env::temp_dir().join("tigr_cli_transform_cache_test");
        std::fs::remove_dir_all(&cache).ok();
        let cache = cache.to_str().unwrap().to_string();
        let cmd = format!("udt -i {input} -o {output} --k 4 --stats --cache-dir {cache}");
        let cold = run(&parse(&cmd)).unwrap();
        assert!(cold.contains("cache           miss"), "{cold}");
        let warm = run(&parse(&cmd)).unwrap();
        assert!(warm.contains("cache           hit"), "{warm}");
        assert!(warm.contains("prep work       0 transforms"), "{warm}");
        assert!(warm.contains("udt transform (K=4"), "{warm}");
    }

    #[test]
    fn bad_topology_rejected() {
        let (input, output) = fixture();
        let err = run(&parse(&format!("spiral -i {input} -o {output}"))).unwrap_err();
        assert!(err.contains("unknown topology"));
    }

    #[test]
    fn bad_dumb_policy_rejected() {
        let (input, output) = fixture();
        let err = run(&parse(&format!("udt -i {input} -o {output} --dumb heavy"))).unwrap_err();
        assert!(err.contains("unknown dumb-weight"));
    }
}
