//! `tigr mutate` — apply one online mutation (or force a compaction)
//! against a mutable graph on a running server.
//!
//! ```text
//! tigr mutate add-edge --addr 127.0.0.1:7171 --graph-name web --u 3 --v 9 --w 2
//! tigr mutate add-node --socket /tmp/tigr.sock --graph-name web --nodes 1024
//! tigr mutate compact --addr 127.0.0.1:7171 --graph-name web
//! ```
//!
//! The mutation is durably logged (WAL fsync) before the server
//! replies, so a `mutated` line means the change survives a crash. For
//! bulk edge loads use `tigr ingest`, which batches the fsyncs.

use tigr_server::{Client, MutationOp};

use crate::args::Args;
use crate::commands::CmdResult;

/// Runs the `mutate` command.
pub fn run(args: &Args) -> CmdResult {
    let verb = args.positional(0).ok_or(USAGE)?;
    let graph: String = args.require("graph-name").map_err(|_| USAGE.to_string())?;
    let mut client = connect(args)?;
    if verb == "compact" {
        let r = client.compact(&graph).map_err(|e| e.to_string())?;
        return Ok(format!(
            "compacted {} in {} ms\ndelta edges     {} -> {}\nepoch           {}\n",
            r.graph, r.wall_ms, r.delta_edges_before, r.delta_edges_after, r.epoch
        ));
    }
    let op = match verb {
        "add-edge" => MutationOp::AddEdge {
            u: args.require("u")?,
            v: args.require("v")?,
            w: args.flag_or("w", 1)?,
        },
        "remove-edge" => MutationOp::RemoveEdge {
            u: args.require("u")?,
            v: args.require("v")?,
        },
        "add-node" => MutationOp::AddNode {
            nodes: args.require("nodes")?,
        },
        "set-weight" => MutationOp::SetWeight {
            u: args.require("u")?,
            v: args.require("v")?,
            w: args.require("w")?,
        },
        other => return Err(format!("unknown mutate verb `{other}`\n{USAGE}")),
    };
    let r = client.mutate(&graph, vec![op]).map_err(|e| e.to_string())?;
    Ok(format!(
        "mutated {}: {} applied / {} skipped\nwal             {} records\nepoch           {}\n",
        r.graph, r.applied, r.skipped, r.wal_len, r.epoch
    ))
}

fn connect(args: &Args) -> Result<Client, String> {
    match (args.flag("socket"), args.flag("addr")) {
        (Some(path), _) => {
            Client::connect_unix(path).map_err(|e| format!("cannot connect to {path}: {e}"))
        }
        (None, Some(addr)) => {
            Client::connect_tcp(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
        }
        (None, None) => Err(format!("missing --addr or --socket\n{USAGE}")),
    }
}

const USAGE: &str = "usage: tigr mutate <add-edge|remove-edge|add-node|set-weight|compact> \
(--addr HOST:PORT | --socket PATH) --graph-name NAME \
[--u U --v V] [--w W] [--nodes N]";

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tigr_core::{GraphStore, MutableGraph, PrepareSpec};
    use tigr_server::{Server, ServerConfig, ServerCore};

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn ephemeral_mutable_server() -> (Server, String) {
        let store = GraphStore::disabled();
        let prepared = store
            .prepare(&PrepareSpec::generated("rmat:7:6", 3).with_uniform_weights(1, 9, 4))
            .unwrap();
        let mutable = MutableGraph::open(store, prepared).unwrap();
        let core = ServerCore::new(ServerConfig::default());
        core.add_mutable_graph("demo", Arc::new(mutable));
        let server = Server::bind_tcp(core, "127.0.0.1:0").unwrap();
        let addr = match server.addr() {
            tigr_server::ServerAddr::Tcp(a) => a.to_string(),
            other => panic!("{other:?}"),
        };
        (server, addr)
    }

    #[test]
    fn mutates_and_compacts_over_tcp() {
        let (server, addr) = ephemeral_mutable_server();
        let out = run(&parse(&format!(
            "add-node --addr {addr} --graph-name demo --nodes 129"
        )))
        .unwrap();
        assert!(out.contains("mutated demo: 1 applied / 0 skipped"), "{out}");
        let out = run(&parse(&format!(
            "add-edge --addr {addr} --graph-name demo --u 0 --v 128 --w 3"
        )))
        .unwrap();
        assert!(out.contains("1 applied / 0 skipped"), "{out}");
        // Re-adding the same edge is a skip, not an error.
        let out = run(&parse(&format!(
            "add-edge --addr {addr} --graph-name demo --u 0 --v 128 --w 3"
        )))
        .unwrap();
        assert!(out.contains("0 applied / 1 skipped"), "{out}");
        let out = run(&parse(&format!(
            "set-weight --addr {addr} --graph-name demo --u 0 --v 128 --w 7"
        )))
        .unwrap();
        assert!(out.contains("1 applied / 0 skipped"), "{out}");
        let out = run(&parse(&format!("compact --addr {addr} --graph-name demo"))).unwrap();
        assert!(out.contains("compacted demo in"), "{out}");
        assert!(out.contains("-> 0\n"), "{out}");
        let out = run(&parse(&format!(
            "remove-edge --addr {addr} --graph-name demo --u 0 --v 128"
        )))
        .unwrap();
        assert!(out.contains("1 applied / 0 skipped"), "{out}");
        server.shutdown();
    }

    #[test]
    fn bad_verbs_and_missing_flags_error() {
        assert!(run(&parse("")).unwrap_err().contains("usage:"));
        let err = run(&parse("add-edge --graph-name demo")).unwrap_err();
        assert!(err.contains("--addr or --socket"), "{err}");
        let (server, addr) = ephemeral_mutable_server();
        let err = run(&parse(&format!("grow --addr {addr} --graph-name demo"))).unwrap_err();
        assert!(err.contains("unknown mutate verb"), "{err}");
        let err = run(&parse(&format!(
            "add-edge --addr {addr} --graph-name demo --u 0"
        )))
        .unwrap_err();
        assert!(err.contains("--v"), "{err}");
        let err = run(&parse(&format!(
            "add-edge --addr {addr} --graph-name demo --u 0 --v 999"
        )))
        .unwrap_err();
        assert!(err.contains("bad-request"), "{err}");
        server.shutdown();
    }
}
