//! `tigr stats <graph>` — degree statistics and irregularity profile.

use tigr_graph::stats::{degree_stats, estimate_diameter, power_law_alpha};

use crate::args::Args;
use crate::commands::CmdResult;
use crate::io_util::load_graph;

/// Runs the `stats` command.
pub fn run(args: &Args) -> CmdResult {
    let path = args
        .positional(0)
        .ok_or("usage: tigr stats <graph> [--diameter-samples N]")?;
    let g = load_graph(path)?;
    let s = degree_stats(&g);
    let samples: usize = args.flag_or("diameter-samples", 8)?;
    let diameter = estimate_diameter(&g, samples, 1);
    let alpha = power_law_alpha(&g, 5)
        .map(|a| format!("{a:.2}"))
        .unwrap_or_else(|| "n/a".into());

    let mut out = String::new();
    out.push_str(&format!("graph          {path}\n"));
    out.push_str(&format!("nodes          {}\n", s.num_nodes));
    out.push_str(&format!("edges          {}\n", s.num_edges));
    out.push_str(&format!("weighted       {}\n", g.is_weighted()));
    out.push_str(&format!("avg degree     {:.2}\n", s.avg_degree));
    out.push_str(&format!("median degree  {}\n", s.median_degree));
    out.push_str(&format!("p99 degree     {}\n", s.p99_degree));
    out.push_str(&format!("max degree     {}\n", s.max_degree));
    out.push_str(&format!(
        "degree CV      {:.2}\n",
        s.coefficient_of_variation
    ));
    out.push_str(&format!("deg < 20       {:.1}%\n", s.frac_below_20 * 100.0));
    out.push_str(&format!(
        "deg >= 1000    {:.2}%\n",
        s.frac_at_least_1000 * 100.0
    ));
    out.push_str(&format!("power-law α    {alpha}\n"));
    out.push_str(&format!("diameter (est) {diameter}\n"));
    out.push_str(&format!(
        "suggested K    physical {} / virtual {}\n",
        tigr_core::k_select::physical_k(&g),
        tigr_core::k_select::VIRTUAL_K
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_generated_file() {
        let dir = std::env::temp_dir().join("tigr_cli_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("star.txt");
        let g = tigr_graph::generators::star_graph(100);
        crate::io_util::save_graph(&g, path.to_str().unwrap()).unwrap();

        let args = Args::parse(&[path.to_str().unwrap().to_string()]).unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("nodes          100"));
        assert!(out.contains("max degree     99"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_path_is_usage_error() {
        let args = Args::parse(&[]).unwrap();
        assert!(run(&args).unwrap_err().contains("usage"));
    }
}
