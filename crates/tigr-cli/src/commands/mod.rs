//! The CLI subcommands. Each returns its output as a `String` so the
//! commands are unit-testable without spawning processes.

pub mod analyze;
pub mod generate;
pub mod run;
pub mod stats;
pub mod transform;

/// Result alias: rendered output or an error message for stderr.
pub type CmdResult = Result<String, String>;
