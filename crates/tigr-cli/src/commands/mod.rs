//! The CLI subcommands. Each returns its output as a `String` so the
//! commands are unit-testable without spawning processes.

use tigr_core::GraphStore;

use crate::args::Args;

pub mod analyze;
pub mod generate;
pub mod prepare;
pub mod run;
pub mod stats;
pub mod transform;

/// Result alias: rendered output or an error message for stderr.
pub type CmdResult = Result<String, String>;

/// The artifact store every graph-consuming command resolves inputs
/// through: `--cache-dir DIR` wins, then the `TIGR_CACHE_DIR`
/// environment variable; with neither, caching is off.
pub fn store_from_args(args: &Args) -> GraphStore {
    match args.flag("cache-dir") {
        Some(dir) => GraphStore::new(Some(dir.into())),
        None => GraphStore::from_env(),
    }
}

/// Renders the cache/prep-work report lines appended under `--stats`.
pub fn format_prepare_report(report: &tigr_core::PrepareReport) -> String {
    format!(
        "cache           {} (key {})\nprep work       {} transforms, {} transposes, {} overlays\n",
        report.cache.label(),
        report.key,
        report.transforms_built,
        report.transposes_built,
        report.overlays_built,
    )
}
