//! The CLI subcommands. Each returns its output as a `String` so the
//! commands are unit-testable without spawning processes.

use tigr_core::GraphStore;
use tigr_graph::io::VerifyMode;

use crate::args::Args;

pub mod analyze;
pub mod generate;
pub mod ingest;
pub mod mutate;
pub mod prepare;
pub mod query;
pub mod run;
pub mod serve;
pub mod stats;
pub mod transform;

/// Result alias: rendered output or an error message for stderr.
pub type CmdResult = Result<String, String>;

/// Exit code for deadline expiry (`--deadline-ms`), distinct from the
/// generic error code 2 so scripts can tell a timeout from a failure.
pub const EXIT_TIMEOUT: i32 = 3;

/// Prefix marking an error message as a deadline expiry; `main`
/// translates it into [`EXIT_TIMEOUT`].
pub const TIMEOUT_PREFIX: &str = "deadline exceeded";

/// Builds the error message for an expired `--deadline-ms`.
pub fn timeout_message(detail: impl std::fmt::Display) -> String {
    format!("{TIMEOUT_PREFIX}: {detail}")
}

/// The artifact store every graph-consuming command resolves inputs
/// through: `--cache-dir DIR` wins, then the `TIGR_CACHE_DIR`
/// environment variable; with neither, caching is off. `--mmap
/// on|off|auto` sets the map-vs-decode policy (over the `TIGR_MMAP`
/// environment default) and `--verify eager|lazy` the artifact
/// verification level (over `TIGR_VERIFY`).
///
/// # Errors
///
/// Returns a message for an unrecognized `--mmap` or `--verify` value.
pub fn store_from_args(args: &Args) -> Result<GraphStore, String> {
    let mut store = match args.flag("cache-dir") {
        Some(dir) => {
            // An explicit cache dir still honours the environment's map
            // and verify policy as the baseline.
            GraphStore::from_env().with_cache_dir(Some(dir.into()))
        }
        None => GraphStore::from_env(),
    };
    if let Some(v) = args.flag("mmap") {
        let mode = tigr_core::MmapMode::parse(v)
            .ok_or_else(|| format!("invalid value `{v}` for --mmap (expected on|off|auto)"))?;
        store = store.with_mmap(mode);
    }
    if let Some(v) = args.flag("verify") {
        let mode = VerifyMode::parse(v)
            .ok_or_else(|| format!("invalid value `{v}` for --verify (expected eager|lazy)"))?;
        store = store.with_verify(mode);
    }
    Ok(store)
}

/// Renders the cache/prep-work report lines appended under `--stats`:
/// cache outcome, the cache key, how the artifact was opened
/// (mapped/decoded/built, verify level, wall time, mapped-vs-heap byte
/// split), the resolved artifact path, and the derivation-work counters
/// — everything an operator needs to pre-warm a server's cache
/// deterministically.
///
/// Every line that can differ between a cold and a warm run of the same
/// spec starts with `cache` or `prep work`, so byte-equality checks can
/// strip them by prefix.
pub fn format_prepare_report(prepared: &tigr_core::PreparedGraph) -> String {
    let report = prepared.report();
    let open = prepared.open_info();
    let artifact = match &report.artifact {
        Some(path) => path.display().to_string(),
        None => "none (caching disabled; set --cache-dir or TIGR_CACHE_DIR)".to_string(),
    };
    format!(
        "cache           {} (key {})\ncache open      {} (verify {}) in {} us\ncache bytes     {} mapped, {} heap\nartifact        {artifact}\nprep work       {} transforms, {} transposes, {} overlays\n",
        report.cache.label(),
        report.key,
        open.mode.label(),
        open.verify.label(),
        open.open_us,
        open.mapped_bytes,
        open.heap_bytes,
        report.transforms_built,
        report.transposes_built,
        report.overlays_built,
    )
}
