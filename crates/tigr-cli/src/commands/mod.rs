//! The CLI subcommands. Each returns its output as a `String` so the
//! commands are unit-testable without spawning processes.

use tigr_core::GraphStore;

use crate::args::Args;

pub mod analyze;
pub mod generate;
pub mod prepare;
pub mod query;
pub mod run;
pub mod serve;
pub mod stats;
pub mod transform;

/// Result alias: rendered output or an error message for stderr.
pub type CmdResult = Result<String, String>;

/// Exit code for deadline expiry (`--deadline-ms`), distinct from the
/// generic error code 2 so scripts can tell a timeout from a failure.
pub const EXIT_TIMEOUT: i32 = 3;

/// Prefix marking an error message as a deadline expiry; `main`
/// translates it into [`EXIT_TIMEOUT`].
pub const TIMEOUT_PREFIX: &str = "deadline exceeded";

/// Builds the error message for an expired `--deadline-ms`.
pub fn timeout_message(detail: impl std::fmt::Display) -> String {
    format!("{TIMEOUT_PREFIX}: {detail}")
}

/// The artifact store every graph-consuming command resolves inputs
/// through: `--cache-dir DIR` wins, then the `TIGR_CACHE_DIR`
/// environment variable; with neither, caching is off.
pub fn store_from_args(args: &Args) -> GraphStore {
    match args.flag("cache-dir") {
        Some(dir) => GraphStore::new(Some(dir.into())),
        None => GraphStore::from_env(),
    }
}

/// Renders the cache/prep-work report lines appended under `--stats`:
/// cache outcome, the cache key, the resolved artifact path, and the
/// derivation-work counters — everything an operator needs to pre-warm
/// a server's cache deterministically.
pub fn format_prepare_report(report: &tigr_core::PrepareReport) -> String {
    let artifact = match &report.artifact {
        Some(path) => path.display().to_string(),
        None => "none (caching disabled; set --cache-dir or TIGR_CACHE_DIR)".to_string(),
    };
    format!(
        "cache           {} (key {})\nartifact        {artifact}\nprep work       {} transforms, {} transposes, {} overlays\n",
        report.cache.label(),
        report.key,
        report.transforms_built,
        report.transposes_built,
        report.overlays_built,
    )
}
