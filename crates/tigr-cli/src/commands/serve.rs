//! `tigr serve --graph <file>` — the long-lived query daemon.
//!
//! Loads the graph through the same [`tigr_core::GraphStore`] artifact
//! layer as `tigr run` (so a pre-warmed cache makes startup zero-work),
//! registers it with a [`tigr_server::ServerCore`], and listens on TCP
//! (`--port`, default ephemeral) or a Unix socket (`--socket`). The
//! resolved address is printed on startup and optionally written to
//! `--port-file` so scripts driving an ephemeral port can find it.
//!
//! The daemon runs until killed, or for `--duration` seconds when
//! given (used by tests and the CI smoke gate).

use std::io::Write as _;
use std::sync::Arc;

use tigr_core::{MutableGraph, PrepareSpec};
use tigr_server::{Server, ServerAddr, ServerConfig, ServerCore};

use crate::args::Args;
use crate::commands::{store_from_args, CmdResult};

/// Runs the `serve` command.
pub fn run(args: &Args) -> CmdResult {
    let path: String = args.require("graph").map_err(|_| USAGE.to_string())?;
    let name = match args.flag("name") {
        Some(n) => n.to_string(),
        None => std::path::Path::new(&path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("graph")
            .to_string(),
    };
    let config = ServerConfig {
        workers: args.flag_or("workers", ServerConfig::default().workers)?,
        executors: args.flag_or("executors", ServerConfig::default().executors)?,
        kernel_threads: args.flag_or("kernel-threads", ServerConfig::default().kernel_threads)?,
        queue_capacity: args.flag_or("queue", ServerConfig::default().queue_capacity)?,
        cache_capacity: args.flag_or("cache-capacity", ServerConfig::default().cache_capacity)?,
        default_deadline_ms: args
            .flag("default-deadline-ms")
            .map(|v| v.parse().map_err(|_| "invalid --default-deadline-ms"))
            .transpose()?,
        batch_max: args.flag_or("batch-max", ServerConfig::default().batch_max)?,
        batch_wait_us: args.flag_or("batch-wait-us", ServerConfig::default().batch_wait_us)?,
        compact_threshold: args.flag_or(
            "compact-threshold",
            ServerConfig::default().compact_threshold,
        )?,
    };
    let mutable = args.switch("mutable");
    if config.compact_threshold > 0 && !mutable {
        return Err("--compact-threshold requires --mutable".into());
    }
    if config.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if config.batch_max == 0 {
        return Err("--batch-max must be at least 1 (1 disables batching)".into());
    }
    if config.kernel_threads == 0 {
        return Err("--kernel-threads must be at least 1 (1 runs the sequential plan)".into());
    }

    let mut spec = PrepareSpec::from_file(&path);
    if let Some(k) = args.flag("virtual") {
        let k: u32 = k.parse().map_err(|_| "invalid --virtual K".to_string())?;
        spec = spec.with_virtual(k, args.switch("coalesced"));
    }
    let store = store_from_args(args)?;
    let prepared = store
        .prepare(&spec)
        .map_err(|e| format!("cannot load {path}: {e}"))?;
    let nodes = prepared.graph().num_nodes();
    let edges = prepared.graph().num_edges();

    let core = ServerCore::new(config);
    if mutable {
        let graph = MutableGraph::open(store, prepared)
            .map_err(|e| format!("cannot open {name} for mutation: {e}"))?;
        core.add_mutable_graph(&name, Arc::new(graph));
    } else {
        core.add_graph(&name, Arc::new(prepared));
    }

    let server = match args.flag("socket") {
        Some(socket_path) => Server::bind_unix(Arc::clone(&core), socket_path)
            .map_err(|e| format!("cannot bind {socket_path}: {e}"))?,
        None => {
            let port: u16 = args.flag_or("port", 0)?;
            Server::bind_tcp(Arc::clone(&core), ("127.0.0.1", port))
                .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?
        }
    };
    let addr_text = match server.addr() {
        ServerAddr::Tcp(addr) => addr.to_string(),
        ServerAddr::Unix(p) => p.display().to_string(),
    };
    if let Some(port_file) = args.flag("port-file") {
        std::fs::write(port_file, format!("{addr_text}\n"))
            .map_err(|e| format!("cannot write --port-file {port_file}: {e}"))?;
    }

    // Announce readiness immediately: the command blocks from here on,
    // so the startup banner cannot wait for the returned CmdResult.
    let mode = if mutable { " [mutable]" } else { "" };
    println!(
        "serving {name} ({nodes} nodes, {edges} edges){mode} on {addr_text}\n\
         executors {} x {} kernel threads ({}) | queue {} | cache {} entries | batch {} (wait {} us)",
        config.executor_count(),
        config.kernel_threads,
        config.plan_fingerprint(),
        config.queue_capacity,
        config.cache_capacity,
        config.batch_max,
        config.batch_wait_us
    );
    let _ = std::io::stdout().flush();

    match args.flag("duration") {
        Some(secs) => {
            let secs: f64 = secs.parse().map_err(|_| "invalid --duration".to_string())?;
            std::thread::sleep(std::time::Duration::from_secs_f64(secs.max(0.0)));
        }
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    let served = core.submit(tigr_server::Request::Stats);
    server.shutdown();
    let summary = match served {
        tigr_server::Response::Stats(s) => format!(
            "served {} queries ({} rejected, {} failed)\n",
            s.completed, s.rejected, s.failed
        ),
        _ => String::new(),
    };
    Ok(summary)
}

const USAGE: &str = "usage: tigr serve --graph <file> [--name N] \
[--port P | --socket PATH] [--port-file PATH] [--workers N] \
[--executors N] [--kernel-threads N] [--queue N] \
[--cache-capacity N] [--default-deadline-ms MS] \
[--batch-max N] [--batch-wait-us US] \
[--mutable [--compact-threshold N]] \
[--virtual K [--coalesced]] [--duration SECS] [--cache-dir DIR] \
[--mmap on|off|auto] [--verify eager|lazy]";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn fixture(dir_name: &str) -> (String, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin").to_str().unwrap().to_string();
        let g =
            tigr_graph::generators::rmat(&tigr_graph::generators::RmatConfig::graph500(7, 6), 3);
        crate::io_util::save_graph(&g, &path).unwrap();
        (path, dir)
    }

    #[test]
    fn requires_graph_and_validates_flags() {
        assert!(run(&parse("")).unwrap_err().contains("usage:"));
        let (path, _) = fixture("tigr_cli_serve_flags_test");
        let err = run(&parse(&format!("--graph {path} --workers 0"))).unwrap_err();
        assert!(err.contains("--workers"));
        let err = run(&parse(&format!("--graph {path} --duration never"))).unwrap_err();
        assert!(err.contains("invalid --duration"));
        let err = run(&parse(&format!("--graph {path} --batch-max 0"))).unwrap_err();
        assert!(err.contains("--batch-max"));
        let err = run(&parse(&format!("--graph {path} --kernel-threads 0"))).unwrap_err();
        assert!(err.contains("--kernel-threads"));
        let err = run(&parse(&format!("--graph {path} --compact-threshold 4"))).unwrap_err();
        assert!(err.contains("--mutable"));
    }

    #[test]
    fn mutable_daemon_accepts_mutations() {
        let (path, dir) = fixture("tigr_cli_serve_mutable_test");
        let port_file = dir.join("port.txt");
        let pf = port_file.to_str().unwrap().to_string();
        let serve_args = parse(&format!(
            "--graph {path} --name demo --mutable --duration 0.5 --port-file {pf}"
        ));
        let handle = std::thread::spawn(move || run(&serve_args));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let mut client = tigr_server::Client::connect_tcp(&addr).unwrap();
        let applied = client
            .mutate(
                "demo",
                vec![tigr_server::MutationOp::AddNode { nodes: 129 }],
            )
            .unwrap();
        assert_eq!(applied.applied, 1);
        assert!(applied.epoch >= 1);
        let result = client
            .query(tigr_server::QueryRequest::new(
                "demo",
                tigr_server::Algo::Bfs,
                Some(0),
            ))
            .unwrap();
        assert!(result.checksum != 0);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn parallel_daemon_serves_queries() {
        let (path, dir) = fixture("tigr_cli_serve_parallel_test");
        let port_file = dir.join("port.txt");
        let pf = port_file.to_str().unwrap().to_string();
        let serve_args = parse(&format!(
            "--graph {path} --name demo --duration 0.4 --port-file {pf} \
             --executors 2 --kernel-threads 2"
        ));
        let handle = std::thread::spawn(move || run(&serve_args));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let mut client = tigr_server::Client::connect_tcp(&addr).unwrap();
        let result = client
            .query(tigr_server::QueryRequest::new(
                "demo",
                tigr_server::Algo::Sssp,
                Some(0),
            ))
            .unwrap();
        assert!(result.checksum != 0);
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("served 1 queries"), "{out}");
    }

    #[test]
    fn serves_for_a_bounded_duration_and_writes_port_file() {
        let (path, dir) = fixture("tigr_cli_serve_run_test");
        let port_file = dir.join("port.txt");
        let pf = port_file.to_str().unwrap().to_string();
        let serve_args = parse(&format!(
            "--graph {path} --name demo --duration 0.4 --port-file {pf} --workers 2"
        ));
        let handle = std::thread::spawn(move || run(&serve_args));
        // Wait for the daemon to publish its ephemeral address.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "port file never appeared"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let mut client = tigr_server::Client::connect_tcp(&addr).unwrap();
        client.ping().unwrap();
        let result = client
            .query(tigr_server::QueryRequest::new(
                "demo",
                tigr_server::Algo::Bfs,
                Some(0),
            ))
            .unwrap();
        assert!(!result.cached);
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("served 1 queries"), "{out}");
    }
}
