//! `tigr query` — client side of the serving protocol.
//!
//! ```text
//! tigr query bfs --addr 127.0.0.1:7171 --graph-name web --source 42
//! tigr query stats --socket /tmp/tigr.sock
//! ```
//!
//! Typed server rejections map onto exit codes: `deadline-exceeded`
//! exits with the distinct timeout code (like `tigr run --deadline-ms`),
//! everything else with the generic error code.

use tigr_server::{Algo, Client, ClientError, ErrorCode, QueryRequest};

use crate::args::Args;
use crate::commands::{timeout_message, CmdResult};

/// Runs the `query` command.
pub fn run(args: &Args) -> CmdResult {
    let verb = args.positional(0).ok_or(USAGE)?;
    let mut client = connect(args)?;
    match verb {
        "ping" => {
            client.ping().map_err(render_client_error)?;
            Ok("pong\n".to_string())
        }
        "stats" => {
            let s = client.stats().map_err(render_client_error)?;
            let mut out = format!(
                "queries         {} received / {} completed / {} rejected / {} failed\n\
                 queue depth     {} (workers {})\n\
                 latency         p50 {} us / p95 {} us\n\
                 cache           {} hits / {} misses / {} evictions ({} resident, ratio {:.2})\n\
                 batches         {} executed / {} queries (occupancy {:.2}, widest {})\n\
                 formation wait  {} us total\n",
                s.received,
                s.completed,
                s.rejected,
                s.failed,
                s.queue_depth,
                s.workers,
                s.p50_us,
                s.p95_us,
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
                s.cache_entries,
                s.cache_hit_ratio(),
                s.batches,
                s.batched_queries,
                s.batch_occupancy(),
                s.max_batch,
                s.formation_wait_us,
            );
            out.push_str(&format!(
                "mutations       {} batches / {} applied / {} skipped\n\
                 overlay         {} wal records / {} delta edges (generation {})\n\
                 compactions     {} (last {} ms)\n",
                s.mutate_batches,
                s.mutations_applied,
                s.mutations_skipped,
                s.mutation.wal_len,
                s.mutation.delta_edges,
                s.mutation.overlay_generation,
                s.mutation.compactions,
                s.mutation.last_compaction_ms,
            ));
            for (label, count) in &s.algo_completed {
                out.push_str(&format!("algo {:<10} {count} completed\n", label));
            }
            for g in &s.graphs {
                out.push_str(&format!(
                    "graph {:<9} {} (verify {}) opened in {} us, {} bytes mapped / {} heap\n",
                    g.name, g.open, g.verify, g.open_us, g.mapped_bytes, g.heap_bytes,
                ));
            }
            Ok(out)
        }
        algo_label => {
            let algo = Algo::parse(algo_label).ok_or_else(|| {
                format!(
                    "unknown query verb `{algo_label}` (known: {})\n{USAGE}",
                    Algo::known_labels()
                )
            })?;
            let graph: String = args.require("graph-name").map_err(|_| USAGE.to_string())?;
            let source = if algo.needs_source() {
                Some(args.flag_or("source", 0u32)?)
            } else {
                None
            };
            let mut query = QueryRequest::new(graph, algo, source);
            if algo.needs_limit() {
                let limit_name = algo.limit_name().unwrap_or("limit");
                let raw = args
                    .flag("limit")
                    .ok_or_else(|| format!("{} requires --limit ({limit_name})", algo.label()))?;
                query.limit = Some(
                    raw.parse()
                        .map_err(|_| format!("invalid --limit ({limit_name})"))?,
                );
            } else if args.flag("limit").is_some() {
                return Err(format!("{} takes no --limit", algo.label()));
            }
            query.deadline_ms = args
                .flag("deadline-ms")
                .map(|v| v.parse().map_err(|_| "invalid --deadline-ms"))
                .transpose()?;
            query.cache = !args.switch("no-cache");
            query.include_values = args.switch("values");
            let r = client.query(query).map_err(render_client_error)?;
            let mut out = format!(
                "{} on {}{}: {} nodes in {} iterations\nchecksum        {:016x}\ncache           {}\nserver wall     {} us\n",
                r.algo.label(),
                r.graph,
                r.source.map(|s| format!(" from {s}")).unwrap_or_default(),
                r.nodes,
                r.iterations,
                r.checksum,
                if r.cached { "hit" } else { "miss" },
                r.wall_us,
            );
            if let Some(values) = &r.values {
                out.push_str("values          ");
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    out.push_str(&v.to_string());
                }
                out.push('\n');
            }
            Ok(out)
        }
    }
}

fn connect(args: &Args) -> Result<Client, String> {
    match (args.flag("socket"), args.flag("addr")) {
        (Some(path), _) => {
            Client::connect_unix(path).map_err(|e| format!("cannot connect to {path}: {e}"))
        }
        (None, Some(addr)) => {
            Client::connect_tcp(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))
        }
        (None, None) => Err(format!("missing --addr or --socket\n{USAGE}")),
    }
}

/// Maps client/server failures onto CLI error messages; the server's
/// `deadline-exceeded` becomes the timeout-marked message so `main`
/// exits with the distinct code.
fn render_client_error(e: ClientError) -> String {
    match e {
        ClientError::Protocol(p) if p.code == ErrorCode::DeadlineExceeded => {
            timeout_message(p.message)
        }
        other => other.to_string(),
    }
}

const USAGE: &str = "usage: tigr query <bfs|sssp|sswp|cc|pr|bc|khop|paths|lp|tc|stats|ping> \
(--addr HOST:PORT | --socket PATH) [--graph-name NAME] [--source N] \
[--limit K|RADIUS|ROUNDS] [--deadline-ms MS] [--no-cache] [--values]";

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tigr_core::{GraphStore, PrepareSpec};
    use tigr_server::{Server, ServerConfig, ServerCore};

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn ephemeral_server() -> (Server, String) {
        let store = GraphStore::disabled();
        let prepared = store
            .prepare(&PrepareSpec::generated("rmat:7:6", 3).with_uniform_weights(1, 9, 4))
            .unwrap();
        let core = ServerCore::new(ServerConfig::default());
        core.add_graph("demo", Arc::new(prepared));
        let server = Server::bind_tcp(core, "127.0.0.1:0").unwrap();
        let addr = match server.addr() {
            tigr_server::ServerAddr::Tcp(a) => a.to_string(),
            other => panic!("{other:?}"),
        };
        (server, addr)
    }

    #[test]
    fn queries_ping_and_stats_over_tcp() {
        let (server, addr) = ephemeral_server();
        let out = run(&parse(&format!("ping --addr {addr}"))).unwrap();
        assert_eq!(out, "pong\n");
        let out = run(&parse(&format!(
            "sssp --addr {addr} --graph-name demo --source 1 --values"
        )))
        .unwrap();
        assert!(out.contains("sssp on demo from 1"), "{out}");
        assert!(out.contains("cache           miss"), "{out}");
        assert!(out.contains("values          "), "{out}");
        let warm = run(&parse(&format!(
            "sssp --addr {addr} --graph-name demo --source 1"
        )))
        .unwrap();
        assert!(warm.contains("cache           hit"), "{warm}");
        let stats = run(&parse(&format!("stats --addr {addr}"))).unwrap();
        assert!(stats.contains("2 completed"), "{stats}");
        assert!(stats.contains("1 hits"), "{stats}");
        // The registry section reports how each graph was opened; the
        // fixture builds without a cache, so the demo graph is `built`.
        assert!(stats.contains("graph demo      built"), "{stats}");
        assert!(stats.contains("opened in"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn new_workloads_query_over_tcp_with_per_algo_stats() {
        let (server, addr) = ephemeral_server();
        let khop = run(&parse(&format!(
            "khop --addr {addr} --graph-name demo --source 2 --limit 2"
        )))
        .unwrap();
        assert!(khop.contains("khop on demo from 2"), "{khop}");
        let warm = run(&parse(&format!(
            "khop --addr {addr} --graph-name demo --source 2 --limit 2"
        )))
        .unwrap();
        assert!(warm.contains("cache           hit"), "{warm}");
        let paths = run(&parse(&format!(
            "paths --addr {addr} --graph-name demo --source 2 --limit 30"
        )))
        .unwrap();
        assert!(paths.contains("paths on demo from 2"), "{paths}");
        let lp = run(&parse(&format!(
            "lp --addr {addr} --graph-name demo --limit 3"
        )))
        .unwrap();
        assert!(lp.contains("lp on demo:"), "{lp}");
        let tc = run(&parse(&format!("tc --addr {addr} --graph-name demo"))).unwrap();
        assert!(tc.contains("tc on demo:"), "{tc}");
        let bc = run(&parse(&format!(
            "bc --addr {addr} --graph-name demo --source 2"
        )))
        .unwrap();
        assert!(bc.contains("bc on demo from 2"), "{bc}");
        let stats = run(&parse(&format!("stats --addr {addr}"))).unwrap();
        assert!(stats.contains("algo khop       2 completed"), "{stats}");
        assert!(stats.contains("algo paths      1 completed"), "{stats}");
        assert!(stats.contains("algo lp         1 completed"), "{stats}");
        assert!(stats.contains("algo tc         1 completed"), "{stats}");
        assert!(stats.contains("algo bc         1 completed"), "{stats}");
        assert!(stats.contains("algo bfs        0 completed"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn stats_report_mutation_counters() {
        let store = GraphStore::disabled();
        let prepared = store
            .prepare(&PrepareSpec::generated("rmat:7:6", 3).with_uniform_weights(1, 9, 4))
            .unwrap();
        let mutable = tigr_core::MutableGraph::open(store, prepared).unwrap();
        let core = ServerCore::new(ServerConfig::default());
        core.add_mutable_graph("demo", Arc::new(mutable));
        let server = Server::bind_tcp(core, "127.0.0.1:0").unwrap();
        let addr = match server.addr() {
            tigr_server::ServerAddr::Tcp(a) => a.to_string(),
            other => panic!("{other:?}"),
        };
        let mut client = tigr_server::Client::connect_tcp(&addr).unwrap();
        client
            .mutate(
                "demo",
                vec![
                    tigr_server::MutationOp::AddNode { nodes: 129 },
                    tigr_server::MutationOp::AddEdge { u: 0, v: 128, w: 2 },
                    tigr_server::MutationOp::AddEdge { u: 0, v: 128, w: 2 },
                ],
            )
            .unwrap();
        let stats = run(&parse(&format!("stats --addr {addr}"))).unwrap();
        assert!(
            stats.contains("mutations       1 batches / 2 applied / 1 skipped"),
            "{stats}"
        );
        assert!(stats.contains("wal records"), "{stats}");
        assert!(stats.contains("delta edges"), "{stats}");
        assert!(stats.contains("compactions     0"), "{stats}");
        server.shutdown();
    }

    #[test]
    fn limit_arity_is_enforced_client_side() {
        let (server, addr) = ephemeral_server();
        let err = run(&parse(&format!(
            "khop --addr {addr} --graph-name demo --source 2"
        )))
        .unwrap_err();
        assert!(err.contains("requires --limit (k)"), "{err}");
        let err = run(&parse(&format!(
            "bfs --addr {addr} --graph-name demo --source 2 --limit 4"
        )))
        .unwrap_err();
        assert!(err.contains("takes no --limit"), "{err}");
        server.shutdown();
    }

    #[test]
    fn deadline_rejection_is_timeout_marked() {
        let (server, addr) = ephemeral_server();
        let err = run(&parse(&format!(
            "sssp --addr {addr} --graph-name demo --source 0 --deadline-ms 0"
        )))
        .unwrap_err();
        assert!(err.starts_with(crate::commands::TIMEOUT_PREFIX), "{err}");
        server.shutdown();
    }

    #[test]
    fn bad_targets_and_verbs_error() {
        let err = run(&parse("bfs --graph-name demo")).unwrap_err();
        assert!(err.contains("--addr or --socket"), "{err}");
        let (server, addr) = ephemeral_server();
        let err = run(&parse(&format!("warp --addr {addr}"))).unwrap_err();
        assert!(err.contains("unknown query verb"), "{err}");
        let err = run(&parse(&format!(
            "bfs --addr {addr} --graph-name missing --source 0"
        )))
        .unwrap_err();
        assert!(err.contains("unknown-graph"), "{err}");
        server.shutdown();
    }
}
