//! `tigr prepare --graph <file>` — warm the prepared-graph artifact
//! cache.
//!
//! Resolves the same [`tigr_core::PrepareSpec`] a later `tigr run` will
//! build (load → optional physical/virtual transform → optional
//! transpose) and writes the `TIGRCSR2` artifact, so the run itself
//! starts with a cache hit and zero derivation work. With no cache
//! directory configured this degenerates to a dry build that reports
//! what a run would derive.

use tigr_core::{CancelToken, DumbWeight, PrepareSpec, TransformKind};
use tigr_engine::Direction;
use tigr_graph::GraphError;

use crate::args::Args;
use crate::commands::{format_prepare_report, store_from_args, timeout_message, CmdResult};

/// Runs the `prepare` command.
pub fn run(args: &Args) -> CmdResult {
    let path: String = args.require("graph").map_err(|_| USAGE.to_string())?;
    // --direction mirrors `tigr run`: pull and auto need the transpose
    // views, push does not. Default auto so the artifact serves every
    // direction.
    let direction = match args.flag("direction") {
        Some(s) => Direction::parse(s).ok_or(format!(
            "invalid --direction `{s}` (expected push, pull, or auto)"
        ))?,
        None => Direction::Auto,
    };
    let mut spec = PrepareSpec::from_file(&path).with_transpose(direction != Direction::Push);
    if let Some(k) = args.flag("virtual") {
        let k: u32 = k.parse().map_err(|_| "invalid --virtual K".to_string())?;
        spec = spec.with_virtual(k, args.switch("coalesced"));
    }
    if let Some(topology) = args.flag("transform") {
        let kind = TransformKind::parse(topology)
            .ok_or(format!("unknown topology `{topology}`\n{USAGE}"))?;
        let k = args
            .flag("k")
            .map(|v| v.parse().map_err(|_| "invalid --k".to_string()))
            .transpose()?;
        let dumb = match args.flag("dumb").unwrap_or("zero") {
            "zero" => DumbWeight::Zero,
            "inf" | "infinity" => DumbWeight::Infinity,
            "none" | "unweighted" => DumbWeight::Unweighted,
            other => return Err(format!("unknown dumb-weight policy `{other}`")),
        };
        spec = spec.with_transform(kind, k, dumb);
    }

    // --deadline-ms bounds the whole preparation (load + transforms +
    // transposes) with the cooperative-cancellation hook; expiry exits
    // with the distinct timeout code.
    let cancel = match args.flag("deadline-ms") {
        Some(ms) => {
            let ms: u64 = ms
                .parse()
                .map_err(|_| "invalid --deadline-ms".to_string())?;
            CancelToken::with_deadline(std::time::Duration::from_millis(ms))
        }
        None => CancelToken::never(),
    };
    let store = store_from_args(args)?;
    let prepared = store
        .prepare_cancellable(&spec, &cancel)
        .map_err(|e| match e {
            GraphError::Cancelled => {
                timeout_message(format!("preparation of {path} hit --deadline-ms"))
            }
            other => format!("cannot prepare {path}: {other}"),
        })?;

    let mut views = Vec::new();
    if prepared.transpose().is_some() {
        views.push("transpose".to_string());
    }
    if let Some(ov) = prepared.overlay() {
        views.push(format!(
            "virtual K={}{}",
            ov.k(),
            if ov.is_coalesced() {
                " (coalesced)"
            } else {
                ""
            }
        ));
    }
    if prepared.rev_overlay().is_some() {
        views.push("reverse overlay".to_string());
    }
    if let Some(t) = prepared.transformed() {
        views.push(format!("{} transform K={}", t.topology(), t.k()));
    }
    Ok(format!(
        "prepared {path}: {} nodes, {} edges\nviews           {}\n{}",
        prepared.graph().num_nodes(),
        prepared.graph().num_edges(),
        if views.is_empty() {
            "none".to_string()
        } else {
            views.join(", ")
        },
        format_prepare_report(&prepared),
    ))
}

const USAGE: &str = "usage: tigr prepare --graph <file> [--virtual K [--coalesced]] \
[--transform udt|star|recursive-star|circular|clique [--k K] [--dumb zero|inf|none]] \
[--direction push|pull|auto] [--deadline-ms MS] [--cache-dir DIR] \
[--mmap on|off|auto] [--verify eager|lazy]";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io_util::save_graph;

    fn parse(s: &str) -> Args {
        Args::parse(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>()).unwrap()
    }

    fn fixture(dir_name: &str) -> (String, String) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin").to_str().unwrap().to_string();
        let cache = dir.join("cache").to_str().unwrap().to_string();
        let g =
            tigr_graph::generators::rmat(&tigr_graph::generators::RmatConfig::graph500(7, 6), 3);
        save_graph(&g, &path).unwrap();
        (path, cache)
    }

    #[test]
    fn warms_cache_for_a_following_run() {
        let (path, cache) = fixture("tigr_cli_prepare_test");
        let out = run(&parse(&format!(
            "--graph {path} --virtual 8 --coalesced --cache-dir {cache}"
        )))
        .unwrap();
        assert!(out.contains("cache           miss"), "{out}");
        assert!(out.contains("transpose"), "{out}");
        assert!(out.contains("virtual K=8 (coalesced)"), "{out}");
        assert!(out.contains("reverse overlay"), "{out}");
        // The very run it warms up: cache hit, zero derivation work.
        let out = crate::commands::run::run(&parse(&format!(
            "bfs --graph {path} --virtual 8 --coalesced --direction auto --stats --cache-dir {cache}"
        )))
        .unwrap();
        assert!(out.contains("cache           hit"), "{out}");
        assert!(
            out.contains("prep work       0 transforms, 0 transposes, 0 overlays"),
            "{out}"
        );
    }

    #[test]
    fn prepares_physical_transforms() {
        let (path, cache) = fixture("tigr_cli_prepare_transform_test");
        let out = run(&parse(&format!(
            "--graph {path} --transform udt --k 4 --cache-dir {cache} --direction push"
        )))
        .unwrap();
        assert!(out.contains("udt transform K=4"), "{out}");
        let views = out.lines().find(|l| l.starts_with("views")).unwrap();
        assert!(!views.contains("transpose"), "{out}");
        let out = run(&parse(&format!(
            "--graph {path} --transform udt --k 4 --cache-dir {cache} --direction push"
        )))
        .unwrap();
        assert!(out.contains("cache           hit"), "{out}");
    }

    #[test]
    fn without_cache_reports_dry_build() {
        if std::env::var_os("TIGR_CACHE_DIR").is_some() {
            return;
        }
        let (path, _) = fixture("tigr_cli_prepare_dry_test");
        let out = run(&parse(&format!("--graph {path}"))).unwrap();
        assert!(out.contains("cache           off"), "{out}");
        assert!(out.contains("caching disabled"), "{out}");
    }

    #[test]
    fn stats_lines_include_artifact_path_and_key() {
        let (path, cache) = fixture("tigr_cli_prepare_artifact_test");
        let out = run(&parse(&format!("--graph {path} --cache-dir {cache}"))).unwrap();
        let artifact = out.lines().find(|l| l.starts_with("artifact")).unwrap();
        assert!(artifact.contains(&cache), "{out}");
        let key = out
            .lines()
            .find(|l| l.starts_with("cache"))
            .and_then(|l| l.split("key ").nth(1))
            .and_then(|rest| rest.strip_suffix(')'))
            .unwrap()
            .to_string();
        // The key is the artifact file stem: operators can pre-warm a
        // server cache and know exactly which file serves which spec.
        assert!(artifact.contains(&key), "{out}");
    }

    #[test]
    fn zero_deadline_times_out_with_marker() {
        let (path, _) = fixture("tigr_cli_prepare_deadline_test");
        let err = run(&parse(&format!("--graph {path} --deadline-ms 0"))).unwrap_err();
        assert!(err.starts_with(crate::commands::TIMEOUT_PREFIX), "{err}");
    }

    #[test]
    fn rejects_bad_flags() {
        let (path, cache) = fixture("tigr_cli_prepare_err_test");
        let err = run(&parse("--virtual 8")).unwrap_err();
        assert!(err.contains("usage:"), "{err}");
        let err = run(&parse(&format!(
            "--graph {path} --transform spiral --cache-dir {cache}"
        )))
        .unwrap_err();
        assert!(err.contains("unknown topology"), "{err}");
        let err = run(&parse(&format!(
            "--graph {path} --transform udt --dumb heavy --cache-dir {cache}"
        )))
        .unwrap_err();
        assert!(err.contains("unknown dumb-weight"), "{err}");
        let err = run(&parse(&format!("--graph {path} --direction sideways"))).unwrap_err();
        assert!(err.contains("invalid --direction"), "{err}");
    }
}
