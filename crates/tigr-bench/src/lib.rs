//! Benchmark harness regenerating the paper's evaluation (§6).
//!
//! Each binary under `src/bin/` regenerates one table or figure:
//!
//! | binary | reproduces |
//! |---|---|
//! | `profile_irregularity` | the §2.3 degree-distribution profile |
//! | `table1_properties` | Table 1 (split-transformation properties) |
//! | `table3_datasets` | Table 3 (dataset characteristics) |
//! | `table4_comparison` | Table 4 (MW / CuSha / Gunrock / Tigr-V+) |
//! | `fig13_speedups` | Figure 13 (Tigr-UDT / V / V+ over baseline, SSSP) |
//! | `table5_udt_space` | Table 5 (physical space cost) |
//! | `table6_virtual_space` | Table 6 (virtual space cost) |
//! | `table7_transform_time` | Table 7 (transformation time) |
//! | `table8_sssp_detail` | Table 8 (SSSP case study) |
//! | `ablation_k_sweep` | §5 / §6.4 K-sensitivity observations |
//! | `ablation_frontier` | full-sweep vs active-frontier scheduling |
//! | `ablation_direction` | push vs pull vs auto traversal direction |
//! | `ablation_serve` | serving throughput and result-cache cold-vs-hit |
//!
//! Run with `cargo run --release -p tigr-bench --bin <name>`. The analog
//! scale is `1/TIGR_SCALE` of the paper's node counts
//! (default 256; set `TIGR_SCALE=64` for larger, closer-to-paper runs).
//! `TIGR_FRONTIER=auto|dense|sparse` selects the worklist scheduling
//! policy and `TIGR_DIRECTION=push|pull|auto` the traversal direction
//! for binaries that exercise them.

#![warn(missing_docs)]

use std::time::Instant;

use tigr_core::{GraphStore, PrepareSpec, PreparedGraph};
use tigr_engine::{Direction, FrontierMode};
use tigr_graph::datasets::{DatasetSpec, PAPER_DATASETS};
use tigr_graph::{Csr, NodeId};
use tigr_sim::{GpuConfig, GpuSimulator};

/// Harness configuration, read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Analogs are `1/scale_denominator` of the paper's node counts.
    pub scale_denominator: u64,
    /// Generator seed.
    pub seed: u64,
    /// Frontier scheduling policy for worklist runs.
    pub frontier: FrontierMode,
    /// Traversal direction for binaries that run monotone programs
    /// through an execution plan.
    pub direction: Direction,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale_denominator: 256,
            seed: 2018, // ASPLOS '18
            frontier: FrontierMode::Auto,
            direction: Direction::Push,
        }
    }
}

impl BenchConfig {
    /// Reads `TIGR_SCALE`, `TIGR_SEED`, `TIGR_FRONTIER`, and
    /// `TIGR_DIRECTION` from the environment.
    pub fn from_env() -> Self {
        let mut cfg = BenchConfig::default();
        if let Ok(s) = std::env::var("TIGR_SCALE") {
            if let Ok(v) = s.parse() {
                cfg.scale_denominator = v;
            }
        }
        if let Ok(s) = std::env::var("TIGR_SEED") {
            if let Ok(v) = s.parse() {
                cfg.seed = v;
            }
        }
        if let Ok(s) = std::env::var("TIGR_FRONTIER") {
            if let Some(mode) = FrontierMode::parse(&s) {
                cfg.frontier = mode;
            }
        }
        if let Ok(s) = std::env::var("TIGR_DIRECTION") {
            if let Some(d) = Direction::parse(&s) {
                cfg.direction = d;
            }
        }
        cfg
    }

    /// Simulated device budget preserving the paper's 8 GB-to-graph-size
    /// ratio at analog scale.
    pub fn device_budget(&self) -> u64 {
        8 * 1024 * 1024 * 1024 / self.scale_denominator.max(1)
    }

    /// A parallel simulator with the default (P4000-like) configuration.
    pub fn simulator(&self) -> GpuSimulator {
        GpuSimulator::new_parallel(GpuConfig::default())
    }
}

/// Resolves a generator tag (`rmat:<scale>:<ef>`, `star:<nodes>`,
/// `ba:<n>:<m>[:sym]`, `dataset:<name>[:<denom>[:weighted]]`) through
/// the shared [`GraphStore`] artifact layer — the one load/generate
/// path every bench binary uses. With `TIGR_CACHE_DIR` set, repeated
/// invocations load the cached `TIGRCSR2` artifact instead of
/// regenerating; without it, the store builds in memory.
///
/// `weights` overlays uniform random `[lo, hi]` edge weights drawn with
/// the given seed (the SSSP/SSWP variants).
///
/// # Panics
///
/// Panics on a malformed tag — bench inputs are hard-coded, so a bad
/// tag is a bug, not an input error.
pub fn prepare_input(tag: &str, seed: u64, weights: Option<(u32, u32, u64)>) -> PreparedGraph {
    let mut spec = PrepareSpec::generated(tag, seed);
    if let Some((lo, hi, wseed)) = weights {
        spec = spec.with_uniform_weights(lo, hi, wseed);
    }
    GraphStore::from_env()
        .prepare(&spec)
        .unwrap_or_else(|e| panic!("prepare_input(`{tag}`): {e}"))
}

/// The highest-out-degree node (ties broken toward the lowest id): the
/// source every source-driven bench uses so propagation is non-trivial.
///
/// # Panics
///
/// Panics on an empty graph.
pub fn max_degree_source(g: &Csr) -> NodeId {
    g.nodes()
        .max_by_key(|&v| (g.out_degree(v), std::cmp::Reverse(v.raw())))
        .expect("non-empty graph")
}

/// One generated dataset analog with weighted and unweighted variants.
#[derive(Debug)]
pub struct DatasetInstance {
    /// The Table 3 spec this analog mirrors.
    pub spec: &'static DatasetSpec,
    /// Unweighted topology (BFS, CC, PR, BC).
    pub graph: Csr,
    /// Uniform-\[1,64\]-weighted variant (SSSP, SSWP).
    pub weighted: Csr,
}

impl DatasetInstance {
    /// Generates the analog for `spec` through the [`GraphStore`]
    /// artifact layer (cached under `TIGR_CACHE_DIR` when set).
    pub fn generate(spec: &'static DatasetSpec, cfg: &BenchConfig) -> Self {
        let tag = format!("dataset:{}:{}", spec.name, cfg.scale_denominator);
        let graph = prepare_input(&tag, cfg.seed, None).into_graph();
        let weighted = prepare_input(&tag, cfg.seed, Some((1, 64, cfg.seed ^ 0xA5))).into_graph();
        DatasetInstance {
            spec,
            graph,
            weighted,
        }
    }

    /// The highest-out-degree node: the source used for the
    /// source-driven analytics (guarantees non-trivial propagation).
    pub fn source(&self) -> NodeId {
        max_degree_source(&self.graph)
    }
}

/// Generates all six Table 3 analogs, printing progress to stderr.
pub fn load_datasets(cfg: &BenchConfig) -> Vec<DatasetInstance> {
    PAPER_DATASETS
        .iter()
        .map(|spec| {
            let t = Instant::now();
            let d = DatasetInstance::generate(spec, cfg);
            eprintln!(
                "  generated {:<12} {:>9} nodes {:>10} edges in {:.1?}",
                spec.name,
                d.graph.num_nodes(),
                d.graph.num_edges(),
                t.elapsed()
            );
            d
        })
        .collect()
}

/// Generates a single dataset analog by name.
///
/// # Panics
///
/// Panics if `name` is not one of the Table 3 datasets.
pub fn load_datasets_one(cfg: &BenchConfig, name: &str) -> DatasetInstance {
    let spec = tigr_graph::datasets::by_name(name).expect("unknown dataset name");
    DatasetInstance::generate(spec, cfg)
}

/// Formats a cell: milliseconds with two decimals, `OOM`, or `-`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Cell {
    /// Simulated milliseconds.
    Ms(f64),
    /// Out of device memory (Table 4's `OOM`).
    Oom,
    /// Primitive not available in this framework (`-`).
    Missing,
}

impl Cell {
    /// Renders the cell as the paper's tables do.
    pub fn render(&self) -> String {
        match self {
            Cell::Ms(v) => format!("{v:.2}"),
            Cell::Oom => "OOM".to_string(),
            Cell::Missing => "-".to_string(),
        }
    }

    /// The numeric value if present.
    pub fn as_ms(&self) -> Option<f64> {
        match self {
            Cell::Ms(v) => Some(*v),
            _ => None,
        }
    }
}

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Converts total simulated cycles to nominal milliseconds under the
/// default device clock.
pub fn cycles_to_ms(cycles: u64) -> f64 {
    GpuConfig::default().cycles_to_ms(cycles)
}

/// Geometric mean of a non-empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config() {
        let cfg = BenchConfig::default();
        assert_eq!(cfg.scale_denominator, 256);
        assert_eq!(cfg.device_budget(), (8 << 30) / 256);
        assert_eq!(cfg.direction, Direction::Push);
        assert_eq!(cfg.frontier, FrontierMode::Auto);
    }

    #[test]
    fn cell_rendering() {
        assert_eq!(Cell::Ms(12.345).render(), "12.35");
        assert_eq!(Cell::Oom.render(), "OOM");
        assert_eq!(Cell::Missing.render(), "-");
        assert_eq!(Cell::Ms(1.0).as_ms(), Some(1.0));
        assert_eq!(Cell::Oom.as_ms(), None);
    }

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn prepare_input_matches_direct_generation() {
        let p = prepare_input("rmat:7:8", 11, None);
        let direct =
            tigr_graph::generators::rmat(&tigr_graph::generators::RmatConfig::graph500(7, 8), 11);
        assert_eq!(p.graph(), &direct);
        let w = prepare_input("rmat:7:8", 11, Some((1, 9, 5)));
        assert!(w.graph().is_weighted());
        assert_eq!(w.graph().num_edges(), direct.num_edges());
        assert_eq!(w.into_graph().num_nodes(), direct.num_nodes());
    }

    #[test]
    fn dataset_instance_generates_both_variants() {
        let cfg = BenchConfig {
            scale_denominator: 4096,
            seed: 1,
            ..BenchConfig::default()
        };
        let d = DatasetInstance::generate(&PAPER_DATASETS[0], &cfg);
        assert!(!d.graph.is_weighted());
        assert!(d.weighted.is_weighted());
        assert_eq!(d.graph.num_edges(), d.weighted.num_edges());
        let src = d.source();
        assert_eq!(
            d.graph.out_degree(src),
            d.graph.max_out_degree(),
            "source is the max-degree hub"
        );
    }
}
