//! Ablation of active-frontier worklist scheduling: full sweeps versus
//! dense / sparse / auto-switched frontiers.
//!
//! Runs SSSP on RMAT and Barabási–Albert analogs and reports, per
//! scheduling policy: iteration count, edge relaxations attempted
//! (`edges_touched`), simulated milliseconds, and host wall-clock. The
//! frontier must reach the exact full-sweep fixpoint while attempting
//! strictly fewer relaxations — both are asserted, not just printed.
//!
//! `TIGR_FRONTIER` selects the policy for the composition row that runs
//! the frontier over a coalesced virtual overlay (Tigr-V+ + worklist).

use std::time::Instant;

use tigr_bench::{cycles_to_ms, max_degree_source, prepare_input, print_table, BenchConfig};
use tigr_core::{PreparedGraph, VirtualGraph};
use tigr_engine::{Engine, FrontierMode, MonotoneOutput, PushOptions, Representation};
use tigr_sim::GpuConfig;

fn engine_with(worklist: bool, frontier: FrontierMode) -> Engine {
    Engine::parallel(GpuConfig::default()).with_options(PushOptions {
        worklist,
        frontier,
        ..PushOptions::default()
    })
}

fn row(label: &str, out: &MonotoneOutput, wall: f64) -> Vec<String> {
    vec![
        label.to_string(),
        out.report.num_iterations().to_string(),
        out.edges_touched.to_string(),
        format!("{:.2}", cycles_to_ms(out.report.total_cycles())),
        format!("{wall:.1}"),
    ]
}

fn main() {
    let cfg = BenchConfig::from_env();
    // The paper's RMAT inputs have 2^24-ish nodes; analog at 1/scale.
    let scale = (24u32.saturating_sub(cfg.scale_denominator.max(1).ilog2())).max(10);
    let ba_nodes = ((1usize << 22) / cfg.scale_denominator.max(1) as usize).max(1024);
    println!(
        "Frontier-scheduling ablation at 1/{} scale (SSSP, composition mode: {})",
        cfg.scale_denominator,
        cfg.frontier.label()
    );

    // Inputs resolve through the shared GraphStore artifact layer; set
    // TIGR_CACHE_DIR to skip regeneration on repeat runs. The BA analog
    // is symmetric (undirected, as the social graphs BA models are — and
    // so the traversal reaches the whole graph).
    let datasets: Vec<(&str, PreparedGraph)> = vec![
        (
            "rmat",
            prepare_input(
                &format!("rmat:{scale}:16"),
                cfg.seed,
                Some((1, 64, cfg.seed)),
            ),
        ),
        (
            "barabasi-albert",
            prepare_input(
                &format!("ba:{ba_nodes}:8:sym"),
                cfg.seed,
                Some((1, 64, cfg.seed ^ 0xBA)),
            ),
        ),
    ];

    for (name, prepared) in &datasets {
        let g = prepared.graph();
        let src = max_degree_source(g);
        eprintln!(
            "  {name}: {} nodes, {} edges, source {src}",
            g.num_nodes(),
            g.num_edges()
        );
        let rep = Representation::Original(g);
        let run = |worklist: bool, mode: FrontierMode| {
            let engine = engine_with(worklist, mode);
            let t = Instant::now();
            let out = engine.sssp(&rep, src).unwrap();
            (out, t.elapsed().as_secs_f64() * 1e3)
        };

        let (full, full_wall) = run(false, FrontierMode::Auto);
        let mut rows = vec![row("full-sweep", &full, full_wall)];
        for mode in [
            FrontierMode::Auto,
            FrontierMode::Dense,
            FrontierMode::Sparse,
        ] {
            let (out, wall) = run(true, mode);
            assert_eq!(
                out.values,
                full.values,
                "{name}/{}: frontier values diverge from full sweep",
                mode.label()
            );
            assert!(
                out.edges_touched < full.edges_touched,
                "{name}/{}: frontier attempted {} relaxations, full sweep {}",
                mode.label(),
                out.edges_touched,
                full.edges_touched
            );
            rows.push(row(&format!("frontier-{}", mode.label()), &out, wall));
        }

        // Composition with Tigr-V+: the frontier expands physical nodes
        // into their virtual families before scheduling.
        let ov = VirtualGraph::coalesced(g, 8);
        let vrep = Representation::Virtual {
            graph: g,
            overlay: &ov,
        };
        let t = Instant::now();
        let vout = engine_with(true, cfg.frontier).sssp(&vrep, src).unwrap();
        let vwall = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            vout.values, full.values,
            "{name}: virtual+frontier diverges"
        );
        rows.push(row(
            &format!("virtual+frontier-{}", cfg.frontier.label()),
            &vout,
            vwall,
        ));

        print_table(
            &format!("{name}: full sweep vs frontier scheduling"),
            &["schedule", "iters", "edges touched", "sim ms", "wall ms"],
            &rows,
        );
    }

    println!(
        "\nall frontier schedules reached the full-sweep fixpoint with strictly \
         fewer edge relaxations"
    );
}
