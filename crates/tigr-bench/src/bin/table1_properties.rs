//! Regenerates Table 1: properties of the split transformations.
//!
//! For each topology, prints the paper's closed-form columns (#new
//! nodes, #new edges, new degree, max hops) at a representative
//! `(d, K)`, checked against graphs actually produced by the
//! implementations, plus the qualitative cost labels.

use tigr_bench::print_table;
use tigr_core::split::properties::{
    circular_properties, clique_properties, star_properties, udt_properties, SplitProperties,
};
use tigr_core::{circular_transform, clique_transform, star_transform, udt_transform, DumbWeight};
use tigr_graph::generators::star_graph;
use tigr_graph::properties::bfs_levels;
use tigr_graph::{Csr, NodeId};

fn measured(
    transform: impl Fn(&Csr, u32, DumbWeight) -> tigr_core::TransformedGraph,
    d: usize,
    k: u32,
) -> SplitProperties {
    let g = star_graph(d + 1);
    let t = transform(&g, k, DumbWeight::Zero);
    let levels = bfs_levels(t.graph(), NodeId::new(0));
    let max_target_level = (1..=d).map(|v| levels[v]).max().unwrap();
    SplitProperties {
        new_nodes: t.num_split_nodes(),
        new_edges: t.num_new_edges(),
        new_degree: t.graph().max_out_degree(),
        max_hops: max_target_level - 1,
    }
}

fn main() {
    let (d, k) = (1000usize, 10u32);
    println!("Table 1 at d = {d}, K = {k} (formulas vs. measured constructions)");

    let rows = vec![
        row(
            "T_cliq",
            clique_properties(d, k as usize),
            measured(clique_transform, d, k),
            "high",
            "low",
            "fast",
        ),
        row(
            "T_circ",
            circular_properties(d, k as usize),
            measured(circular_transform, d, k),
            "low",
            "high",
            "slow",
        ),
        row(
            "T_star",
            star_properties(d, k as usize),
            measured(star_transform, d, k),
            "low",
            "varies",
            "fast",
        ),
        row(
            "T_udt",
            udt_properties(d, k as usize),
            measured(udt_transform, d, k),
            "low",
            "high",
            "fast (log)",
        ),
    ];

    print_table(
        "Table 1: split-transformation properties (formula | measured)",
        &[
            "transform",
            "#new nodes",
            "#new edges",
            "new degree",
            "max #hops",
            "space",
            "irreg. red.",
            "value prop.",
        ],
        &rows,
    );
    println!(
        "\nnote: T_circ's measured #new edges includes the ring-closing edge back to the\n\
         root (+1 vs the paper's count); UDT hops are the measured tree height."
    );
}

fn row(
    name: &str,
    formula: SplitProperties,
    measured: SplitProperties,
    space: &str,
    irreg: &str,
    prop: &str,
) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{} | {}", formula.new_nodes, measured.new_nodes),
        format!("{} | {}", formula.new_edges, measured.new_edges),
        format!("{} | {}", formula.new_degree, measured.new_degree),
        format!("{} | {}", formula.max_hops, measured.max_hops),
        space.to_string(),
        irreg.to_string(),
        prop.to_string(),
    ]
}
