//! Regenerates Table 8: the SSSP case study on LiveJournal with K = 8.
//!
//! Reports, for the original / physically transformed / virtually
//! transformed graph, with and without the worklist optimization:
//! iteration count, cycles per iteration, executed instructions, and
//! warp efficiency.
//!
//! Expected shape (paper, without worklist): physical needs >2× the
//! iterations; virtual needs none extra; both raise warp efficiency from
//! ~26% to >90%; the worklist slashes instruction counts everywhere.

use tigr_bench::{load_datasets_one, print_table, BenchConfig};
use tigr_core::{udt_transform, DumbWeight, VirtualGraph};
use tigr_engine::{Engine, FrontierMode, MonotoneOutput, PushOptions, Representation, SyncMode};
use tigr_sim::GpuConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Table 8 at 1/{} scale: SSSP on the LiveJournal analog, K = 8",
        cfg.scale_denominator
    );
    let d = load_datasets_one(&cfg, "livejournal");
    let g = &d.weighted;
    let src = d.source();
    let k = 8;

    let t = udt_transform(g, k, DumbWeight::Zero);
    let ov = VirtualGraph::coalesced(g, k);

    let mut rows = Vec::new();
    // The third configuration batches similar degrees into warps, which
    // is what lifts the paper's original+worklist efficiency to 60.53%.
    for (worklist, sorted) in [(false, false), (true, false), (true, true)] {
        let engine = Engine::parallel(GpuConfig::default()).with_options(PushOptions {
            worklist,
            sort_frontier_by_degree: sorted,
            sync: SyncMode::Relaxed,
            max_iterations: 100_000,
            // Degree batching reorders the compacted list, so pin the
            // sparse representation.
            frontier: FrontierMode::Sparse,
        });
        let runs: Vec<(&str, MonotoneOutput)> = vec![
            (
                "original",
                engine.sssp(&Representation::Original(g), src).unwrap(),
            ),
            (
                "physical",
                engine.sssp(&Representation::Physical(&t), src).unwrap(),
            ),
            (
                "virtual",
                engine
                    .sssp(
                        &Representation::Virtual {
                            graph: g,
                            overlay: &ov,
                        },
                        src,
                    )
                    .unwrap(),
            ),
        ];
        for (name, out) in runs {
            let total = out.report.total();
            let suffix = match (worklist, sorted) {
                (false, _) => "",
                (true, false) => " +worklist",
                (true, true) => " +worklist sorted",
            };
            rows.push(vec![
                format!("{name}{suffix}"),
                out.report.num_iterations().to_string(),
                format!("{:.0}", out.report.cycles_per_iteration()),
                format!("{:.2e}", total.instructions as f64),
                format!("{:.2}%", 100.0 * out.report.warp_efficiency()),
            ]);
        }
    }

    print_table(
        "Table 8: SSSP performance details (LiveJournal analog, K=8)",
        &[
            "configuration",
            "#iter",
            "cycles/iter",
            "#instr",
            "warp effi.",
        ],
        &rows,
    );
    println!(
        "\npaper reference (no worklist): original 14 iters @ 25.98% effi.;\n\
         physical 29 iters @ 91.15%; virtual 14 iters @ 92.81%.\n\
         with worklist: 18 / 45 / 18 iters, instructions cut 3-4x."
    );
}
