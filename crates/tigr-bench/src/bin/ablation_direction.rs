//! Ablation of traversal direction: push (top-down) versus pull
//! (bottom-up over the transpose) versus the auto density switch, all
//! expressed as execution plans over the same engine.
//!
//! Runs BFS and SSSP on a power-law RMAT analog and on a star graph (the
//! pathological hub that motivates the paper's transformations) and
//! reports, per direction: iteration count, edge relaxations attempted,
//! simulated milliseconds, warp efficiency, and — for auto — how many
//! iterations ran in each direction. Every direction must reach values
//! identical to the push reference (Theorem 3 licenses the pull side);
//! asserted, not just printed.
//!
//! Output goes both to stdout (aligned table) and to a machine-readable
//! JSON file: `BENCH_direction.json` at the workspace root by default,
//! `target/BENCH_direction.smoke.json` under `--smoke` (the quick CI
//! configuration). `--out <path>` overrides the destination.
//! `TIGR_FRONTIER` selects the worklist policy the plans schedule with.

use std::fmt::Write as _;
use std::time::Instant;

use tigr_bench::{cycles_to_ms, max_degree_source, prepare_input, print_table, BenchConfig};
use tigr_core::PreparedGraph;
use tigr_engine::{Direction, Engine, MonotoneProgram, PushOptions, Representation};
use tigr_sim::GpuConfig;

/// One measured (graph, analytic, direction) cell.
struct Sample {
    graph: &'static str,
    analytic: &'static str,
    direction: Direction,
    sim_ms: f64,
    wall_ms: f64,
    iterations: usize,
    edges_touched: u64,
    pull_iterations: usize,
    warp_efficiency: f64,
}

impl Sample {
    fn json(&self) -> String {
        format!(
            "{{\"graph\": \"{}\", \"analytic\": \"{}\", \"direction\": \"{}\", \
             \"sim_ms\": {:.4}, \"wall_ms\": {:.3}, \"iterations\": {}, \
             \"edges_touched\": {}, \"pull_iterations\": {}, \"warp_efficiency\": {:.4}}}",
            self.graph,
            self.analytic,
            self.direction.label(),
            self.sim_ms,
            self.wall_ms,
            self.iterations,
            self.edges_touched,
            self.pull_iterations,
            self.warp_efficiency,
        )
    }

    fn row(&self) -> Vec<String> {
        let mix = if self.direction == Direction::Auto {
            format!(
                "{}p/{}g",
                self.iterations - self.pull_iterations,
                self.pull_iterations
            )
        } else {
            "-".to_string()
        };
        vec![
            self.direction.label().to_string(),
            self.iterations.to_string(),
            mix,
            self.edges_touched.to_string(),
            format!("{:.3}", self.sim_ms),
            format!("{:.1}", 100.0 * self.warp_efficiency),
            format!("{:.1}", self.wall_ms),
        ]
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_direction.smoke.json".to_string()
        } else {
            "BENCH_direction.json".to_string()
        }
    });
    // Smoke: a few thousand nodes — a CI-speed regression gate. Full: a
    // ≥60k-node power-law graph where the dense middle levels make the
    // direction switch pay. The simulator is deterministic, so a single
    // run per cell is exact; wall clock is informative only.
    let (scale, star_leaves) = if smoke {
        (10u32, 1usize << 10)
    } else {
        (16, 1 << 16)
    };

    let cfg = BenchConfig::from_env();
    let t = Instant::now();
    // Inputs resolve through the shared GraphStore artifact layer; set
    // TIGR_CACHE_DIR to skip regeneration on repeat runs.
    let weight_seed = cfg.seed ^ 0xD1;
    let graphs: Vec<(&'static str, PreparedGraph, PreparedGraph)> = vec![
        (
            "rmat",
            prepare_input(&format!("rmat:{scale}:16"), cfg.seed, None),
            prepare_input(
                &format!("rmat:{scale}:16"),
                cfg.seed,
                Some((1, 64, weight_seed)),
            ),
        ),
        (
            "star",
            prepare_input(&format!("star:{}", star_leaves + 1), cfg.seed, None),
            prepare_input(
                &format!("star:{}", star_leaves + 1),
                cfg.seed,
                Some((1, 64, weight_seed)),
            ),
        ),
    ];
    eprintln!("prepared inputs in {:.1?}", t.elapsed());
    println!(
        "Direction ablation (frontier: {}): push vs pull vs auto",
        cfg.frontier.label()
    );

    let mut samples: Vec<Sample> = Vec::new();
    for (name, unweighted, weighted) in &graphs {
        let g = unweighted.graph();
        let src = max_degree_source(g);
        eprintln!(
            "  {name}: {} nodes, {} edges, source {src}",
            g.num_nodes(),
            g.num_edges()
        );
        for (analytic, graph, prog) in [
            ("bfs", g, MonotoneProgram::BFS),
            ("sssp", weighted.graph(), MonotoneProgram::SSSP),
        ] {
            let rep = Representation::Original(graph);
            let mut reference: Option<Vec<u32>> = None;
            for direction in Direction::ALL {
                let engine = Engine::parallel(GpuConfig::default())
                    .with_options(PushOptions {
                        worklist: true,
                        frontier: cfg.frontier,
                        ..PushOptions::default()
                    })
                    .with_direction(direction);
                let t = Instant::now();
                let out = engine.run_program(&rep, prog, Some(src)).unwrap();
                let wall_ms = t.elapsed().as_secs_f64() * 1e3;
                match &reference {
                    None => reference = Some(out.values.clone()),
                    Some(expect) => assert_eq!(
                        &out.values,
                        expect,
                        "{name}/{analytic}/{}: diverged from push reference",
                        direction.label()
                    ),
                }
                samples.push(Sample {
                    graph: name,
                    analytic,
                    direction,
                    sim_ms: cycles_to_ms(out.report.total_cycles()),
                    wall_ms,
                    iterations: out.report.num_iterations(),
                    edges_touched: out.edges_touched,
                    pull_iterations: out
                        .directions
                        .iter()
                        .filter(|&&d| d == Direction::Pull)
                        .count(),
                    warp_efficiency: out.report.warp_efficiency(),
                });
            }
        }
    }

    for (name, ..) in &graphs {
        for analytic in ["bfs", "sssp"] {
            let rows: Vec<Vec<String>> = samples
                .iter()
                .filter(|s| s.graph == *name && s.analytic == analytic)
                .map(Sample::row)
                .collect();
            print_table(
                &format!("{name}/{analytic}: traversal direction"),
                &[
                    "direction",
                    "iters",
                    "mix",
                    "edges",
                    "sim ms",
                    "warp eff %",
                    "wall ms",
                ],
                &rows,
            );
        }
    }

    // The unweighted power-law BFS is the shape the direction switch was
    // built for: auto must actually engage the pull side there.
    let rmat_auto_bfs = samples
        .iter()
        .find(|s| s.graph == "rmat" && s.analytic == "bfs" && s.direction == Direction::Auto)
        .expect("auto sample");
    assert!(
        rmat_auto_bfs.pull_iterations > 0,
        "auto never pulled on dense power-law BFS"
    );

    // Simulated-time ratios of pull/auto against the push baseline.
    let mut speedup_json = String::new();
    println!("\nsim-time speedup over push:");
    for (name, ..) in &graphs {
        for analytic in ["bfs", "sssp"] {
            let base = samples
                .iter()
                .find(|s| {
                    s.graph == *name && s.analytic == analytic && s.direction == Direction::Push
                })
                .expect("push baseline")
                .sim_ms;
            let mut parts = Vec::new();
            for s in samples.iter().filter(|s| {
                s.graph == *name && s.analytic == analytic && s.direction != Direction::Push
            }) {
                let speedup = base / s.sim_ms.max(1e-12);
                println!(
                    "  {name:<5} {analytic:<5} {:<5} {speedup:.2}x",
                    s.direction.label()
                );
                parts.push(format!("\"{}\": {:.4}", s.direction.label(), speedup));
            }
            let _ = write!(
                speedup_json,
                "{}\"{name}/{analytic}\": {{{}}}",
                if speedup_json.is_empty() { "" } else { ", " },
                parts.join(", ")
            );
        }
    }

    let graph_json = graphs
        .iter()
        .map(|(name, p, _)| {
            let g = p.graph();
            format!(
                "{{\"name\": \"{name}\", \"nodes\": {}, \"edges\": {}, \"max_out_degree\": {}}}",
                g.num_nodes(),
                g.num_edges(),
                g.max_out_degree()
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"direction\",\n  \"smoke\": {smoke},\n  \"frontier\": \"{}\",\n  \
         \"graphs\": [{graph_json}],\n  \"results\": [\n    {}\n  ],\n  \
         \"sim_speedup_over_push\": {{{speedup_json}}}\n}}\n",
        cfg.frontier.label(),
        samples
            .iter()
            .map(Sample::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write JSON output");
    println!("\nwrote {out_path}");
}
