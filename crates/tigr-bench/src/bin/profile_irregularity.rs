//! Regenerates the §2.3 irregularity profile: "over 90% of nodes have
//! degrees less than 20 while less than 2% of nodes have degrees around
//! 1000, up to 14,000".

use tigr_bench::{load_datasets, print_table, BenchConfig};
use tigr_graph::stats::{degree_stats, power_law_alpha};

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Degree-distribution irregularity of the analogs (1/{} scale)",
        cfg.scale_denominator
    );
    let datasets = load_datasets(&cfg);

    let mut rows = Vec::new();
    for d in &datasets {
        let s = degree_stats(&d.graph);
        let alpha = power_law_alpha(&d.graph, 5)
            .map(|a| format!("{a:.2}"))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            d.spec.name.to_string(),
            format!("{:.1}", s.avg_degree),
            s.median_degree.to_string(),
            s.p99_degree.to_string(),
            s.max_degree.to_string(),
            format!("{:.1}%", s.frac_below_20 * 100.0),
            format!("{:.2}%", s.frac_at_least_1000 * 100.0),
            format!("{:.2}", s.coefficient_of_variation),
            alpha,
        ]);
    }
    print_table(
        "Section 2.3 profile (paper: >90% of nodes < 20, <2% around 1000+)",
        &[
            "dataset",
            "avg",
            "median",
            "p99",
            "dmax",
            "deg<20",
            "deg>=1000",
            "CV",
            "alpha",
        ],
        &rows,
    );
}
