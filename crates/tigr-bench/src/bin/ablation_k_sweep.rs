//! Ablation of the degree bound K (§5, §6.4): virtual transformation is
//! insensitive to K while the physical transformation varies strongly.
//!
//! Sweeps SSSP on the LiveJournal analog over K for both schemes and
//! prints cycles relative to each scheme's best K.

use tigr_bench::{cycles_to_ms, load_datasets_one, print_table, BenchConfig};
use tigr_core::{udt_transform, DumbWeight, VirtualGraph};
use tigr_engine::{Engine, PushOptions, Representation};
use tigr_sim::GpuConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "K-sensitivity ablation at 1/{} scale (SSSP, LiveJournal analog)",
        cfg.scale_denominator
    );
    let d = load_datasets_one(&cfg, "livejournal");
    let g = &d.weighted;
    let src = d.source();
    let engine = Engine::parallel(GpuConfig::default()).with_options(PushOptions::default());

    let ks = [4u32, 8, 10, 16, 32, 64, 128];

    let mut virt_cycles = Vec::new();
    let mut phys_cycles = Vec::new();
    for &k in &ks {
        let ov = VirtualGraph::coalesced(g, k);
        let v = engine
            .sssp(
                &Representation::Virtual {
                    graph: g,
                    overlay: &ov,
                },
                src,
            )
            .unwrap();
        virt_cycles.push(v.report.total_cycles());

        let t = udt_transform(g, k.max(2), DumbWeight::Zero);
        let p = engine.sssp(&Representation::Physical(&t), src).unwrap();
        phys_cycles.push(p.report.total_cycles());
    }

    let min_v = *virt_cycles.iter().min().unwrap() as f64;
    let min_p = *phys_cycles.iter().min().unwrap() as f64;

    let mut rows = Vec::new();
    for (i, &k) in ks.iter().enumerate() {
        rows.push(vec![
            k.to_string(),
            format!("{:.2}", cycles_to_ms(virt_cycles[i])),
            format!("{:.2}x", virt_cycles[i] as f64 / min_v),
            format!("{:.2}", cycles_to_ms(phys_cycles[i])),
            format!("{:.2}x", phys_cycles[i] as f64 / min_p),
        ]);
    }
    print_table(
        "K sweep: virtual vs physical (x = slowdown vs best K of that scheme)",
        &[
            "K",
            "virtual ms",
            "virt vs best",
            "physical ms",
            "phys vs best",
        ],
        &rows,
    );

    let spread = |cycles: &[u64]| {
        let max = *cycles.iter().max().unwrap() as f64;
        let min = *cycles.iter().min().unwrap() as f64;
        max / min
    };
    println!(
        "\nspread across K: virtual {:.2}x, physical {:.2}x\n\
         (paper: virtual shows only marginal K-sensitivity; physical varies substantially)",
        spread(&virt_cycles),
        spread(&phys_cycles)
    );
}
