//! Regenerates Table 3: dataset characteristics.
//!
//! Prints, for every analog: measured #nodes, #edges, d_max, estimated
//! diameter, and the degree bounds (K_udt from the §5 heuristic, K_v =
//! 10), side by side with the paper's reported values.

use tigr_bench::{load_datasets, print_table, BenchConfig};
use tigr_core::k_select;
use tigr_graph::stats::estimate_diameter;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Table 3 analogs at 1/{} of the paper's node counts (TIGR_SCALE to change)",
        cfg.scale_denominator
    );
    let datasets = load_datasets(&cfg);

    let mut rows = Vec::new();
    for d in &datasets {
        let g = &d.graph;
        let diameter = estimate_diameter(g, 16, cfg.seed);
        rows.push(vec![
            d.spec.name.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            g.max_out_degree().to_string(),
            diameter.to_string(),
            k_select::physical_k(g).to_string(),
            k_select::VIRTUAL_K.to_string(),
            format!(
                "{}M/{}M/{}K/{}",
                d.spec.paper_nodes / 1_000_000,
                d.spec.paper_edges / 1_000_000,
                d.spec.paper_max_degree / 1000,
                d.spec.paper_diameter
            ),
        ]);
    }
    print_table(
        "Table 3: datasets (measured analog | paper nodes/edges/dmax/diam)",
        &[
            "dataset", "#nodes", "#edges", "dmax", "diam", "Kudt", "Kv", "paper",
        ],
        &rows,
    );
}
