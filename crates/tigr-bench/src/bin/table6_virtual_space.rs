//! Regenerates Table 6: space cost of the virtual transformation as a
//! percentage of the original CSR size, for K ∈ {4, 8, 16, 32, 100}.

use tigr_bench::{load_datasets, print_table, BenchConfig};
use tigr_core::VirtualGraph;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Table 6 at 1/{} scale (paper: ~146-149% at K=4, ~124-127% at K=8, shrinking with K)",
        cfg.scale_denominator
    );
    let datasets = load_datasets(&cfg);
    let ks = [4u32, 8, 16, 32, 100];

    let mut rows = Vec::new();
    for d in &datasets {
        let mut row = vec![d.spec.name.to_string()];
        for &k in &ks {
            let vg = VirtualGraph::new(&d.graph, k);
            row.push(format!("{:.2}%", 100.0 * vg.space_cost_ratio(&d.graph)));
        }
        rows.push(row);
    }
    print_table(
        "Table 6: space cost of virtual transformation",
        &["dataset", "K=4", "K=8", "K=16", "K=32", "K=100"],
        &rows,
    );
}
