//! Runs the executable Theorem 1 / Corollary 1–4 checks (§3.3) against
//! every dataset analog — the reproduction's correctness artifact.
//!
//! Prints one row per dataset with the outcome of each check on a UDT
//! transformation at the §5-heuristic K (zero dumb weights), plus the
//! SSWP check under infinite dumb weights and the virtual overlay
//! validation.

use tigr_bench::{load_datasets, print_table, BenchConfig};
use tigr_core::correctness::{
    verify_bottleneck_preservation, verify_connectivity_preservation, verify_degree_bound,
    verify_distance_preservation, verify_indegree_preservation, verify_logarithmic_hops,
    verify_path_preservation, verify_split_definition,
};
use tigr_core::{k_select, udt_transform, DumbWeight, VirtualGraph};

fn mark(r: Result<(), String>) -> String {
    match r {
        Ok(()) => "ok".to_string(),
        Err(e) => format!("FAIL({})", e.chars().take(40).collect::<String>()),
    }
}

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Correctness verification at 1/{} scale (UDT + dumb weights, virtual overlay)",
        cfg.scale_denominator
    );
    let datasets = load_datasets(&cfg);

    let mut rows = Vec::new();
    let mut failures = 0;
    for d in &datasets {
        let g = &d.weighted;
        let k = k_select::physical_k(g).max(2);
        let t_zero = udt_transform(g, k, DumbWeight::Zero);
        let t_inf = udt_transform(g, k, DumbWeight::Infinity);
        let src = d.source();

        let checks = [
            mark(verify_split_definition(g, &t_zero)),
            mark(verify_degree_bound(&t_zero)),
            mark(verify_connectivity_preservation(g, &t_zero)),
            mark(verify_indegree_preservation(g, &t_zero)),
            mark(verify_path_preservation(g, &t_zero, 64, cfg.seed)),
            mark(verify_distance_preservation(g, &t_zero, src)),
            mark(verify_bottleneck_preservation(g, &t_inf, src)),
            mark(verify_logarithmic_hops(g, &t_zero, src)),
            mark(VirtualGraph::coalesced(g, k_select::VIRTUAL_K).validate_against(g)),
        ];
        failures += checks.iter().filter(|c| c.starts_with("FAIL")).count();

        let mut row = vec![d.spec.name.to_string(), format!("K={k}")];
        row.extend(checks);
        rows.push(row);
    }

    print_table(
        "Theorem 1 / Corollaries 1-4 and overlay validation",
        &[
            "dataset", "K", "def2", "deg<=K", "conn", "indeg", "paths", "dist", "width",
            "log-hops", "overlay",
        ],
        &rows,
    );
    if failures == 0 {
        println!("\nall checks passed on every dataset analog ✓");
    } else {
        println!("\n{failures} check(s) FAILED");
        std::process::exit(1);
    }
}
