//! Regenerates Table 7: wall-clock transformation time, physical (UDT)
//! versus virtual, per dataset.
//!
//! Expected shape (paper): both linear in graph size; virtual is one to
//! two orders of magnitude cheaper than physical for the same input.

use std::time::Instant;

use tigr_bench::{load_datasets, print_table, BenchConfig};
use tigr_core::{k_select, udt_transform, DumbWeight, VirtualGraph};

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Table 7 at 1/{} scale (times are host milliseconds; medians of {} runs)",
        cfg.scale_denominator, 3
    );
    let datasets = load_datasets(&cfg);

    let mut rows = Vec::new();
    for d in &datasets {
        let k_udt = k_select::physical_k(&d.graph);
        let phys_ms = median_ms(|| {
            let t = udt_transform(&d.graph, k_udt, DumbWeight::Zero);
            std::hint::black_box(t.graph().num_edges());
        });
        let virt_ms = median_ms(|| {
            let vg = VirtualGraph::coalesced(&d.graph, k_select::VIRTUAL_K);
            std::hint::black_box(vg.num_virtual_nodes());
        });
        rows.push(vec![
            d.spec.name.to_string(),
            d.graph.num_edges().to_string(),
            format!("{phys_ms:.1}"),
            format!("{virt_ms:.1}"),
            format!("{:.1}x", phys_ms / virt_ms.max(1e-6)),
        ]);
    }
    print_table(
        "Table 7: transformation time cost (ms)",
        &["dataset", "#edges", "physical", "virtual", "phys/virt"],
        &rows,
    );
}

fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[1]
}
