//! Regenerates Table 4: execution-time comparison of MW, CuSha,
//! Gunrock, and Tigr-V+ across six analytics and six graphs.
//!
//! Expected shape (paper): Tigr-V+ wins most BFS/SSSP/SSWP/BC/CC cells
//! (1.04×–10.4× over the best competitor); CuSha wins PR (pull/scan
//! parallelism); CuSha and Gunrock hit OOM on the largest graphs while
//! MW and Tigr-V+ never do.
//!
//! Environment knobs: `TIGR_SCALE` (analog scale), `TIGR_DATASETS` /
//! `TIGR_ALGS` (comma-separated subsets), `TIGR_FAST=1` (single MW
//! width instead of the best-of-5 sweep).

use tigr_baselines::Baseline;
use tigr_bench::{cycles_to_ms, load_datasets, print_table, BenchConfig, Cell, DatasetInstance};
use tigr_core::{k_select, VirtualGraph};
use tigr_engine::{pr, Engine, EngineError, MonotoneProgram, PrMode, PrOptions, Representation};
use tigr_graph::Csr;
use tigr_sim::GpuSimulator;

fn main() {
    let cfg = BenchConfig::from_env();
    let budget = cfg.device_budget();
    println!(
        "Table 4 at 1/{} scale; device budget {} MiB (8 GiB scaled)",
        cfg.scale_denominator,
        budget >> 20
    );

    let dataset_filter = env_set("TIGR_DATASETS");
    let alg_filter = env_set("TIGR_ALGS");
    let fast = std::env::var("TIGR_FAST").is_ok();

    let datasets: Vec<DatasetInstance> = load_datasets(&cfg)
        .into_iter()
        .filter(|d| {
            dataset_filter
                .as_ref()
                .is_none_or(|f| f.contains(d.spec.name))
        })
        .collect();

    let sim = cfg.simulator();
    let mw = Baseline::MaximumWarp {
        width: if fast { Some(8) } else { None },
    };
    let gunrock = Baseline::Gunrock;

    let algs = ["bfs", "sssp", "pr", "cc", "sswp", "bc"];
    let mut rows = Vec::new();

    for alg in algs {
        if let Some(f) = &alg_filter {
            if !f.contains(alg) {
                continue;
            }
        }
        for d in &datasets {
            eprintln!("  running {} / {} ...", alg, d.spec.name);
            let g: &Csr = if alg == "sssp" || alg == "sswp" {
                &d.weighted
            } else {
                &d.graph
            };
            let src = d.source();

            let prog = match alg {
                "bfs" => Some(MonotoneProgram::BFS),
                "sssp" => Some(MonotoneProgram::SSSP),
                "cc" => Some(MonotoneProgram::CC),
                "sswp" => Some(MonotoneProgram::SSWP),
                _ => None,
            };
            let source = prog.and_then(|p| p.needs_source().then_some(src));

            let run_baseline = |b: Baseline| -> Cell {
                match (prog, alg) {
                    (Some(p), _) => b
                        .run_monotone(&sim, g, p, source, Some(budget))
                        .map(|r| Cell::Ms(cycles_to_ms(r.report.total_cycles())))
                        .unwrap_or(Cell::Oom),
                    (None, "pr") => b
                        .run_pagerank(&sim, g, &pr_options(), Some(budget))
                        .map(|r| Cell::Ms(cycles_to_ms(r.report.total_cycles())))
                        .unwrap_or(Cell::Oom),
                    (None, "bc") => gunrock_bc(&sim, g, src, budget),
                    _ => Cell::Missing,
                }
            };

            let mut cells: Vec<Cell> = Vec::new();
            // MW: best virtual-warp width (or fixed in fast mode).
            cells.push(if alg == "bc" {
                Cell::Missing
            } else {
                run_baseline(mw)
            });
            // CuSha: the better of G-Shards and Concatenated Windows,
            // as the paper reports.
            cells.push(if alg == "bc" {
                Cell::Missing
            } else {
                let gs = run_baseline(Baseline::CuSha {
                    mode: tigr_baselines::CushaMode::GShards,
                });
                let cw = run_baseline(Baseline::CuSha {
                    mode: tigr_baselines::CushaMode::ConcatenatedWindows,
                });
                match (gs.as_ms(), cw.as_ms()) {
                    (Some(a), Some(b)) => Cell::Ms(a.min(b)),
                    (Some(a), None) => Cell::Ms(a),
                    (None, Some(b)) => Cell::Ms(b),
                    (None, None) => gs,
                }
            });
            // Gunrock lacks SSWP (as in the paper's Table 4).
            cells.push(if alg == "sswp" {
                Cell::Missing
            } else {
                run_baseline(gunrock)
            });

            // --- Tigr-V+ ---
            cells.push(tigr_vplus(&sim, g, alg, prog, source, src, budget));

            let mut row = vec![alg.to_uppercase(), d.spec.name.to_string()];
            row.extend(cells.iter().map(Cell::render));
            // Bold-equivalent: mark the winner with '*'.
            let best = cells
                .iter()
                .filter_map(Cell::as_ms)
                .fold(f64::INFINITY, f64::min);
            for (i, c) in cells.iter().enumerate() {
                if c.as_ms() == Some(best) {
                    row[i + 2] = format!("{}*", row[i + 2]);
                }
            }
            rows.push(row);
        }
    }

    print_table(
        "Table 4: performance comparison (simulated ms; * = best; OOM as in paper)",
        &["alg", "dataset", "MW", "CuSha", "Gunrock", "Tigr-V+"],
        &rows,
    );
}

fn pr_options() -> PrOptions {
    PrOptions {
        damping: 0.85,
        tolerance: 1e-4,
        max_iterations: 20,
        mode: PrMode::Push,
    }
}

/// Gunrock's BC: the frontier-level-synchronous Brandes of the engine on
/// the original representation (Gunrock's forward/backward operators map
/// onto exactly this structure).
fn gunrock_bc(sim: &GpuSimulator, g: &Csr, src: tigr_graph::NodeId, budget: u64) -> Cell {
    let rep = Representation::Original(g);
    if rep.device_footprint_bytes() + 2 * g.num_edges() as u64 * 4 > budget {
        return Cell::Oom;
    }
    let out = tigr_engine::bc::run(sim, &rep, src);
    Cell::Ms(cycles_to_ms(out.report.total_cycles()))
}

/// Tigr-V+: coalesced virtual overlay at K = 10 with worklist.
fn tigr_vplus(
    sim: &GpuSimulator,
    g: &Csr,
    alg: &str,
    prog: Option<MonotoneProgram>,
    source: Option<tigr_graph::NodeId>,
    bc_source: tigr_graph::NodeId,
    budget: u64,
) -> Cell {
    let overlay = VirtualGraph::coalesced(g, k_select::VIRTUAL_K);
    let rep = Representation::Virtual {
        graph: g,
        overlay: &overlay,
    };
    let engine = Engine::parallel(*sim.config()).with_device_memory(budget);

    let to_cell = |cycles: u64| Cell::Ms(cycles_to_ms(cycles));
    let result = match (prog, alg) {
        (Some(p), _) => engine
            .run(&rep, p, source)
            .map(|o| to_cell(o.report.total_cycles())),
        (None, "pr") => engine
            .pagerank(&rep, &pr::out_degrees(g), &pr_options())
            .map(|o| to_cell(o.report.total_cycles())),
        (None, "bc") => engine
            .betweenness(&rep, bc_source)
            .map(|o| to_cell(o.report.total_cycles())),
        _ => return Cell::Missing,
    };
    match result {
        Ok(c) => c,
        Err(EngineError::OutOfMemory(_)) => Cell::Oom,
        Err(_) => Cell::Missing,
    }
}

fn env_set(var: &str) -> Option<std::collections::HashSet<String>> {
    std::env::var(var)
        .ok()
        .map(|s| s.split(',').map(|t| t.trim().to_lowercase()).collect())
}
