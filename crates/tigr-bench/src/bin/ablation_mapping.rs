//! Ablation of the two virtualization designs of §4.1: the stored
//! *virtual node array* versus *dynamic (on-the-fly) mapping reasoning*.
//!
//! The paper describes the tradeoff qualitatively — "this design trades
//! off computation cost for better memory efficiency". This binary
//! quantifies it: cycles and instructions for SSSP with each design,
//! alongside the mapping-state memory each needs.

use tigr_bench::{cycles_to_ms, load_datasets, print_table, BenchConfig};
use tigr_core::{k_select, OnTheFlyMapper, VirtualGraph};
use tigr_engine::{Engine, FrontierMode, PushOptions, Representation, SyncMode};
use tigr_sim::GpuConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Virtualization-design ablation at 1/{} scale (SSSP, full sweeps)",
        cfg.scale_denominator
    );
    let datasets = load_datasets(&cfg);
    // Both designs process all nodes per iteration here: on-the-fly
    // mapping has no per-node identity to worklist on.
    let engine = Engine::parallel(GpuConfig::default()).with_options(PushOptions {
        worklist: false,
        sort_frontier_by_degree: false,
        sync: SyncMode::Relaxed,
        max_iterations: 100_000,
        frontier: FrontierMode::Auto,
    });
    let k = k_select::VIRTUAL_K;

    let mut rows = Vec::new();
    for d in &datasets {
        let g = &d.weighted;
        let src = d.source();

        let overlay = VirtualGraph::new(g, k);
        let vna = engine
            .sssp(
                &Representation::Virtual {
                    graph: g,
                    overlay: &overlay,
                },
                src,
            )
            .unwrap();

        let mapper = OnTheFlyMapper::new(g, k);
        let otf = engine
            .sssp(&Representation::OnTheFly { graph: g, mapper }, src)
            .unwrap();
        assert_eq!(vna.values, otf.values, "designs must agree on results");

        rows.push(vec![
            d.spec.name.to_string(),
            format!("{:.2}", cycles_to_ms(vna.report.total_cycles())),
            format!("{}", overlay.size_bytes() / 1024),
            format!("{:.2}", cycles_to_ms(otf.report.total_cycles())),
            "0".to_string(),
            format!(
                "{:.2}x",
                otf.report.total_cycles() as f64 / vna.report.total_cycles() as f64
            ),
        ]);
    }

    print_table(
        "virtual node array vs on-the-fly mapping (SSSP)",
        &[
            "dataset", "VNA ms", "VNA KiB", "OTF ms", "OTF KiB", "OTF/VNA",
        ],
        &rows,
    );
    println!(
        "\nthe stored array wins time; dynamic reasoning wins memory —\n\
         the §4.1 compute-for-memory tradeoff, quantified."
    );
}
