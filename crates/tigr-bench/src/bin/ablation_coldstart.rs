//! Cold-start ablation of the zero-copy storage layer: how fast a
//! prepared artifact opens by owned decode versus memory map, across
//! graph scales.
//!
//! For each R-MAT scale the harness builds a full artifact once (CSR +
//! uniform weights + coalesced virtual overlay + transpose + mirrored
//! reverse overlay), then repeatedly re-opens it three ways through
//! [`GraphStore::prepare`] cache hits:
//!
//! * **decoded** — `--mmap off`: the whole container is read, every
//!   payload hashed, and every section copied into owned heap arrays;
//! * **mapped eager** — `--mmap auto --verify eager`: the artifact is
//!   `mmap`ed, payload checksums are verified in place, and the CSR and
//!   overlay tables borrow the mapping without copying;
//! * **mapped lazy** — `--mmap auto --verify lazy`: only the header and
//!   section table are validated; the open is O(table), independent of
//!   graph size.
//!
//! Correctness is not taken on faith: at every scale, BFS / SSSP / SSWP
//! / CC are run over the decoded, eager-mapped, and lazy-mapped views
//! on all three backends (WarpSim, CpuPool, Sequential), and every run
//! must produce the same FNV-1a64 value checksum — mapped storage may
//! change where bytes live, never answers.
//!
//! Acceptance bar asserted in-process: at the largest benched scale the
//! median lazy-mapped open must be at least **5x** faster than the
//! median decoded open (1x under `--smoke`, whose artifacts are too
//! small for the ratio to be meaningful).
//!
//! Output goes to stdout (aligned table) and to a machine-readable JSON
//! file: `BENCH_coldstart.json` at the workspace root by default,
//! `target/BENCH_coldstart.smoke.json` under `--smoke`; `--out <path>`
//! overrides the destination. Peak RSS (`VmHWM`) and resident set
//! (`VmRSS`) are sampled from `/proc/self/status` where available
//! (best-effort; 0 elsewhere).

use std::path::PathBuf;
use std::time::Instant;

use tigr_bench::print_table;
use tigr_core::{GraphStore, MmapMode, OpenMode, PrepareSpec, PreparedGraph};
use tigr_engine::{BackendKind, Engine, MonotoneProgram};
use tigr_graph::io::VerifyMode;
use tigr_graph::NodeId;
use tigr_sim::GpuConfig;

const SEED: u64 = 2018;

/// FNV-1a over the little-endian bytes of `values` (the serving
/// protocol's wire checksum, recomputed here so the bench stands alone).
fn checksum(values: &[u32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// `(VmRSS, VmHWM)` in kilobytes from `/proc/self/status`; `(0, 0)`
/// where the file or the fields are unavailable.
fn rss_kb() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("VmRSS:"), field("VmHWM:"))
}

fn median_us(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One way of opening the artifact, measured over repeated cache hits.
struct OpenSeries {
    label: &'static str,
    mode: String,
    median_us: u64,
    open_us: Vec<u64>,
    mapped_bytes: usize,
    heap_bytes: usize,
    rss_kb: u64,
}

/// Everything measured at one graph scale.
struct ScaleResult {
    scale: u32,
    nodes: usize,
    edges: usize,
    artifact_bytes: u64,
    build_us: u64,
    decoded: OpenSeries,
    eager: OpenSeries,
    lazy: OpenSeries,
    peak_rss_kb: u64,
}

impl ScaleResult {
    fn speedup(&self, series: &OpenSeries) -> f64 {
        self.decoded.median_us as f64 / series.median_us.max(1) as f64
    }

    fn row(&self) -> Vec<String> {
        vec![
            self.scale.to_string(),
            self.nodes.to_string(),
            self.edges.to_string(),
            format!("{:.1}", self.artifact_bytes as f64 / (1024.0 * 1024.0)),
            self.decoded.median_us.to_string(),
            self.eager.median_us.to_string(),
            self.lazy.median_us.to_string(),
            format!("{:.1}", self.speedup(&self.eager)),
            format!("{:.1}", self.speedup(&self.lazy)),
            format!("{:.1}", self.lazy.mapped_bytes as f64 / (1024.0 * 1024.0)),
        ]
    }

    fn json(&self) -> String {
        let series = |s: &OpenSeries| {
            format!(
                "{{\"mode\": \"{}\", \"median_us\": {}, \"opens_us\": {:?}, \
                 \"mapped_bytes\": {}, \"heap_bytes\": {}, \"rss_kb\": {}}}",
                s.mode, s.median_us, s.open_us, s.mapped_bytes, s.heap_bytes, s.rss_kb
            )
        };
        format!(
            "{{\"scale\": {}, \"nodes\": {}, \"edges\": {}, \"artifact_bytes\": {}, \
             \"build_us\": {}, \"decoded\": {}, \"mapped_eager\": {}, \"mapped_lazy\": {}, \
             \"eager_speedup\": {:.2}, \"lazy_speedup\": {:.2}, \"peak_rss_kb\": {}}}",
            self.scale,
            self.nodes,
            self.edges,
            self.artifact_bytes,
            self.build_us,
            series(&self.decoded),
            series(&self.eager),
            series(&self.lazy),
            self.speedup(&self.eager),
            self.speedup(&self.lazy),
            self.peak_rss_kb,
        )
    }
}

/// The spec benched at `scale`: every optional view, so the artifact
/// carries CSR, transpose, and both overlay tables.
fn spec_at(scale: u32, cache_dir: PathBuf) -> (GraphStore, PrepareSpec) {
    let spec = PrepareSpec::generated(format!("rmat:{scale}:16"), SEED)
        .with_uniform_weights(1, 64, SEED)
        .with_virtual(8, true)
        .with_transpose(true);
    (GraphStore::new(Some(cache_dir)), spec)
}

/// Re-opens the already-warmed artifact `reps` times with the given
/// policy, returning the measured series and the last opened graph.
fn open_series(
    store: &GraphStore,
    spec: &PrepareSpec,
    label: &'static str,
    reps: usize,
) -> (OpenSeries, PreparedGraph) {
    let mut opens = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let p = store
            .prepare(spec)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        let wall_us = t.elapsed().as_micros() as u64;
        assert_eq!(
            p.report().cache,
            tigr_core::CacheStatus::Hit,
            "{label}: open must be a cache hit"
        );
        opens.push(wall_us);
        last = Some(p);
    }
    let p = last.expect("at least one rep");
    let (_, hwm) = rss_kb();
    let series = OpenSeries {
        label,
        mode: p.open_info().mode.label().to_string(),
        median_us: median_us(&mut opens.clone()),
        open_us: opens,
        mapped_bytes: p.open_info().mapped_bytes,
        heap_bytes: p.open_info().heap_bytes,
        rss_kb: hwm,
    };
    (series, p)
}

/// Runs every analytic on every backend over `prepared` and checks each
/// value checksum against `reference` (filling it on the first pass).
fn check_answers(
    prepared: &PreparedGraph,
    label: &str,
    reference: &mut Vec<((&'static str, &'static str), u64)>,
) {
    let programs = [
        ("bfs", MonotoneProgram::BFS),
        ("sssp", MonotoneProgram::SSSP),
        ("sswp", MonotoneProgram::SSWP),
        ("cc", MonotoneProgram::CC),
    ];
    let backends = [
        ("warpsim", BackendKind::WarpSim),
        ("cpupool", BackendKind::CpuPool),
        ("sequential", BackendKind::Sequential),
    ];
    let mut fresh = reference.is_empty();
    for (prog_label, prog) in programs {
        let source = (prog_label != "cc").then(|| NodeId::new(0));
        for (backend_label, backend) in backends {
            let engine = Engine::parallel(GpuConfig::default()).with_backend(backend);
            let out = engine
                .run_prepared(prepared, prog, source)
                .unwrap_or_else(|e| panic!("{label}/{prog_label}/{backend_label}: {e}"));
            let sum = checksum(&out.values);
            let key = (prog_label, backend_label);
            if fresh {
                reference.push((key, sum));
            } else {
                let (_, expect) = reference
                    .iter()
                    .find(|(k, _)| *k == key)
                    .expect("reference filled on first pass");
                assert_eq!(
                    sum, *expect,
                    "{label}: {prog_label} on {backend_label} diverged"
                );
            }
        }
    }
    fresh = false;
    let _ = fresh;
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    // Smoke: tiny scales, few reps — a CI-speed compile-and-run gate.
    // Full: up to 65k nodes / ~1M edges, where the decode cost the map
    // avoids is unambiguous.
    let (scales, reps): (&[u32], usize) = if smoke {
        (&[8, 10], 3)
    } else {
        (&[12, 14, 16], 7)
    };
    let gate = if smoke { 1.0 } else { 5.0 };
    let out_path = flag("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_coldstart.smoke.json".to_string()
        } else {
            "BENCH_coldstart.json".to_string()
        }
    });

    let mut results: Vec<ScaleResult> = Vec::new();
    for &scale in scales {
        let dir =
            std::env::temp_dir().join(format!("tigr_coldstart_s{scale}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (base_store, spec) = spec_at(scale, dir.clone());

        // Build the artifact once (the cold miss every open then hits).
        let t = Instant::now();
        let built = base_store.prepare(&spec).expect("build artifact");
        let build_us = t.elapsed().as_micros() as u64;
        let (nodes, edges) = (built.graph().num_nodes(), built.graph().num_edges());
        let artifact_bytes = std::fs::metadata(built.report().artifact.as_ref().unwrap())
            .expect("artifact written")
            .len();
        eprintln!(
            "scale {scale}: {nodes} nodes, {edges} edges, artifact {:.1} MiB, built in {:.1?}",
            artifact_bytes as f64 / (1024.0 * 1024.0),
            t.elapsed()
        );
        drop(built);

        let (decoded, decoded_p) = open_series(
            &base_store.clone().with_mmap(MmapMode::Off),
            &spec,
            "decoded",
            reps,
        );
        let (eager, eager_p) = open_series(
            &base_store.clone().with_verify(VerifyMode::Eager),
            &spec,
            "mapped-eager",
            reps,
        );
        let (lazy, lazy_p) = open_series(
            &base_store.clone().with_verify(VerifyMode::Lazy),
            &spec,
            "mapped-lazy",
            reps,
        );
        assert_eq!(decoded_p.open_info().mode, OpenMode::Decoded);
        if cfg!(all(
            unix,
            target_pointer_width = "64",
            target_endian = "little"
        )) {
            assert_eq!(eager_p.open_info().mode, OpenMode::Mapped);
            assert_eq!(lazy_p.open_info().mode, OpenMode::Mapped);
            assert_eq!(decoded_p.open_info().mapped_bytes, 0);
            assert!(lazy_p.open_info().mapped_bytes > 0);
        }

        // Value-checksum equivalence: mapped and decoded views must be
        // indistinguishable to every analytic on every backend.
        let mut reference = Vec::new();
        for (label, p) in [
            ("decoded", &decoded_p),
            ("mapped-eager", &eager_p),
            ("mapped-lazy", &lazy_p),
        ] {
            check_answers(p, label, &mut reference);
        }
        eprintln!(
            "scale {scale}: {} (algo x backend x open-mode) runs agree on value checksums",
            reference.len() * 3
        );

        let (_, peak_rss_kb) = rss_kb();
        results.push(ScaleResult {
            scale,
            nodes,
            edges,
            artifact_bytes,
            build_us,
            decoded,
            eager,
            lazy,
            peak_rss_kb,
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    print_table(
        "cold-start: artifact open time by policy (median us)",
        &[
            "scale",
            "nodes",
            "edges",
            "MiB",
            "decoded",
            "eager",
            "lazy",
            "eager x",
            "lazy x",
            "mapped MiB",
        ],
        &results.iter().map(ScaleResult::row).collect::<Vec<_>>(),
    );

    // --- Map-is-faster gate ------------------------------------------
    let largest = results.last().expect("at least one scale");
    let lazy_speedup = largest.speedup(&largest.lazy);
    let eager_speedup = largest.speedup(&largest.eager);
    println!(
        "\ncold-start gate at scale {}: decoded {} us vs lazy-mapped {} us = {lazy_speedup:.1}x \
         (eager-mapped {} us = {eager_speedup:.1}x; committed gate {gate:.1}x{})",
        largest.scale,
        largest.decoded.median_us,
        largest.lazy.median_us,
        largest.eager.median_us,
        if smoke { ", smoke" } else { "" },
    );
    assert!(
        lazy_speedup >= gate,
        "lazy-mapped open at scale {} is only {lazy_speedup:.2}x faster than decoded \
         (gate {gate:.1}x)",
        largest.scale
    );

    let json = format!(
        "{{\n  \"bench\": \"coldstart\",\n  \"smoke\": {smoke},\n  \"reps\": {reps},\n  \
         \"gate\": {{\"at_scale\": {}, \"lazy_speedup\": {lazy_speedup:.2}, \
         \"eager_speedup\": {eager_speedup:.2}, \"required\": {gate:.1}}},\n  \
         \"scales\": [\n    {}\n  ]\n}}\n",
        largest.scale,
        results
            .iter()
            .map(ScaleResult::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write JSON output");
    println!("\nwrote {out_path}");
    // The label field keeps panic messages self-describing; read it so
    // the struct field is exercised even on the happy path.
    for r in &results {
        debug_assert_eq!(r.decoded.label, "decoded");
    }
}
