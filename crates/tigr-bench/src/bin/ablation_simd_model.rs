//! Ablation of the execution model itself: SIMD lockstep vs an
//! idealized MIMD machine.
//!
//! The paper's premise (§2.2–2.3) is that power-law irregularity hurts
//! *because* GPU threads run in lockstep warps. This binary checks the
//! premise inside our own substrate: under the `IdealMimd` timing model
//! (no lockstep, no idle lanes, no coalescing), the baseline's penalty —
//! and hence Tigr's speedup — should largely vanish.

use tigr_bench::{load_datasets_one, print_table, BenchConfig};
use tigr_core::VirtualGraph;
use tigr_engine::{Engine, PushOptions, Representation};
use tigr_sim::{GpuConfig, TimingModel};

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Execution-model ablation at 1/{} scale (SSSP, LiveJournal analog)",
        cfg.scale_denominator
    );
    let d = load_datasets_one(&cfg, "livejournal");
    let g = &d.weighted;
    let src = d.source();
    let overlay = VirtualGraph::coalesced(g, 10);

    let mut rows = Vec::new();
    for (label, timing) in [
        ("SIMD lockstep", TimingModel::SimdLockstep),
        ("ideal MIMD", TimingModel::IdealMimd),
    ] {
        let engine = Engine::parallel(GpuConfig {
            timing,
            ..GpuConfig::default()
        })
        .with_options(PushOptions::default());
        let base = engine.sssp(&Representation::Original(g), src).unwrap();
        let tigr = engine
            .sssp(
                &Representation::Virtual {
                    graph: g,
                    overlay: &overlay,
                },
                src,
            )
            .unwrap();
        assert_eq!(base.values, tigr.values);
        rows.push(vec![
            label.to_string(),
            format!("{}", base.report.total_cycles()),
            format!("{}", tigr.report.total_cycles()),
            format!(
                "{:.2}x",
                base.report.total_cycles() as f64 / tigr.report.total_cycles() as f64
            ),
            format!("{:.1}%", 100.0 * base.report.warp_efficiency()),
        ]);
    }

    print_table(
        "SSSP: Tigr-V+ speedup under each execution model",
        &[
            "model",
            "baseline cycles",
            "Tigr-V+ cycles",
            "speedup",
            "base effi.",
        ],
        &rows,
    );
    println!(
        "\nunder lockstep the transformation pays off; under ideal MIMD the\n\
         irregularity penalty (mostly) disappears — confirming the paper's §2\n\
         diagnosis that the problem is SIMD-architectural, not algorithmic."
    );
}
