//! Ablation of CPU work-distribution policies: node-chunk (legacy
//! spawn-per-iteration, no stealing) versus edge-balanced and virtual
//! scheduling on the persistent work-stealing pool.
//!
//! Runs SSSP and CC (frontier worklist) and PageRank (full sweeps) on a
//! power-law RMAT analog and reports, per policy: best-of-N wall clock,
//! edge throughput, steal counts, and the max/mean edge-load imbalance
//! across workers. Every policy must produce values identical to the
//! node-chunk reference (bit-exact for the monotone analytics, within
//! float rounding for PageRank) — asserted, not just printed.
//!
//! Output goes both to stdout (aligned table) and to a machine-readable
//! JSON file so the perf trajectory across PRs has data:
//! `BENCH_cpu_schedule.json` at the workspace root by default,
//! `target/BENCH_cpu_schedule.smoke.json` under `--smoke` (the quick CI
//! configuration: tiny graph, one repeat). `--out <path>` overrides the
//! destination, `--threads <n>` the worker count (default
//! `max(4, host parallelism)`, matching the ≥4-thread target the
//! speedup claim is stated for).

use std::fmt::Write as _;
use std::time::Instant;

use tigr_bench::{max_degree_source, prepare_input, print_table};
use tigr_engine::{
    run_cpu_pr, run_cpu_with, CpuOptions, CpuSchedule, MonotoneProgram, PrMode, PrOptions,
    ScheduleStats,
};

/// One measured (analytic, schedule) cell.
struct Sample {
    analytic: &'static str,
    schedule: CpuSchedule,
    wall_ms: f64,
    edges_touched: u64,
    iterations: usize,
    sched: ScheduleStats,
}

impl Sample {
    fn edges_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.edges_touched as f64 / (self.wall_ms / 1e3)
    }

    fn json(&self) -> String {
        format!(
            "{{\"analytic\": \"{}\", \"schedule\": \"{}\", \"wall_ms\": {:.3}, \
             \"edges_touched\": {}, \"edges_per_sec\": {:.0}, \"iterations\": {}, \
             \"steals\": {}, \"worker_edges_min\": {}, \"worker_edges_max\": {}, \
             \"imbalance_ratio\": {:.4}}}",
            self.analytic,
            self.schedule.label(),
            self.wall_ms,
            self.edges_touched,
            self.edges_per_sec(),
            self.iterations,
            self.sched.steals,
            self.sched.worker_edges_min(),
            self.sched.worker_edges_max(),
            self.sched.imbalance_ratio(),
        )
    }

    fn row(&self) -> Vec<String> {
        vec![
            self.schedule.label().to_string(),
            self.iterations.to_string(),
            self.edges_touched.to_string(),
            format!("{:.2}", self.wall_ms),
            format!("{:.1}", self.edges_per_sec() / 1e6),
            self.sched.steals.to_string(),
            format!("{:.2}", self.sched.imbalance_ratio()),
        ]
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    // Smoke: a few thousand nodes, single repeat — a CI-speed regression
    // gate. Full: a ≥100k-node power-law graph, best-of-3 timing.
    // Best-of-5: relaxed intra-iteration visibility makes the BSP
    // iteration count interleaving-dependent, so single runs mix
    // scheduling cost with convergence luck; the minimum isolates the
    // former.
    let (scale, repeats, pr_iters) = if smoke {
        (11u32, 1usize, 5)
    } else {
        (17, 5, 20)
    };
    let threads = flag("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| tigr_engine::default_threads().max(4));
    let out_path = flag("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_cpu_schedule.smoke.json".to_string()
        } else {
            "BENCH_cpu_schedule.json".to_string()
        }
    });

    let seed = 2018;
    let t = Instant::now();
    // Resolved through the shared GraphStore artifact layer; set
    // TIGR_CACHE_DIR to skip regeneration on repeat runs.
    let g = prepare_input(&format!("rmat:{scale}:16"), seed, Some((1, 64, seed))).into_graph();
    let src = max_degree_source(&g);
    eprintln!(
        "rmat scale {scale}: {} nodes, {} edges, max degree {}, source {src}, prepared in {:.1?}",
        g.num_nodes(),
        g.num_edges(),
        g.max_out_degree(),
        t.elapsed()
    );
    println!(
        "CPU-schedule ablation: {} nodes, {} edges, {} threads, best of {} run(s)",
        g.num_nodes(),
        g.num_edges(),
        threads,
        repeats
    );

    let opts = |schedule: CpuSchedule, frontier: bool| CpuOptions {
        threads,
        frontier,
        schedule,
        ..CpuOptions::default()
    };

    let mut samples: Vec<Sample> = Vec::new();

    // Frontier-worklist analytics: values must be bit-identical.
    for (analytic, prog, source) in [
        ("sssp", MonotoneProgram::SSSP, Some(src)),
        ("cc", MonotoneProgram::CC, None),
    ] {
        let mut reference: Option<Vec<u32>> = None;
        for schedule in CpuSchedule::ALL {
            let mut best: Option<Sample> = None;
            for _ in 0..repeats {
                let run = run_cpu_with(&g, prog, source, &opts(schedule, true));
                match &reference {
                    None => reference = Some(run.values.clone()),
                    Some(expect) => assert_eq!(
                        &run.values,
                        expect,
                        "{analytic}/{}: diverged from node-chunk reference",
                        schedule.label()
                    ),
                }
                let wall_ms = run.elapsed.as_secs_f64() * 1e3;
                if best.as_ref().is_none_or(|b| wall_ms < b.wall_ms) {
                    best = Some(Sample {
                        analytic,
                        schedule,
                        wall_ms,
                        edges_touched: run.edges_touched,
                        iterations: run.iterations,
                        sched: run.sched,
                    });
                }
            }
            samples.push(best.expect("at least one repeat"));
        }
    }

    // PageRank full sweeps: fixed iteration count so every policy does
    // identical work; ranks agree to float rounding.
    let pr_opts = PrOptions {
        damping: 0.85,
        tolerance: 0.0,
        max_iterations: pr_iters,
        mode: PrMode::Push,
    };
    let mut pr_reference: Option<Vec<f32>> = None;
    for schedule in CpuSchedule::ALL {
        let mut best: Option<Sample> = None;
        for _ in 0..repeats {
            let run = run_cpu_pr(&g, &pr_opts, &opts(schedule, false));
            assert_eq!(run.iterations, pr_iters);
            match &pr_reference {
                None => pr_reference = Some(run.ranks.clone()),
                Some(expect) => {
                    for (i, (&got, &want)) in run.ranks.iter().zip(expect).enumerate() {
                        assert!(
                            (got - want).abs() < 1e-4,
                            "pr/{}: rank[{i}] {got} vs {want}",
                            schedule.label()
                        );
                    }
                }
            }
            let wall_ms = run.elapsed.as_secs_f64() * 1e3;
            if best.as_ref().is_none_or(|b| wall_ms < b.wall_ms) {
                best = Some(Sample {
                    analytic: "pr",
                    schedule,
                    wall_ms,
                    edges_touched: run.edges_touched,
                    iterations: run.iterations,
                    sched: run.sched,
                });
            }
        }
        samples.push(best.expect("at least one repeat"));
    }

    for analytic in ["sssp", "cc", "pr"] {
        let rows: Vec<Vec<String>> = samples
            .iter()
            .filter(|s| s.analytic == analytic)
            .map(Sample::row)
            .collect();
        print_table(
            &format!("{analytic}: scheduling policies"),
            &[
                "schedule",
                "iters",
                "edges",
                "wall ms",
                "Medges/s",
                "steals",
                "imbalance",
            ],
            &rows,
        );
    }

    // Speedups of the pool policies over the spawn-per-iteration
    // node-chunk baseline.
    let baseline = |analytic: &str| {
        samples
            .iter()
            .find(|s| s.analytic == analytic && s.schedule == CpuSchedule::NodeChunk)
            .expect("baseline sample")
            .wall_ms
    };
    let mut speedup_json = String::new();
    println!("\nspeedup over node-chunk (wall clock):");
    for analytic in ["sssp", "cc", "pr"] {
        let base = baseline(analytic);
        let mut parts = Vec::new();
        for s in samples
            .iter()
            .filter(|s| s.analytic == analytic && s.schedule != CpuSchedule::NodeChunk)
        {
            let speedup = base / s.wall_ms;
            println!("  {analytic:<5} {:<14} {speedup:.2}x", s.schedule.label());
            parts.push(format!("\"{}\": {:.4}", s.schedule.label(), speedup));
        }
        let _ = write!(
            speedup_json,
            "{}\"{analytic}\": {{{}}}",
            if speedup_json.is_empty() { "" } else { ", " },
            parts.join(", ")
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"cpu_schedule\",\n  \"smoke\": {smoke},\n  \"graph\": \
         {{\"generator\": \"rmat\", \"scale\": {scale}, \"nodes\": {}, \"edges\": {}, \
         \"max_out_degree\": {}}},\n  \"threads\": {threads},\n  \"repeats\": {repeats},\n  \
         \"results\": [\n    {}\n  ],\n  \"speedup_over_node_chunk\": {{{speedup_json}}}\n}}\n",
        g.num_nodes(),
        g.num_edges(),
        g.max_out_degree(),
        samples
            .iter()
            .map(Sample::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write JSON output");
    println!("\nwrote {out_path}");
}
