//! Regenerates Table 5: space cost of the physical (UDT) transformation
//! as a percentage of the original CSR size, for K ∈ {100, 1000, 10000}.

use tigr_bench::{load_datasets, print_table, BenchConfig};
use tigr_core::{udt_transform, DumbWeight};

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Table 5 at 1/{} scale (paper: <=101.4% at K=100, ->100% as K grows)",
        cfg.scale_denominator
    );
    let datasets = load_datasets(&cfg);
    let ks = [100u32, 1000, 10000];

    let mut rows = Vec::new();
    for d in &datasets {
        let mut row = vec![d.spec.name.to_string()];
        for &k in &ks {
            // Compare weighted-to-weighted, as the paper does: the dumb
            // weights live in the weight array the SSSP input already has.
            let t = udt_transform(&d.weighted, k, DumbWeight::Zero);
            row.push(format!("{:.2}%", 100.0 * t.space_cost_ratio(&d.weighted)));
        }
        rows.push(row);
    }
    print_table(
        "Table 5: space cost of physical transformation (UDT)",
        &["dataset", "K=100", "K=1000", "K=10000"],
        &rows,
    );
}
