//! The comparison the paper defers to its project website (§6.1):
//! Tigr-V+ against *hardwired* single-algorithm implementations —
//! Δ-stepping SSSP (Davidson et al.) and hooking/shortcutting CC
//! (ECL-CC). Gunrock beat the hardwired codes except CC; this binary
//! shows where Tigr lands.

use tigr_baselines::{delta_stepping_sssp, hooking_cc};
use tigr_bench::{cycles_to_ms, load_datasets, print_table, BenchConfig};
use tigr_core::{k_select, VirtualGraph};
use tigr_engine::{Engine, MonotoneProgram, Representation};
use tigr_sim::GpuConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Hardwired implementations vs Tigr-V+ at 1/{} scale",
        cfg.scale_denominator
    );
    let datasets = load_datasets(&cfg);
    let sim = cfg.simulator();
    let engine = Engine::parallel(GpuConfig::default());

    let mut rows = Vec::new();
    for d in &datasets {
        let src = d.source();
        let overlay_w = VirtualGraph::coalesced(&d.weighted, k_select::VIRTUAL_K);
        let overlay = VirtualGraph::coalesced(&d.graph, k_select::VIRTUAL_K);

        let delta = delta_stepping_sssp(&sim, &d.weighted, src, 0);
        let tigr_sssp = engine
            .sssp(
                &Representation::Virtual {
                    graph: &d.weighted,
                    overlay: &overlay_w,
                },
                src,
            )
            .unwrap();
        assert_eq!(delta.values, tigr_sssp.values);

        let hook = hooking_cc(&sim, &d.graph);
        let tigr_cc = engine
            .run(
                &Representation::Virtual {
                    graph: &d.graph,
                    overlay: &overlay,
                },
                MonotoneProgram::CC,
                None,
            )
            .unwrap();

        rows.push(vec![
            d.spec.name.to_string(),
            format!("{:.2}", cycles_to_ms(delta.report.total_cycles())),
            format!("{:.2}", cycles_to_ms(tigr_sssp.report.total_cycles())),
            format!("{:.2}", cycles_to_ms(hook.report.total_cycles())),
            format!("{:.2}", cycles_to_ms(tigr_cc.report.total_cycles())),
        ]);
    }

    print_table(
        "hardwired vs Tigr-V+ (simulated ms)",
        &["dataset", "Δ-step SSSP", "Tigr SSSP", "hook CC", "Tigr CC"],
        &rows,
    );
    println!(
        "\n(the paper reports Gunrock beating hardwired codes except CC; hooking+\n\
         shortcutting converges in O(log n) rounds, so it stays strong on CC here too)"
    );
}
