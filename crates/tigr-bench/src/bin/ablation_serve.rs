//! Ablation of the serving subsystem: closed-loop query throughput
//! against worker-thread count with the result cache and the batch
//! former each on versus off, an executor × kernel-thread × batch-width
//! topology matrix over the parallel batched executor, plus the
//! repeated-source cold-vs-hit latency comparison the cache exists for.
//!
//! Each throughput cell spins up a fresh in-process [`ServerCore`] and
//! drives it with closed-loop client threads (every client keeps
//! exactly one query in flight), cycling BFS, SSSP, SSWP, and CC over
//! a fixed pool of sources. Clients arrive in cohorts of four sharing
//! one request stream — the hot-key skew that both the result cache
//! and batch coalescing exist to exploit; every cell replays the same
//! workload shape, only the server configuration changes. Unbatched
//! cells run one client per worker; batched cells run eight (a batch
//! former needs queue depth to have anything to fuse). Checksums are
//! collected per (algorithm, source) and every cell must agree with a
//! single-worker uncached reference — batching, caching, topology, and
//! concurrency may change speed, never answers.
//!
//! Acceptance bars asserted in-process:
//!
//! * **batch scale-up**: cache-off throughput at the widest worker
//!   count with batching on must be at least 2x the 1-worker unbatched
//!   figure (relaxed to 1x under `--smoke`, where queries are too
//!   small to amortise anything; on hosts with fewer cores than the
//!   widest sweep the enforced bar is likewise capped at 1x — batching
//!   must still beat unbatched even oversubscribed);
//! * **batched scale-up**: the same widest batched cell must also be
//!   at least 1.5x the *1-worker batched* figure (1x under `--smoke`)
//!   — scaling must come from the wider configuration, not merely from
//!   turning the former on. This bar is only physical when the host
//!   has at least as many cores as the widest sweep; on smaller hosts
//!   the wide cells are oversubscribed and the enforced bar degrades
//!   to a 0.25x floor (batching must keep the server from collapsing),
//!   with both the committed and the enforced bar recorded in JSON;
//! * **monotonic with cores** (full mode only): along the
//!   single-kernel-thread topology series, each doubling of the thread
//!   budget must keep at least 0.8x the previous step's throughput —
//!   adding cores may plateau, never collapse. Only doublings within
//!   the host's core count are enforced; beyond it, falling throughput
//!   is oversubscription, not regression;
//! * **cold vs hit**: repeated-source SSSP hits must be at least a 5x
//!   median speedup over first-touch misses (2x under `--smoke`).
//!
//! Output goes both to stdout (aligned tables) and to a
//! machine-readable JSON file: `BENCH_serve.json` at the workspace root
//! by default, `target/BENCH_serve.smoke.json` under `--smoke`.
//! `--out <path>` overrides the destination, `--threads <n>` caps the
//! largest worker count in the sweep.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tigr_bench::{prepare_input, print_table};
use tigr_core::PreparedGraph;
use tigr_server::{Algo, Client, QueryRequest, Request, Response, ServerConfig, ServerCore};

/// Query mix for the throughput cells: every monotone analytic the
/// protocol serves. PageRank is excluded here (it is a fixed-cost full
/// sweep that would drown the per-query signal) and exercised once in
/// the checksum cross-check instead.
const MIX: [Algo; 4] = [Algo::Bfs, Algo::Sssp, Algo::Sswp, Algo::Cc];
const GRAPH_NAME: &str = "bench";
/// Clients per shared request stream: the duplication factor of the
/// workload's hot keys.
const COHORT: usize = 4;
/// Closed-loop clients per server worker in batched cells: a batch
/// former only has something to fuse when the offered load keeps the
/// admission queue deeper than the worker pool.
const CLIENT_FANOUT: usize = 8;
/// Fixed offered load for the topology matrix, so cells with different
/// thread budgets see the same queue pressure and differ only in how
/// they spend it.
const TOPO_CLIENTS: usize = 16;

/// (algo label, source) -> FNV-1a64 value checksum.
type ChecksumMap = BTreeMap<(String, Option<u32>), u64>;

/// One measured throughput cell. `workers` is the total thread budget
/// (`executors × kernel_threads`); the main sweep keeps
/// `kernel_threads = 1`, the topology matrix varies the split.
struct Cell {
    workers: usize,
    kernel_threads: usize,
    batch_width: usize,
    clients: usize,
    cache: bool,
    batch: bool,
    completed: u64,
    rejected: u64,
    cache_hits: u64,
    batches: u64,
    batched_queries: u64,
    max_batch: u64,
    wall_s: f64,
    qps: f64,
}

impl Cell {
    fn executors(&self) -> usize {
        (self.workers / self.kernel_threads.max(1)).max(1)
    }

    fn occupancy(&self) -> f64 {
        self.batched_queries as f64 / (self.batches.max(1)) as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"workers\": {}, \"executors\": {}, \"kernel_threads\": {}, \
             \"batch_width\": {}, \"clients\": {}, \"cache\": {}, \"batch\": {}, \
             \"completed\": {}, \"rejected\": {}, \"cache_hits\": {}, \
             \"batches\": {}, \"batched_queries\": {}, \"max_batch\": {}, \
             \"wall_s\": {:.4}, \"qps\": {:.1}}}",
            self.workers,
            self.executors(),
            self.kernel_threads,
            self.batch_width,
            self.clients,
            self.cache,
            self.batch,
            self.completed,
            self.rejected,
            self.cache_hits,
            self.batches,
            self.batched_queries,
            self.max_batch,
            self.wall_s,
            self.qps
        )
    }

    fn row(&self) -> Vec<String> {
        vec![
            self.workers.to_string(),
            self.clients.to_string(),
            if self.cache { "on" } else { "off" }.to_string(),
            if self.batch { "on" } else { "off" }.to_string(),
            self.completed.to_string(),
            self.rejected.to_string(),
            self.cache_hits.to_string(),
            format!("{:.2}", self.occupancy()),
            self.max_batch.to_string(),
            format!("{:.3}", self.wall_s),
            format!("{:.0}", self.qps),
        ]
    }

    fn topo_row(&self) -> Vec<String> {
        vec![
            self.executors().to_string(),
            self.kernel_threads.to_string(),
            self.workers.to_string(),
            self.batch_width.to_string(),
            self.completed.to_string(),
            format!("{:.2}", self.occupancy()),
            self.max_batch.to_string(),
            format!("{:.3}", self.wall_s),
            format!("{:.0}", self.qps),
        ]
    }
}

/// Runs one closed-loop cell: a thread budget of `workers` split into
/// `workers / kernel_threads` batch executors of `kernel_threads`
/// kernel threads each, driven by `clients` client threads issuing
/// `per_thread` queries each over `sources`. `batch_width` overrides
/// the widest fused batch (0 = derive from the client count). Returns
/// the cell plus the (algo, source) -> checksum map it observed.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    prepared: &Arc<PreparedGraph>,
    workers: usize,
    kernel_threads: usize,
    clients: usize,
    cache: bool,
    batch: bool,
    per_thread: usize,
    batch_wait_us: u64,
    batch_width: usize,
    sources: &[u32],
) -> (Cell, ChecksumMap) {
    let batch_max = if batch {
        // batch_max 1 disables the former entirely; batched cells get
        // room for every in-flight client plus a linger so stragglers
        // and resubmissions from a just-answered cohort can still fuse
        // (without it, concurrent workers shred a burst into
        // singletons before any of them can form a batch).
        if batch_width > 0 {
            batch_width
        } else {
            clients.max(8)
        }
    } else {
        1
    };
    let core = ServerCore::new(ServerConfig {
        workers,
        executors: (workers / kernel_threads.max(1)).max(1),
        kernel_threads,
        queue_capacity: 1024,
        cache_capacity: if cache { 1024 } else { 0 },
        default_deadline_ms: None,
        batch_max,
        batch_wait_us: if batch { batch_wait_us } else { 0 },
        compact_threshold: 0,
    });
    core.add_graph(GRAPH_NAME, Arc::clone(prepared));

    let checksums: Arc<Mutex<ChecksumMap>> = Arc::new(Mutex::new(BTreeMap::new()));
    let rejected = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let t = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|tid| {
            let core = Arc::clone(&core);
            let sources = sources.to_vec();
            let checksums = Arc::clone(&checksums);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                let mut client = Client::local(core);
                let mut completed = 0u64;
                let mut hits = 0u64;
                // Each cohort of four clients replays one request
                // stream; streams stride across the source pool so the
                // cell still touches different graph regions.
                let stream = tid / COHORT;
                for q in 0..per_thread {
                    let algo = MIX[q % MIX.len()];
                    // CC is global: the protocol rejects a source for it.
                    let source =
                        (algo != Algo::Cc).then(|| sources[(stream * 5 + q) % sources.len()]);
                    let mut request = QueryRequest::new(GRAPH_NAME, algo, source);
                    request.cache = cache;
                    match client.query(request) {
                        Ok(r) => {
                            completed += 1;
                            if r.cached {
                                hits += 1;
                            }
                            checksums
                                .lock()
                                .unwrap()
                                .entry((algo.label().to_string(), source))
                                .or_insert(r.checksum);
                        }
                        Err(tigr_server::ClientError::Protocol(p))
                            if p.code == tigr_server::ErrorCode::QueueFull =>
                        {
                            rejected.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(e) => panic!("workers={workers} cache={cache} batch={batch}: {e}"),
                    }
                }
                (completed, hits)
            })
        })
        .collect();
    let mut completed = 0u64;
    let mut cache_hits = 0u64;
    for h in handles {
        let (c, hits) = h.join().expect("client thread");
        completed += c;
        cache_hits += hits;
    }
    let wall_s = t.elapsed().as_secs_f64();
    let stats = match core.submit(Request::Stats) {
        Response::Stats(s) => s,
        other => panic!("stats request answered with {other:?}"),
    };
    let cell = Cell {
        workers,
        kernel_threads,
        batch_width: batch_max,
        clients,
        cache,
        batch,
        completed,
        rejected: rejected.load(std::sync::atomic::Ordering::Relaxed),
        cache_hits,
        batches: stats.batches,
        batched_queries: stats.batched_queries,
        max_batch: stats.max_batch,
        wall_s,
        qps: completed as f64 / wall_s.max(1e-9),
    };
    let checksums = Arc::try_unwrap(checksums)
        .expect("threads joined")
        .into_inner()
        .unwrap();
    (cell, checksums)
}

fn median(sorted: &mut [u64]) -> u64 {
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    // Smoke: tiny graph, short sweep — a CI-speed regression gate.
    // Full: a 65k-node power-law graph, the published configuration.
    // The batch linger scales with the query size: ~10% of a full-mode
    // query, barely a blip next to it, but long enough for a worker
    // holding a stray job to pick up its cohort's matching arrivals.
    let (scale, per_thread, num_sources, hit_repeats, batch_wait_us) = if smoke {
        (11u32, 16usize, 8usize, 4usize, 100u64)
    } else {
        (16, 48, 16, 8, 10_000)
    };
    let max_workers: usize = flag("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
        .max(1);
    let out_path = flag("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_serve.smoke.json".to_string()
        } else {
            "BENCH_serve.json".to_string()
        }
    });

    let seed = 2018;
    let t = Instant::now();
    let prepared = Arc::new(prepare_input(
        &format!("rmat:{scale}:16"),
        seed,
        Some((1, 64, seed)),
    ));
    let g = prepared.graph();
    eprintln!(
        "rmat scale {scale}: {} nodes, {} edges, prepared in {:.1?}",
        g.num_nodes(),
        g.num_edges(),
        t.elapsed()
    );
    // Spread the source pool across the id space so queries touch
    // different regions; all ids are valid sources.
    let stride = (g.num_nodes() / num_sources).max(1) as u32;
    let sources: Vec<u32> = (0..num_sources as u32).map(|i| i * stride).collect();
    println!(
        "serve ablation: {} nodes, {} edges, {} sources, {} queries/client",
        g.num_nodes(),
        g.num_edges(),
        sources.len(),
        per_thread
    );

    // Exhaustive answer key: every (algo, source) pair, computed once
    // through a single-worker uncached core. Each throughput cell is
    // checked against it — batching, caching, topology, and
    // concurrency may change speed, never answers.
    let reference: ChecksumMap = {
        let core = ServerCore::new(ServerConfig {
            workers: 1,
            cache_capacity: 0,
            batch_max: 1,
            ..ServerConfig::default()
        });
        core.add_graph(GRAPH_NAME, Arc::clone(&prepared));
        let mut client = Client::local(core);
        let mut map = BTreeMap::new();
        for algo in MIX {
            for &source in &sources {
                let source = (algo != Algo::Cc).then_some(source);
                let r = client
                    .query(QueryRequest::new(GRAPH_NAME, algo, source))
                    .expect("reference query");
                map.insert((algo.label().to_string(), source), r.checksum);
            }
        }
        map
    };
    let check = |cells: &ChecksumMap, label: &str| {
        for (key, sum) in cells {
            assert_eq!(
                reference.get(key),
                Some(sum),
                "{key:?}: checksum diverged at {label}"
            );
        }
    };

    // --- Closed-loop throughput: workers x cache x batch ------------
    let mut cells: Vec<Cell> = Vec::new();
    let mut workers = 1;
    while workers <= max_workers {
        for (cache, batch) in [(false, false), (false, true), (true, false), (true, true)] {
            let clients = if batch {
                workers * CLIENT_FANOUT
            } else {
                workers
            };
            eprintln!(
                "cell: {workers} worker(s), {clients} client(s), cache {}, batch {}",
                if cache { "on" } else { "off" },
                if batch { "on" } else { "off" }
            );
            let (cell, checksums) = run_cell(
                &prepared,
                workers,
                1,
                clients,
                cache,
                batch,
                per_thread,
                batch_wait_us,
                0,
                &sources,
            );
            check(
                &checksums,
                &format!("workers={workers} cache={cache} batch={batch}"),
            );
            cells.push(cell);
        }
        workers *= 2;
    }
    print_table(
        "closed-loop throughput",
        &[
            "workers",
            "clients",
            "cache",
            "batch",
            "completed",
            "rejected",
            "hits",
            "occ",
            "widest",
            "wall s",
            "qps",
        ],
        &cells.iter().map(Cell::row).collect::<Vec<_>>(),
    );

    // --- Batch scale-up gates ---------------------------------------
    // Two committed acceptance bars, both on cache-off cells so the
    // result cache cannot carry either. The first (legacy) compares
    // the widest batched configuration against the 1-worker unbatched
    // baseline: the gain there mixes work reduction from fusing with
    // concurrency. The second isolates scaling: the same widest
    // batched cell against the *1-worker batched* figure, so turning
    // the former on is no longer enough — the wider topology itself
    // must pay. The second bar is only physical when the host can run
    // `top` workers on distinct cores; below that the wide cells are
    // pure oversubscription (extra formers shred batches and the
    // kernel gains nothing), so the enforced bar degrades to an
    // oversubscription floor while the committed bar is still
    // recorded in the JSON for hosts that can meet it.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let top = cells.iter().map(|c| c.workers).max().unwrap();
    let base = cells
        .iter()
        .find(|c| c.workers == 1 && !c.cache && !c.batch)
        .expect("1-worker unbatched cache-off cell");
    let base_batched = cells
        .iter()
        .find(|c| c.workers == 1 && !c.cache && c.batch)
        .expect("1-worker batched cache-off cell");
    let peak = cells
        .iter()
        .find(|c| c.workers == top && !c.cache && c.batch)
        .expect("widest batched cache-off cell");
    let scaleup = peak.qps / base.qps.max(1e-9);
    let gate: f64 = if smoke { 1.0 } else { 2.0 };
    let enforced_gate = if cores >= top { gate } else { gate.min(1.0) };
    println!(
        "\nbatch scale-up (cache off): {scaleup:.2}x — {top} workers batched {:.0} qps \
         vs 1 worker unbatched {:.0} qps (committed gate {gate:.1}x, enforcing \
         {enforced_gate:.2}x on this {cores}-core host)",
        peak.qps, base.qps
    );
    assert!(
        scaleup >= enforced_gate,
        "batched cache-off throughput at {top} workers scaled only {scaleup:.2}x \
         over the 1-worker unbatched figure (enforced gate {enforced_gate:.2}x \
         on a {cores}-core host, committed gate {gate:.1}x)"
    );
    let batched_scaleup = peak.qps / base_batched.qps.max(1e-9);
    let batched_gate = if smoke { 1.0 } else { 1.5 };
    let enforced_batched_gate = if cores >= top { batched_gate } else { 0.25 };
    println!(
        "batched scale-up (cache off): {batched_scaleup:.2}x — {top} workers batched {:.0} qps \
         vs 1 worker batched {:.0} qps (committed gate {batched_gate:.1}x, enforcing \
         {enforced_batched_gate:.2}x on this {cores}-core host)",
        peak.qps, base_batched.qps
    );
    assert!(
        batched_scaleup >= enforced_batched_gate,
        "batched cache-off throughput at {top} workers scaled only {batched_scaleup:.2}x \
         over the 1-worker batched figure (enforced gate {enforced_batched_gate:.2}x \
         on a {cores}-core host, committed gate {batched_gate:.1}x)"
    );

    // --- Executor x kernel-thread x batch-width topology ------------
    // Cache off, batching on, fixed offered load: every way of
    // splitting each thread budget into executors x kernel threads,
    // crossed with two fused-batch widths. The narrow width starves
    // the fused kernel; the wide one lets one adjacency walk serve
    // many lanes.
    let widths = [4usize, 16];
    let mut topo: Vec<Cell> = Vec::new();
    let mut budget = 1;
    while budget <= max_workers {
        for kt in [1usize, 2, 4] {
            if budget % kt != 0 {
                continue;
            }
            for &width in &widths {
                eprintln!(
                    "topology cell: {} executor(s) x {kt} kernel thread(s), width {width}",
                    budget / kt
                );
                let (cell, checksums) = run_cell(
                    &prepared,
                    budget,
                    kt,
                    TOPO_CLIENTS,
                    false,
                    true,
                    per_thread,
                    batch_wait_us,
                    width,
                    &sources,
                );
                check(
                    &checksums,
                    &format!("topology executors={} kt={kt} width={width}", budget / kt),
                );
                topo.push(cell);
            }
        }
        budget *= 2;
    }
    print_table(
        "executor x kernel-thread topology (cache off, batched)",
        &[
            "exec",
            "kt",
            "budget",
            "width",
            "completed",
            "occ",
            "widest",
            "wall s",
            "qps",
        ],
        &topo.iter().map(Cell::topo_row).collect::<Vec<_>>(),
    );

    // Monotonic-with-cores gate along the single-kernel-thread, wide
    // series: each doubling of the budget must keep at least 0.8x the
    // previous step — adding cores may plateau, never collapse. Only
    // steps the host can actually parallelise are enforced (a budget
    // beyond the core count is oversubscription, where throughput
    // legitimately falls), and only in full mode: scheduling noise
    // plus the smoke workload's tiny queries make the bar meaningless
    // there.
    let series: Vec<&Cell> = topo
        .iter()
        .filter(|c| c.kernel_threads == 1 && c.batch_width == widths[widths.len() - 1])
        .collect();
    let min_step = series
        .windows(2)
        .map(|w| w[1].qps / w[0].qps.max(1e-9))
        .fold(f64::INFINITY, f64::min);
    let min_step = if min_step.is_finite() { min_step } else { 1.0 };
    let enforced_step = series
        .windows(2)
        .filter(|w| w[1].workers <= cores)
        .map(|w| w[1].qps / w[0].qps.max(1e-9))
        .fold(f64::INFINITY, f64::min);
    println!(
        "topology monotonicity (kt=1, width {}): min step {min_step:.2}x across budgets {:?} \
         (gate 0.8x over budgets within the {cores}-core host{})",
        widths[widths.len() - 1],
        series.iter().map(|c| c.workers).collect::<Vec<_>>(),
        if smoke {
            ", advisory under --smoke"
        } else {
            ""
        },
    );
    if !smoke && enforced_step.is_finite() {
        assert!(
            enforced_step >= 0.8,
            "throughput collapsed {enforced_step:.2}x at a budget doubling within the \
             {cores}-core host (gate 0.8x)"
        );
    }

    // PageRank checksum cross-check: cached snapshot must be bit-equal
    // to a fresh uncached run.
    {
        let core = ServerCore::new(ServerConfig::default());
        core.add_graph(GRAPH_NAME, Arc::clone(&prepared));
        let mut client = Client::local(Arc::clone(&core));
        let cold = client
            .query(QueryRequest::new(GRAPH_NAME, Algo::Pr, None))
            .expect("pagerank cold");
        let warm = client
            .query(QueryRequest::new(GRAPH_NAME, Algo::Pr, None))
            .expect("pagerank warm");
        assert!(!cold.cached && warm.cached, "pagerank cache behaviour");
        assert_eq!(cold.checksum, warm.checksum, "pagerank snapshot diverged");
        println!(
            "pagerank snapshot checksum {:016x} (cold == cached)",
            cold.checksum
        );
    }

    // --- Repeated-source cold vs hit --------------------------------
    let core = ServerCore::new(ServerConfig {
        workers: 1,
        cache_capacity: 1024,
        ..ServerConfig::default()
    });
    core.add_graph(GRAPH_NAME, Arc::clone(&prepared));
    let mut client = Client::local(core);
    let mut cold_us: Vec<u64> = Vec::new();
    let mut hit_us: Vec<u64> = Vec::new();
    for &source in &sources {
        let r = client
            .query(QueryRequest::new(GRAPH_NAME, Algo::Sssp, Some(source)))
            .expect("cold query");
        assert!(!r.cached, "source {source} unexpectedly cached");
        cold_us.push(r.wall_us);
        for _ in 0..hit_repeats {
            let r = client
                .query(QueryRequest::new(GRAPH_NAME, Algo::Sssp, Some(source)))
                .expect("hit query");
            assert!(r.cached, "source {source} repeat missed the cache");
            hit_us.push(r.wall_us);
        }
    }
    let median_cold_us = median(&mut cold_us);
    let median_hit_us = median(&mut hit_us).max(1);
    let speedup = median_cold_us as f64 / median_hit_us as f64;
    println!(
        "\ncold vs hit (sssp, {} sources x {} repeats): \
         median cold {} us, median hit {} us, speedup {:.1}x",
        sources.len(),
        hit_repeats,
        median_cold_us,
        median_hit_us,
        speedup
    );
    let bar = if smoke { 2.0 } else { 5.0 };
    assert!(
        speedup >= bar,
        "cache speedup {speedup:.1}x below the {bar}x acceptance bar"
    );

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {smoke},\n  \"graph\": \
         {{\"generator\": \"rmat\", \"scale\": {scale}, \"nodes\": {}, \"edges\": {}}},\n  \
         \"queries_per_client\": {per_thread},\n  \"sources\": {},\n  \
         \"throughput\": [\n    {}\n  ],\n  \"batch_scaling\": {{\"workers\": {top}, \
         \"cores\": {cores}, \"clients\": {}, \"base_qps\": {:.1}, \"batched_qps\": {:.1}, \
         \"scaleup\": {scaleup:.2}, \"gate\": {gate:.1}, \
         \"enforced_gate\": {enforced_gate:.2}}},\n  \
         \"batched_scaling\": {{\"workers\": {top}, \"cores\": {cores}, \
         \"base_batched_qps\": {:.1}, \"batched_qps\": {:.1}, \
         \"scaleup\": {batched_scaleup:.2}, \"gate\": {batched_gate:.1}, \
         \"enforced_gate\": {enforced_batched_gate:.2}}},\n  \
         \"topology\": {{\"clients\": {TOPO_CLIENTS}, \"cores\": {cores}, \
         \"monotonic_gate\": 0.8, \
         \"monotonic_min_step\": {min_step:.2}, \"cells\": [\n    {}\n  ]}},\n  \
         \"cold_vs_hit\": {{\"algo\": \"sssp\", \
         \"cold_samples\": {}, \"hit_samples\": {}, \"median_cold_us\": {median_cold_us}, \
         \"median_hit_us\": {median_hit_us}, \"speedup\": {speedup:.2}}}\n}}\n",
        g.num_nodes(),
        g.num_edges(),
        sources.len(),
        cells
            .iter()
            .map(Cell::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        peak.clients,
        base.qps,
        peak.qps,
        base_batched.qps,
        peak.qps,
        topo.iter()
            .map(Cell::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        cold_us.len(),
        hit_us.len(),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write JSON output");
    println!("\nwrote {out_path}");
}
