//! Ablation of the operator pipeline layer: every analytic expressed
//! as an advance/filter/compute [`Pipeline`] versus the legacy entry
//! point it refactors (`run_program`, `pagerank`, `betweenness`).
//!
//! The pipeline layer is pure dispatch — it validates capabilities and
//! lowers onto the same kernels — so its results must be byte-equal
//! and its wall clock within a few percent of the legacy call. Both
//! are asserted, not just printed: values byte-equal always, and the
//! mean overhead ratio gated at ≤5% in the full configuration
//! (smoke runs are sub-millisecond and jitter-dominated, so the smoke
//! gate is relaxed to 2x).
//!
//! The four new operator-only workloads (khop, bounded paths, label
//! propagation, triangle counting) are timed alongside and pinned to
//! cheap cross-checks: khop is the masked BFS hop array, bounded
//! paths' distance half is the masked SSSP array, lp is run-to-run
//! deterministic, and tc's corner incidences come in threes.
//!
//! Output goes both to stdout (aligned table) and to a
//! machine-readable JSON file: `BENCH_operators.json` at the workspace
//! root by default, `target/BENCH_operators.smoke.json` under
//! `--smoke`. `--out <path>` overrides the destination.

use std::time::Instant;

use tigr_bench::{max_degree_source, prepare_input, print_table};
use tigr_engine::{
    operators, Engine, FrontierMode, MonotoneProgram, Pipeline, PipelineOutput, PrOptions,
    PushOptions, Representation,
};
use tigr_sim::GpuConfig;

/// One measured legacy-vs-pipeline pair.
struct Sample {
    analytic: &'static str,
    legacy_ms: f64,
    pipeline_ms: f64,
    iterations: u64,
}

impl Sample {
    fn overhead(&self) -> f64 {
        if self.legacy_ms <= 0.0 {
            return 1.0;
        }
        self.pipeline_ms / self.legacy_ms
    }

    fn json(&self) -> String {
        format!(
            "{{\"analytic\": \"{}\", \"legacy_wall_ms\": {:.3}, \"pipeline_wall_ms\": {:.3}, \
             \"overhead_ratio\": {:.4}, \"iterations\": {}}}",
            self.analytic,
            self.legacy_ms,
            self.pipeline_ms,
            self.overhead(),
            self.iterations,
        )
    }

    fn row(&self) -> Vec<String> {
        vec![
            self.analytic.to_string(),
            format!("{:.2}", self.legacy_ms),
            format!("{:.2}", self.pipeline_ms),
            format!("{:.3}", self.overhead()),
            self.iterations.to_string(),
        ]
    }
}

fn best_of<T>(repeats: usize, mut run: impl FnMut() -> T) -> (T, f64) {
    let mut best: Option<(T, f64)> = None;
    for _ in 0..repeats {
        let t = Instant::now();
        let out = run();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if best.as_ref().is_none_or(|(_, b)| ms < *b) {
            best = Some((out, ms));
        }
    }
    best.expect("at least one repeat")
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    // Smoke: a few thousand nodes, single repeat — a CI-speed compile
    // and equality gate. Full: the scale-16 RMAT analog the ≤5%
    // dispatch-overhead claim is stated for, best-of-5 timing.
    let (scale, repeats, gate) = if smoke {
        (11u32, 1usize, 2.0)
    } else {
        (16, 5, 1.05)
    };
    let out_path = flag("--out").unwrap_or_else(|| {
        if smoke {
            "target/BENCH_operators.smoke.json".to_string()
        } else {
            "BENCH_operators.json".to_string()
        }
    });

    let seed = 2018;
    let t = Instant::now();
    let g = prepare_input(&format!("rmat:{scale}:16"), seed, Some((1, 64, seed))).into_graph();
    let src = max_degree_source(&g);
    eprintln!(
        "rmat scale {scale}: {} nodes, {} edges, source {src}, prepared in {:.1?}",
        g.num_nodes(),
        g.num_edges(),
        t.elapsed()
    );
    println!(
        "Operator-pipeline ablation: {} nodes, {} edges, best of {} run(s), overhead gate {gate}x",
        g.num_nodes(),
        g.num_edges(),
        repeats
    );
    let rep = Representation::Original(&g);
    let engine = Engine::parallel(GpuConfig::default()).with_options(PushOptions {
        worklist: true,
        frontier: FrontierMode::Auto,
        ..PushOptions::default()
    });

    let mut samples: Vec<Sample> = Vec::new();
    let mut sssp_dist: Vec<u32> = Vec::new();

    // The monotone analytics: run_program vs the lifted pipeline.
    for (analytic, prog) in [
        ("bfs", MonotoneProgram::BFS),
        ("sssp", MonotoneProgram::SSSP),
        ("sswp", MonotoneProgram::SSWP),
        ("cc", MonotoneProgram::CC),
    ] {
        let source = prog.needs_source().then_some(src);
        let (legacy, legacy_ms) =
            best_of(repeats, || engine.run_program(&rep, prog, source).unwrap());
        let pipeline = prog.pipeline();
        let (out, pipeline_ms) = best_of(repeats, || {
            engine.run_pipeline(&rep, &pipeline, source).unwrap()
        });
        assert_eq!(
            out.values, legacy.values,
            "{analytic}: pipeline diverged from run_program"
        );
        assert_eq!(out.iterations, legacy.directions.len() as u64);
        if analytic == "sssp" {
            sssp_dist = legacy.values;
        }
        samples.push(Sample {
            analytic,
            legacy_ms,
            pipeline_ms,
            iterations: out.iterations,
        });
    }

    // PageRank at a fixed sweep count so both variants do identical
    // work, and single-source betweenness.
    let pr_opts = PrOptions {
        tolerance: 0.0,
        max_iterations: if smoke { 5 } else { 20 },
        ..PrOptions::default()
    };
    let degrees = tigr_engine::pr::out_degrees(&g);
    let (legacy_pr, legacy_ms) = best_of(repeats, || {
        engine.pagerank(&rep, &degrees, &pr_opts).unwrap()
    });
    let pr_pipeline = Pipeline::pagerank(pr_opts);
    let (out, pipeline_ms) = best_of(repeats, || {
        engine.run_pipeline(&rep, &pr_pipeline, None).unwrap()
    });
    let rank_bits: Vec<u32> = legacy_pr.ranks.iter().map(|r| r.to_bits()).collect();
    assert_eq!(out.values, rank_bits, "pr: pipeline diverged from pagerank");
    samples.push(Sample {
        analytic: "pr",
        legacy_ms,
        pipeline_ms,
        iterations: out.iterations,
    });

    let (legacy_bc, legacy_ms) = best_of(repeats, || engine.betweenness(&rep, src).unwrap());
    let bc_pipeline = Pipeline::betweenness();
    let (out, pipeline_ms) = best_of(repeats, || {
        engine.run_pipeline(&rep, &bc_pipeline, Some(src)).unwrap()
    });
    let bc_bits: Vec<u32> = legacy_bc.centrality.iter().map(|c| c.to_bits()).collect();
    assert_eq!(
        out.values, bc_bits,
        "bc: pipeline diverged from betweenness"
    );
    samples.push(Sample {
        analytic: "bc",
        legacy_ms,
        pipeline_ms,
        iterations: out.iterations,
    });

    print_table(
        "legacy entry point vs operator pipeline",
        &["analytic", "legacy ms", "pipeline ms", "ratio", "iters"],
        &samples.iter().map(Sample::row).collect::<Vec<_>>(),
    );

    let mean_overhead = samples.iter().map(Sample::overhead).sum::<f64>() / samples.len() as f64;
    let max_overhead = samples.iter().map(Sample::overhead).fold(0.0, f64::max);
    println!("\nmean overhead {mean_overhead:.3}x, max {max_overhead:.3}x (gate {gate}x)");
    assert!(
        mean_overhead <= gate,
        "operator dispatch overhead {mean_overhead:.3}x exceeds the {gate}x gate"
    );

    // The operator-only workloads, each pinned to a cheap cross-check
    // against the arrays measured above.
    let mut workloads: Vec<(&str, PipelineOutput, f64)> = Vec::new();
    let run_pipeline =
        |p: &Pipeline, source| best_of(repeats, || engine.run_pipeline(&rep, p, source).unwrap());

    let (k, radius, rounds) = (4u32, 96u32, 8usize);
    let (khop, ms) = run_pipeline(&Pipeline::khop(k), Some(src));
    // BFS here is weighted, so the hop-count cross-check runs the
    // unit-hop program through the *legacy* entry point and masks it
    // by hand.
    let mut expect = engine
        .run_program(&rep, MonotoneProgram::KHOP, Some(src))
        .unwrap()
        .values;
    operators::mask_above(&mut expect, k);
    assert_eq!(
        khop.values, expect,
        "khop is not the masked hop-count array"
    );
    workloads.push(("khop", khop, ms));

    let (paths, ms) = run_pipeline(&Pipeline::bounded_paths(radius), Some(src));
    let mut expect = sssp_dist.clone();
    operators::mask_above(&mut expect, radius);
    assert_eq!(
        &paths.values[..g.num_nodes()],
        &expect,
        "paths distances are not the masked SSSP array"
    );
    workloads.push(("paths", paths, ms));

    let (lp, ms) = run_pipeline(&Pipeline::label_propagation(rounds), None);
    let (again, _) = run_pipeline(&Pipeline::label_propagation(rounds), None);
    assert_eq!(
        lp.values, again.values,
        "lp is not run-to-run deterministic"
    );
    workloads.push(("lp", lp, ms));

    let (tc, ms) = run_pipeline(&Pipeline::triangle_count(), None);
    let corners: u64 = tc.values.iter().map(|&c| c as u64).sum();
    assert_eq!(corners % 3, 0, "tc corner incidences must come in threes");
    println!("tc: {} triangles", corners / 3);
    workloads.push(("tc", tc, ms));

    print_table(
        "operator-only workloads",
        &["workload", "wall ms", "iters", "converged"],
        &workloads
            .iter()
            .map(|(name, out, ms)| {
                vec![
                    name.to_string(),
                    format!("{ms:.2}"),
                    out.iterations.to_string(),
                    out.converged.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let workload_json = workloads
        .iter()
        .map(|(name, out, ms)| {
            format!(
                "{{\"workload\": \"{name}\", \"wall_ms\": {ms:.3}, \"iterations\": {}}}",
                out.iterations
            )
        })
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        "{{\n  \"bench\": \"operators\",\n  \"smoke\": {smoke},\n  \"graph\": \
         {{\"generator\": \"rmat\", \"scale\": {scale}, \"nodes\": {}, \"edges\": {}}},\n  \
         \"repeats\": {repeats},\n  \"overhead_gate\": {gate},\n  \
         \"mean_overhead_ratio\": {mean_overhead:.4},\n  \
         \"max_overhead_ratio\": {max_overhead:.4},\n  \"results\": [\n    {}\n  ],\n  \
         \"workloads\": [\n    {workload_json}\n  ]\n}}\n",
        g.num_nodes(),
        g.num_edges(),
        samples
            .iter()
            .map(Sample::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out_path, &json).expect("write JSON output");
    println!("\nwrote {out_path}");
}
