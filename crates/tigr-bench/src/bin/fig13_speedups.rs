//! Regenerates Figure 13: speedups of Tigr-UDT, Tigr-V, and Tigr-V+ over
//! the baseline engine, for SSSP on every dataset.
//!
//! Expected shape (paper): geometric means ≈ 1.2× (UDT), 1.7× (V),
//! 2.1× (V+), with UDT < V < V+ on nearly every graph.

use tigr_bench::{cycles_to_ms, geomean, load_datasets, print_table, BenchConfig};
use tigr_core::{k_select, udt_transform, DumbWeight, VirtualGraph};
use tigr_engine::{Engine, PushOptions, Representation};
use tigr_sim::GpuConfig;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Figure 13 at 1/{} scale: SSSP speedups over the untransformed baseline",
        cfg.scale_denominator
    );
    let datasets = load_datasets(&cfg);
    let engine = Engine::parallel(GpuConfig::default()).with_options(PushOptions::default());

    let mut rows = Vec::new();
    let (mut s_udt, mut s_v, mut s_vp) = (Vec::new(), Vec::new(), Vec::new());

    for d in &datasets {
        let g = &d.weighted;
        let src = d.source();

        let base = engine
            .sssp(&Representation::Original(g), src)
            .expect("baseline fits");
        let base_cycles = base.report.total_cycles();

        let k_udt = k_select::physical_k(g);
        let t = udt_transform(g, k_udt, DumbWeight::Zero);
        let udt = engine
            .sssp(&Representation::Physical(&t), src)
            .expect("udt fits");

        let k_v = k_select::VIRTUAL_K;
        let ov = VirtualGraph::new(g, k_v);
        let v = engine
            .sssp(
                &Representation::Virtual {
                    graph: g,
                    overlay: &ov,
                },
                src,
            )
            .expect("virtual fits");

        let ovc = VirtualGraph::coalesced(g, k_v);
        let vp = engine
            .sssp(
                &Representation::Virtual {
                    graph: g,
                    overlay: &ovc,
                },
                src,
            )
            .expect("virtual+ fits");

        let speedup = |cycles: u64| base_cycles as f64 / cycles as f64;
        let (su, sv, svp) = (
            speedup(udt.report.total_cycles()),
            speedup(v.report.total_cycles()),
            speedup(vp.report.total_cycles()),
        );
        s_udt.push(su);
        s_v.push(sv);
        s_vp.push(svp);

        rows.push(vec![
            d.spec.name.to_string(),
            format!("{:.2}", cycles_to_ms(base_cycles)),
            format!("{su:.2}x"),
            format!("{sv:.2}x"),
            format!("{svp:.2}x"),
        ]);
    }

    rows.push(vec![
        "geomean".to_string(),
        "-".to_string(),
        format!("{:.2}x", geomean(&s_udt)),
        format!("{:.2}x", geomean(&s_v)),
        format!("{:.2}x", geomean(&s_vp)),
    ]);

    print_table(
        "Figure 13: SSSP speedups over baseline (paper geomeans: 1.2x / 1.7x / 2.1x)",
        &["dataset", "base ms", "Tigr-UDT", "Tigr-V", "Tigr-V+"],
        &rows,
    );
}
