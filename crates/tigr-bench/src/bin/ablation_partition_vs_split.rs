//! Partitioning vs splitting (§7.1): the paper argues vertex
//! partitioning "often has to replicate both high-degree and low-degree
//! vertices (called mirroring)" while split transformations create no
//! partitions and nothing to synchronize.
//!
//! This binary quantifies the contrast on the analogs: the replication
//! factor of a PowerGraph-style greedy vertex cut (mirrors per node)
//! versus the bounded overhead of Tigr's virtual node array.

use tigr_bench::{load_datasets, print_table, BenchConfig};
use tigr_core::VirtualGraph;
use tigr_graph::partition::{edge_cut_by_source, vertex_cut};

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "Partitioning vs splitting at 1/{} scale (14 parts = one per simulated SM)",
        cfg.scale_denominator
    );
    let datasets = load_datasets(&cfg);
    let parts = 14;

    let mut rows = Vec::new();
    for d in &datasets {
        let g = &d.graph;
        let cut = vertex_cut(g, parts);
        let one_d = edge_cut_by_source(g, parts);
        let overlay = VirtualGraph::new(g, 10);

        rows.push(vec![
            d.spec.name.to_string(),
            format!("{:.2}x", cut.replication_factor(g)),
            format!("{:.2}", cut.imbalance()),
            format!("{:.2}", one_d.imbalance()),
            format!(
                "{:.2}x",
                overlay.num_virtual_nodes() as f64 / g.num_nodes() as f64
            ),
            format!("{:.1}%", 100.0 * (overlay.space_cost_ratio(g) - 1.0)),
        ]);
    }

    print_table(
        "vertex-cut mirroring vs virtual splitting (K=10)",
        &[
            "dataset",
            "replication",
            "vcut imbal",
            "1D imbal",
            "vnodes/node",
            "space ovh",
        ],
        &rows,
    );
    println!(
        "\nvertex cuts balance load but mirror nodes (replication > 1) and must\n\
         synchronize the mirrors; the 1D edge cut avoids mirrors but collapses\n\
         under power-law imbalance. Tigr's virtual split balances load with a\n\
         bounded overlay and no synchronization at all (implicit value sync)."
    );
}
