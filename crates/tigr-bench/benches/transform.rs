//! Criterion benches for the transformation costs (Table 7's
//! micro-level counterpart): physical UDT versus virtual overlay
//! construction, across degree bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tigr_core::{udt_transform, DumbWeight, VirtualGraph};
use tigr_graph::generators::{rmat, RmatConfig};

fn transform_benches(c: &mut Criterion) {
    let g = rmat(&RmatConfig::graph500(14, 16), 2018);

    let mut group = c.benchmark_group("transform");
    group.sample_size(10);

    for k in [32u32, 128, 512] {
        group.bench_with_input(BenchmarkId::new("udt_physical", k), &k, |b, &k| {
            b.iter(|| udt_transform(&g, k, DumbWeight::Zero));
        });
    }
    for k in [4u32, 10, 32] {
        group.bench_with_input(BenchmarkId::new("virtual", k), &k, |b, &k| {
            b.iter(|| VirtualGraph::new(&g, k));
        });
        group.bench_with_input(BenchmarkId::new("virtual_coalesced", k), &k, |b, &k| {
            b.iter(|| VirtualGraph::coalesced(&g, k));
        });
    }
    group.finish();
}

criterion_group!(benches, transform_benches);
criterion_main!(benches);
