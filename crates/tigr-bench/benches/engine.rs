//! Criterion benches for the engine across representations: the
//! micro-scale counterpart of Table 4 / Figure 13 (wall-clock of the
//! simulated runs; relative ordering mirrors the simulated cycles).

use criterion::{criterion_group, criterion_main, Criterion};

use tigr_core::{udt_transform, DumbWeight, VirtualGraph};
use tigr_engine::{Engine, PushOptions, Representation};
use tigr_graph::generators::{rmat, with_uniform_weights, RmatConfig};
use tigr_graph::NodeId;
use tigr_sim::GpuConfig;

fn engine_benches(c: &mut Criterion) {
    let g = with_uniform_weights(&rmat(&RmatConfig::graph500(12, 8), 2018), 1, 64, 7);
    let src = NodeId::new(0);
    let t = udt_transform(&g, 64, DumbWeight::Zero);
    let ov = VirtualGraph::new(&g, 10);
    let ovc = VirtualGraph::coalesced(&g, 10);
    let engine = Engine::new(GpuConfig::default()).with_options(PushOptions::default());

    let mut group = c.benchmark_group("sssp");
    group.sample_size(10);
    group.bench_function("baseline_original", |b| {
        b.iter(|| engine.sssp(&Representation::Original(&g), src).unwrap());
    });
    group.bench_function("tigr_udt", |b| {
        b.iter(|| engine.sssp(&Representation::Physical(&t), src).unwrap());
    });
    group.bench_function("tigr_v", |b| {
        b.iter(|| {
            engine
                .sssp(
                    &Representation::Virtual {
                        graph: &g,
                        overlay: &ov,
                    },
                    src,
                )
                .unwrap()
        });
    });
    group.bench_function("tigr_v_plus", |b| {
        b.iter(|| {
            engine
                .sssp(
                    &Representation::Virtual {
                        graph: &g,
                        overlay: &ovc,
                    },
                    src,
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, engine_benches);
criterion_main!(benches);
