//! Criterion benches for the simulator itself: replay throughput for
//! balanced vs skewed kernels and coalesced vs strided memory traces.

use criterion::{criterion_group, criterion_main, Criterion};

use tigr_sim::{GpuConfig, GpuSimulator};

fn simulator_benches(c: &mut Criterion) {
    let sim = GpuSimulator::new(GpuConfig::default());
    let n = 100_000;

    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("balanced_compute", |b| {
        b.iter(|| sim.launch(n, |_, lane| lane.compute(16)));
    });
    group.bench_function("skewed_compute", |b| {
        b.iter(|| {
            sim.launch(n, |tid, lane| {
                lane.compute(if tid % 1000 == 0 { 1000 } else { 1 })
            })
        });
    });
    group.bench_function("coalesced_loads", |b| {
        b.iter(|| {
            sim.launch(n, |tid, lane| {
                for i in 0..8u64 {
                    lane.load((tid as u64) * 32 + i * 4, 4);
                }
            })
        });
    });
    group.bench_function("strided_loads", |b| {
        b.iter(|| {
            sim.launch(n, |tid, lane| {
                for i in 0..8u64 {
                    lane.load((tid as u64) * 4 + i * 40_000, 4);
                }
            })
        });
    });
    group.finish();
}

criterion_group!(benches, simulator_benches);
criterion_main!(benches);
