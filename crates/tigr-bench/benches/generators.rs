//! Criterion benches for the synthetic workload generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tigr_graph::generators::{
    barabasi_albert, erdos_renyi, rmat, BarabasiAlbertConfig, RmatConfig,
};

fn generator_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    for scale in [12u32, 14] {
        group.bench_with_input(BenchmarkId::new("rmat", scale), &scale, |b, &s| {
            b.iter(|| rmat(&RmatConfig::graph500(s, 8), 1));
        });
    }
    group.bench_function("barabasi_albert_50k", |b| {
        b.iter(|| {
            barabasi_albert(
                &BarabasiAlbertConfig {
                    num_nodes: 50_000,
                    edges_per_node: 4,
                    symmetric: false,
                },
                1,
            )
        });
    });
    group.bench_function("erdos_renyi_400k_edges", |b| {
        b.iter(|| erdos_renyi(50_000, 400_000, 1));
    });
    group.finish();
}

criterion_group!(benches, generator_benches);
criterion_main!(benches);
