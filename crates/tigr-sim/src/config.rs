//! Simulated device configuration and cycle-cost model.

use serde::{Deserialize, Serialize};

/// Per-operation cycle costs of the simulated device.
///
/// The absolute values are nominal — the evaluation compares *relative*
/// costs between scheduling strategies, which is what the paper's speedup
/// numbers capture. Defaults approximate a throughput-oriented GPU: memory
/// transactions dominate, arithmetic is cheap, atomics carry a surcharge.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per arithmetic/control instruction (per warp step).
    pub compute_cycles: u64,
    /// Cycles per memory transaction (one cache-line fetch).
    pub mem_transaction_cycles: u64,
    /// Extra cycles per *atomic* transaction on top of the memory cost.
    pub atomic_extra_cycles: u64,
    /// Fixed cycles charged per kernel launch (driver + dispatch
    /// overhead). Captures the paper's observation that iteration-heavy
    /// runs pay per-launch costs.
    pub kernel_launch_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated so that the engine's Figure 13 speedups land in the
        // paper's reported range (≈1.2× UDT / 1.7× V / 2.1× V+): memory
        // transactions dominate arithmetic, but latency hiding on a real
        // GPU keeps the effective per-transaction cost well below the raw
        // DRAM latency.
        CostModel {
            compute_cycles: 1,
            mem_transaction_cycles: 8,
            atomic_extra_cycles: 4,
            kernel_launch_cycles: 2_000,
        }
    }
}

/// How a warp's lane work is converted into cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingModel {
    /// SIMD lockstep (Figure 3): every step costs the *max* over active
    /// lanes, and idle lanes burn issued slots. The real-GPU model and
    /// the default.
    #[default]
    SimdLockstep,
    /// Idealized MIMD ablation: lanes proceed independently, so a warp
    /// costs its total useful work divided across the lanes and no slot
    /// is ever wasted. Used to demonstrate that the irregularity
    /// penalty — and hence Tigr's benefit — is specific to lockstep
    /// execution.
    IdealMimd,
}

/// Configuration of the simulated GPU.
///
/// Defaults model the paper's NVIDIA Quadro P4000: 32-lane warps, 14 SMs
/// (1792 cores / 128 cores per SM), 128-byte memory transactions, and a
/// ~1.2 GHz core clock used only to convert cycles into nominal
/// milliseconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Threads per warp (32 on NVIDIA hardware).
    pub warp_size: usize,
    /// Number of streaming multiprocessors warps are distributed over.
    pub num_sms: usize,
    /// Size in bytes of one memory transaction (cache line / segment).
    pub cacheline_bytes: u64,
    /// Cycle costs.
    pub cost: CostModel,
    /// Core clock in Hz, used by [`GpuConfig::cycles_to_ms`].
    pub clock_hz: f64,
    /// Lane-timing discipline (lockstep vs the MIMD ablation).
    pub timing: TimingModel,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            warp_size: 32,
            num_sms: 14,
            cacheline_bytes: 128,
            cost: CostModel::default(),
            clock_hz: 1.2e9,
            timing: TimingModel::SimdLockstep,
        }
    }
}

impl GpuConfig {
    /// A reduced configuration handy in unit tests: 4-lane warps, 2 SMs,
    /// 16-byte cache lines.
    pub fn tiny() -> Self {
        GpuConfig {
            warp_size: 4,
            num_sms: 2,
            cacheline_bytes: 16,
            cost: CostModel {
                compute_cycles: 1,
                mem_transaction_cycles: 4,
                atomic_extra_cycles: 2,
                kernel_launch_cycles: 10,
            },
            clock_hz: 1.0e9,
            timing: TimingModel::SimdLockstep,
        }
    }

    /// Converts simulated cycles into nominal milliseconds at the
    /// configured clock.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz * 1e3
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if the warp size, SM count, cache line, or clock is zero.
    pub fn validate(&self) {
        assert!(self.warp_size > 0, "warp size must be positive");
        assert!(self.num_sms > 0, "SM count must be positive");
        assert!(self.cacheline_bytes > 0, "cache line must be positive");
        assert!(self.clock_hz > 0.0, "clock must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_models_p4000() {
        let c = GpuConfig::default();
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.num_sms, 14);
        assert_eq!(c.cacheline_bytes, 128);
        c.validate();
    }

    #[test]
    fn cycles_to_ms_conversion() {
        let c = GpuConfig {
            clock_hz: 1e9,
            ..GpuConfig::default()
        };
        assert!((c.cycles_to_ms(1_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_config_is_valid() {
        GpuConfig::tiny().validate();
    }

    #[test]
    #[should_panic(expected = "warp size must be positive")]
    fn zero_warp_size_rejected() {
        GpuConfig {
            warp_size: 0,
            ..GpuConfig::default()
        }
        .validate();
    }

    #[test]
    fn memory_dominates_compute_by_default() {
        let cost = CostModel::default();
        assert!(cost.mem_transaction_cycles >= 8 * cost.compute_cycles);
        assert!(cost.atomic_extra_cycles >= cost.compute_cycles);
    }
}
