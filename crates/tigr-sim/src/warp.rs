//! Warp-lockstep replay of lane traces.

use serde::{Deserialize, Serialize};

use crate::config::GpuConfig;
use crate::executor::Op;
use crate::memory::{coalesce_transactions, MemAccess};

/// Timing and occupancy of a single simulated warp.
///
/// Produced by the warp-replay step and consumed by the executor's SM accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpStats {
    /// Cycles this warp occupied its SM.
    pub cycles: u64,
    /// Useful lane-slots (instructions actually executed by lanes).
    pub useful_slots: u64,
    /// Issued lane-slots (`warp_size × Σ step weights`), counting idle
    /// lanes held in lockstep.
    pub issued_slots: u64,
    /// Memory transactions after coalescing.
    pub mem_transactions: u64,
    /// Atomic operations executed.
    pub atomic_ops: u64,
    /// Lockstep steps executed (max lane trace length).
    pub steps: u64,
}

/// Replays the per-lane traces of one warp in lockstep and returns its
/// stats.
///
/// Semantics, mirroring SIMD hardware (Figure 3 of the paper):
///
/// * The warp executes `max(len(trace))` steps; at step `k`, every lane
///   with a `k`-th operation is active, the rest idle.
/// * A step's *compute* component costs `max` over active compute weights
///   (lanes with fewer pending instructions stall).
/// * A step's *memory* component groups all active lanes' accesses into
///   aligned cache-line transactions ([`coalesce_transactions`]).
/// * Idle lanes still consume issued slots — that is precisely the warp
///   inefficiency Tigr removes by regularizing degrees.
pub(crate) fn replay_warp(lanes: &[Vec<Op>], config: &GpuConfig) -> WarpStats {
    match config.timing {
        crate::config::TimingModel::SimdLockstep => replay_lockstep(lanes, config),
        crate::config::TimingModel::IdealMimd => replay_mimd(lanes, config),
    }
}

fn replay_lockstep(lanes: &[Vec<Op>], config: &GpuConfig) -> WarpStats {
    let steps = lanes.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut stats = WarpStats {
        steps: steps as u64,
        ..WarpStats::default()
    };
    let mut step_accesses: Vec<MemAccess> = Vec::with_capacity(config.warp_size);

    for k in 0..steps {
        step_accesses.clear();
        let mut max_compute = 0u64;
        let mut useful = 0u64;
        for lane in lanes {
            match lane.get(k) {
                Some(Op::Compute(w)) => {
                    max_compute = max_compute.max(*w);
                    useful += w;
                }
                Some(Op::Mem(a)) => {
                    step_accesses.push(*a);
                    useful += 1;
                }
                None => {}
            }
        }

        let mut step_weight = 0u64;
        if max_compute > 0 {
            stats.cycles += max_compute * config.cost.compute_cycles;
            step_weight += max_compute;
        }
        if !step_accesses.is_empty() {
            let (tx, atomics) = coalesce_transactions(&step_accesses, config.cacheline_bytes);
            stats.cycles +=
                tx * config.cost.mem_transaction_cycles + atomics * config.cost.atomic_extra_cycles;
            stats.mem_transactions += tx;
            stats.atomic_ops += atomics;
            step_weight = step_weight.max(1);
        }

        stats.useful_slots += useful;
        stats.issued_slots += config.warp_size as u64 * step_weight;
    }
    stats
}

/// The MIMD ablation: no lockstep — useful work is spread evenly over
/// the lanes, memory still pays per-access transactions (no warp-level
/// coalescing opportunity either; each access is its own transaction).
fn replay_mimd(lanes: &[Vec<Op>], config: &GpuConfig) -> WarpStats {
    let mut stats = WarpStats::default();
    let mut compute = 0u64;
    for lane in lanes {
        for op in lane {
            match op {
                Op::Compute(w) => {
                    compute += w;
                    stats.useful_slots += w;
                }
                Op::Mem(a) => {
                    stats.mem_transactions += 1;
                    if a.kind == crate::memory::AccessKind::Atomic {
                        stats.atomic_ops += 1;
                    }
                    stats.useful_slots += 1;
                }
            }
        }
        stats.steps = stats.steps.max(lane.len() as u64);
    }
    stats.issued_slots = stats.useful_slots;
    stats.cycles = compute.div_ceil(config.warp_size as u64) * config.cost.compute_cycles
        + stats.mem_transactions.div_ceil(config.warp_size as u64)
            * config.cost.mem_transaction_cycles
        + stats.atomic_ops * config.cost.atomic_extra_cycles / config.warp_size.max(1) as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccessKind;

    fn cfg() -> GpuConfig {
        GpuConfig::tiny() // warp 4, line 16, mem 4 cyc, atomic +2, compute 1
    }

    fn compute(w: u64) -> Op {
        Op::Compute(w)
    }

    fn load(addr: u64) -> Op {
        Op::Mem(MemAccess::load4(addr))
    }

    #[test]
    fn empty_warp_has_zero_stats() {
        let stats = replay_warp(&[vec![], vec![], vec![], vec![]], &cfg());
        assert_eq!(stats, WarpStats::default());
    }

    #[test]
    fn balanced_compute_is_fully_efficient() {
        let lanes = vec![vec![compute(3)]; 4];
        let s = replay_warp(&lanes, &cfg());
        assert_eq!(s.cycles, 3);
        assert_eq!(s.useful_slots, 12);
        assert_eq!(s.issued_slots, 12);
    }

    #[test]
    fn divergent_compute_wastes_slots() {
        // One lane does 8 instructions, three do 1: SIMD runs 8 steps.
        let lanes = vec![
            vec![compute(8)],
            vec![compute(1)],
            vec![compute(1)],
            vec![compute(1)],
        ];
        let s = replay_warp(&lanes, &cfg());
        assert_eq!(s.cycles, 8);
        assert_eq!(s.useful_slots, 11);
        assert_eq!(s.issued_slots, 4 * 8);
        assert!((s.useful_slots as f64 / s.issued_slots as f64) < 0.5);
    }

    #[test]
    fn trailing_idle_lanes_count_as_issued() {
        // Lane 0 has two steps; others have one.
        let lanes = vec![
            vec![compute(1), compute(1)],
            vec![compute(1)],
            vec![compute(1)],
            vec![compute(1)],
        ];
        let s = replay_warp(&lanes, &cfg());
        assert_eq!(s.steps, 2);
        assert_eq!(s.useful_slots, 5);
        assert_eq!(s.issued_slots, 8);
    }

    #[test]
    fn coalesced_loads_cost_one_transaction() {
        let lanes: Vec<Vec<Op>> = (0..4u64).map(|i| vec![load(i * 4)]).collect();
        let s = replay_warp(&lanes, &cfg());
        assert_eq!(s.mem_transactions, 1);
        assert_eq!(s.cycles, 4); // one transaction at 4 cycles
    }

    #[test]
    fn strided_loads_cost_one_transaction_each() {
        let lanes: Vec<Vec<Op>> = (0..4u64).map(|i| vec![load(i * 64)]).collect();
        let s = replay_warp(&lanes, &cfg());
        assert_eq!(s.mem_transactions, 4);
        assert_eq!(s.cycles, 16);
    }

    #[test]
    fn atomics_add_surcharge() {
        let lanes = vec![vec![Op::Mem(MemAccess {
            addr: 0,
            bytes: 4,
            kind: AccessKind::Atomic,
        })]];
        let s = replay_warp(&lanes, &cfg());
        assert_eq!(s.atomic_ops, 1);
        assert_eq!(s.cycles, 4 + 2);
    }

    #[test]
    fn mimd_ablation_has_no_lockstep_waste() {
        let mut cfg = cfg();
        cfg.timing = crate::config::TimingModel::IdealMimd;
        // Wildly skewed lanes: MIMD shares the work perfectly.
        let lanes = vec![
            vec![compute(97)],
            vec![compute(1)],
            vec![compute(1)],
            vec![compute(1)],
        ];
        let s = replay_warp(&lanes, &cfg);
        assert_eq!(s.useful_slots, 100);
        assert_eq!(s.issued_slots, 100, "no idle slots under MIMD");
        assert_eq!(s.cycles, 25, "100 instructions over 4 lanes");
        // Under lockstep the same trace costs 97 cycles.
        let lockstep = replay_lockstep(&lanes, &GpuConfig::tiny());
        assert_eq!(lockstep.cycles, 97);
    }

    #[test]
    fn mimd_counts_memory_per_access() {
        let mut cfg = cfg();
        cfg.timing = crate::config::TimingModel::IdealMimd;
        let lanes: Vec<Vec<Op>> = (0..4u64).map(|i| vec![load(i * 4)]).collect();
        let s = replay_warp(&lanes, &cfg);
        assert_eq!(s.mem_transactions, 4, "no coalescing under MIMD");
    }

    #[test]
    fn mixed_step_charges_compute_and_memory() {
        // Step 0 has one compute lane and one memory lane (divergence).
        let lanes = vec![vec![compute(2)], vec![load(0)], vec![], vec![]];
        let s = replay_warp(&lanes, &cfg());
        assert_eq!(s.cycles, 2 + 4);
        assert_eq!(s.useful_slots, 3);
        // Step weight = max(compute weight, 1 for mem) = 2.
        assert_eq!(s.issued_slots, 8);
    }
}
