//! Execution metrics: the simulator's analog of a GPU profiler.

use serde::{Deserialize, Serialize};

/// Aggregate metrics of one simulated kernel launch.
///
/// The fields correspond to the profiler counters the paper reports in
/// Table 8: total executed instructions, warp execution efficiency, and
/// the cycle count that stands in for wall-clock time.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Simulated cycles: busiest-SM total plus launch overhead.
    pub cycles: u64,
    /// Useful lane-slots executed (the paper's `#instr.`): compute
    /// operations weighted by their instruction count plus one per memory
    /// access.
    pub instructions: u64,
    /// Lane-slots *issued*, including idle lanes kept in lockstep
    /// (`warp_size × Σ per-step max-weight`). The denominator of warp
    /// efficiency.
    pub issued_slots: u64,
    /// Memory transactions after coalescing.
    pub mem_transactions: u64,
    /// Atomic operations executed.
    pub atomic_ops: u64,
    /// Number of warps launched.
    pub warps: u64,
    /// Per-SM accumulated cycles (length = configured SM count).
    pub sm_cycles: Vec<u64>,
}

impl KernelMetrics {
    /// Warp execution efficiency in `[0, 1]`: the fraction of issued SIMD
    /// lane-slots doing useful work (Table 8's `warp effi.`).
    ///
    /// Returns `1.0` for an empty launch.
    pub fn warp_efficiency(&self) -> f64 {
        if self.issued_slots == 0 {
            1.0
        } else {
            self.instructions as f64 / self.issued_slots as f64
        }
    }

    /// Cycle imbalance across SMs: busiest-SM cycles over mean cycles.
    /// `1.0` means perfectly balanced; large values indicate inter-warp
    /// load imbalance (§2.3).
    pub fn sm_imbalance(&self) -> f64 {
        if self.sm_cycles.is_empty() {
            return 1.0;
        }
        let max = *self.sm_cycles.iter().max().unwrap() as f64;
        let sum: u64 = self.sm_cycles.iter().sum();
        let mean = sum as f64 / self.sm_cycles.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Accumulates `other` into `self` (SM cycles add element-wise;
    /// kernels run back-to-back, so total cycles add).
    pub fn merge(&mut self, other: &KernelMetrics) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.issued_slots += other.issued_slots;
        self.mem_transactions += other.mem_transactions;
        self.atomic_ops += other.atomic_ops;
        self.warps += other.warps;
        if self.sm_cycles.len() < other.sm_cycles.len() {
            self.sm_cycles.resize(other.sm_cycles.len(), 0);
        }
        for (a, b) in self.sm_cycles.iter_mut().zip(&other.sm_cycles) {
            *a += b;
        }
    }
}

/// Metrics of one BSP iteration of a graph algorithm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationTrace {
    /// Iteration index, starting at 0.
    pub iteration: usize,
    /// Number of threads launched (active virtual or physical nodes).
    pub threads: usize,
    /// Kernel metrics of this iteration.
    pub metrics: KernelMetrics,
}

/// Full execution report of a multi-iteration graph-algorithm run: what
/// the engine returns alongside the computed values.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// One trace per BSP iteration, in order.
    pub iterations: Vec<IterationTrace>,
}

impl SimReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        SimReport::default()
    }

    /// Appends an iteration trace.
    pub fn push(&mut self, threads: usize, metrics: KernelMetrics) {
        self.iterations.push(IterationTrace {
            iteration: self.iterations.len(),
            threads,
            metrics,
        });
    }

    /// Number of iterations executed (Table 8's `#iter`).
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Sum of all iterations' metrics.
    pub fn total(&self) -> KernelMetrics {
        let mut total = KernelMetrics::default();
        for it in &self.iterations {
            total.merge(&it.metrics);
        }
        total
    }

    /// Total simulated cycles across iterations.
    pub fn total_cycles(&self) -> u64 {
        self.iterations.iter().map(|i| i.metrics.cycles).sum()
    }

    /// Mean cycles per iteration (Table 8's `time / iter.`), `0.0` when
    /// empty.
    pub fn cycles_per_iteration(&self) -> f64 {
        if self.iterations.is_empty() {
            0.0
        } else {
            self.total_cycles() as f64 / self.iterations.len() as f64
        }
    }

    /// Aggregate warp efficiency over the whole run.
    pub fn warp_efficiency(&self) -> f64 {
        self.total().warp_efficiency()
    }

    /// Writes the per-iteration metrics as CSV (header + one row per
    /// iteration), for plotting outside the harness.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    ///
    /// # Example
    ///
    /// ```
    /// # use tigr_sim::{KernelMetrics, SimReport};
    /// let mut report = SimReport::new();
    /// report.push(8, KernelMetrics::default());
    /// let mut csv = Vec::new();
    /// report.write_csv(&mut csv)?;
    /// let text = String::from_utf8(csv).unwrap();
    /// assert!(text.starts_with("iteration,threads,cycles"));
    /// assert_eq!(text.lines().count(), 2);
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn write_csv<W: std::io::Write>(&self, mut out: W) -> std::io::Result<()> {
        writeln!(
            out,
            "iteration,threads,cycles,instructions,issued_slots,mem_transactions,atomic_ops,warps,warp_efficiency"
        )?;
        for it in &self.iterations {
            let m = &it.metrics;
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{:.6}",
                it.iteration,
                it.threads,
                m.cycles,
                m.instructions,
                m.issued_slots,
                m.mem_transactions,
                m.atomic_ops,
                m.warps,
                m.warp_efficiency()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycles: u64, instr: u64, issued: u64) -> KernelMetrics {
        KernelMetrics {
            cycles,
            instructions: instr,
            issued_slots: issued,
            mem_transactions: 5,
            atomic_ops: 2,
            warps: 1,
            sm_cycles: vec![cycles, 0],
        }
    }

    #[test]
    fn efficiency_is_useful_over_issued() {
        let m = sample(10, 50, 100);
        assert!((m.warp_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_launch_is_fully_efficient() {
        assert_eq!(KernelMetrics::default().warp_efficiency(), 1.0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = sample(10, 50, 100);
        a.merge(&sample(5, 25, 50));
        assert_eq!(a.cycles, 15);
        assert_eq!(a.instructions, 75);
        assert_eq!(a.issued_slots, 150);
        assert_eq!(a.mem_transactions, 10);
        assert_eq!(a.atomic_ops, 4);
        assert_eq!(a.warps, 2);
        assert_eq!(a.sm_cycles, vec![15, 0]);
    }

    #[test]
    fn merge_grows_sm_vector() {
        let mut a = KernelMetrics::default();
        a.merge(&sample(7, 1, 1));
        assert_eq!(a.sm_cycles.len(), 2);
    }

    #[test]
    fn sm_imbalance_detects_skew() {
        let balanced = KernelMetrics {
            sm_cycles: vec![10, 10],
            ..KernelMetrics::default()
        };
        assert!((balanced.sm_imbalance() - 1.0).abs() < 1e-12);
        let skewed = KernelMetrics {
            sm_cycles: vec![20, 0],
            ..KernelMetrics::default()
        };
        assert!((skewed.sm_imbalance() - 2.0).abs() < 1e-12);
        assert_eq!(KernelMetrics::default().sm_imbalance(), 1.0);
    }

    #[test]
    fn report_aggregation() {
        let mut r = SimReport::new();
        r.push(100, sample(10, 40, 80));
        r.push(50, sample(30, 40, 40));
        assert_eq!(r.num_iterations(), 2);
        assert_eq!(r.total_cycles(), 40);
        assert!((r.cycles_per_iteration() - 20.0).abs() < 1e-12);
        assert!((r.warp_efficiency() - 80.0 / 120.0).abs() < 1e-12);
        assert_eq!(r.iterations[1].iteration, 1);
        assert_eq!(r.iterations[1].threads, 50);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut r = SimReport::new();
        r.push(100, sample(10, 40, 80));
        r.push(50, sample(30, 40, 40));
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("iteration,threads,cycles"));
        assert!(lines[1].starts_with("0,100,10,40,80,5,2,1,0.5"));
        assert!(lines[2].starts_with("1,50,30,40,40,5,2,1,1.0"));
    }

    #[test]
    fn empty_report() {
        let r = SimReport::new();
        assert_eq!(r.num_iterations(), 0);
        assert_eq!(r.cycles_per_iteration(), 0.0);
        assert_eq!(r.warp_efficiency(), 1.0);
    }
}
