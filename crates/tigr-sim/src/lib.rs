//! Deterministic GPU SIMD execution simulator.
//!
//! The Tigr paper's central claim is *architectural*: on GPUs, threads
//! execute in lockstep warps (Figure 3), so skewed per-thread work —
//! caused by power-law degree distributions — leaves SIMD lanes idle and
//! memory accesses uncoalesced. This crate reproduces exactly those
//! mechanisms in software, standing in for the paper's NVIDIA Quadro
//! P4000 (see `DESIGN.md` §2):
//!
//! * **Warp-lockstep timing** — a warp advances at the pace of its
//!   slowest lane; per-warp cost is the max over lanes per step
//!   ([`GpuSimulator`]).
//! * **Memory coalescing** — the addresses issued by a warp's lanes in
//!   the same step are grouped into cache-line-sized transactions
//!   ([`coalesce_transactions`]); strided access patterns cost more
//!   transactions.
//! * **SM occupancy** — warps are distributed over streaming
//!   multiprocessors; kernel time is the busiest SM's cycle count,
//!   capturing inter-warp imbalance.
//! * **Warp efficiency, instruction, and transaction counters**
//!   ([`KernelMetrics`]) — the quantities in the paper's Table 8.
//! * **Device memory budget** ([`DeviceMemory`]) — reproduces the
//!   out-of-memory failures of Table 4.
//!
//! Kernels are ordinary Rust closures that perform the *real* computation
//! on host memory while recording a per-lane trace of compute and memory
//! operations through [`Lane`]. The executor replays the traces in
//! warp-lockstep order to produce timing.
//!
//! # Example
//!
//! ```
//! use tigr_sim::{GpuConfig, GpuSimulator, Lane};
//!
//! let sim = GpuSimulator::new(GpuConfig::default());
//! // 64 threads; thread i performs i%4+1 "instructions" -> intra-warp divergence.
//! let metrics = sim.launch(64, |tid: usize, lane: &mut Lane| {
//!     lane.compute((tid % 4) as u64 + 1);
//! });
//! assert!(metrics.warp_efficiency() < 1.0);
//! assert!(metrics.cycles > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod device_mem;
mod executor;
mod memory;
mod metrics;
mod warp;

pub use config::{CostModel, GpuConfig, TimingModel};
pub use device_mem::{DeviceMemory, OutOfMemory};
pub use executor::{GpuSimulator, Lane};
pub use memory::{coalesce_transactions, AccessKind, MemAccess};
pub use metrics::{IterationTrace, KernelMetrics, SimReport};
pub use warp::WarpStats;
