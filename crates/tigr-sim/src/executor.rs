//! Kernel launch machinery: grids, lanes, and SM accounting.

use std::num::NonZeroUsize;

use crate::config::GpuConfig;
use crate::memory::{AccessKind, MemAccess};
use crate::metrics::KernelMetrics;
use crate::warp::replay_warp;

/// One operation recorded by a lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op {
    /// `n` back-to-back arithmetic/control instructions.
    Compute(u64),
    /// One memory access.
    Mem(MemAccess),
}

/// Recording handle passed to a kernel closure: the simulated "thread".
///
/// The kernel does its real work on host data and mirrors each costed
/// action onto the lane: [`Lane::compute`] for arithmetic, and the
/// load/store/atomic methods for memory traffic with *simulated* byte
/// addresses (see [`GpuSimulator::launch`]).
#[derive(Debug, Default)]
pub struct Lane {
    ops: Vec<Op>,
}

impl Lane {
    /// Records `n` arithmetic/control instructions.
    ///
    /// Consecutive `compute` calls fuse into one lockstep step of weight
    /// `n₁ + n₂`; memory accesses break the fusion, which keeps lanes with
    /// identical control flow aligned step-for-step.
    pub fn compute(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(Op::Compute(w)) = self.ops.last_mut() {
            *w += n;
        } else {
            self.ops.push(Op::Compute(n));
        }
    }

    /// Records a load of `bytes` bytes at simulated address `addr`.
    pub fn load(&mut self, addr: u64, bytes: u64) {
        self.ops.push(Op::Mem(MemAccess {
            addr,
            bytes,
            kind: AccessKind::Load,
        }));
    }

    /// Records a store of `bytes` bytes at simulated address `addr`.
    pub fn store(&mut self, addr: u64, bytes: u64) {
        self.ops.push(Op::Mem(MemAccess {
            addr,
            bytes,
            kind: AccessKind::Store,
        }));
    }

    /// Records an atomic read-modify-write (e.g. `atomicMin`) at `addr`.
    pub fn atomic(&mut self, addr: u64, bytes: u64) {
        self.ops.push(Op::Mem(MemAccess {
            addr,
            bytes,
            kind: AccessKind::Atomic,
        }));
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if no operations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn clear(&mut self) {
        self.ops.clear();
    }

    #[cfg(test)]
    pub(crate) fn ops(&self) -> &[Op] {
        &self.ops
    }

    #[cfg(test)]
    pub(crate) fn take_ops(&mut self) -> Vec<Op> {
        std::mem::take(&mut self.ops)
    }
}

/// The simulated GPU: launches kernels over thread grids and accounts
/// their cost under the configured [`GpuConfig`].
#[derive(Clone, Debug)]
pub struct GpuSimulator {
    config: GpuConfig,
    host_threads: usize,
}

impl GpuSimulator {
    /// Creates a simulator for the given device configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` is structurally invalid (see
    /// [`GpuConfig::validate`]).
    pub fn new(config: GpuConfig) -> Self {
        config.validate();
        GpuSimulator {
            config,
            host_threads: 1,
        }
    }

    /// Creates a simulator that replays warps on all available host cores.
    ///
    /// The aggregation itself is order-independent (sums and maxima
    /// commute), so a kernel whose per-lane traces do not depend on
    /// cross-thread races produces metrics identical to sequential
    /// replay. Kernels with racy side effects (e.g. "first thread to
    /// claim a node logs the enqueue") keep exact *results* for monotone
    /// programs but may shift a few trace details between lanes — the
    /// same nondeterminism real GPU profilers exhibit.
    pub fn new_parallel(config: GpuConfig) -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(config).with_host_threads(threads)
    }

    /// Sets the number of host threads used to replay warps.
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.host_threads = threads.max(1);
        self
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Launches `kernel` over a grid of `num_threads` threads and returns
    /// the aggregated metrics.
    ///
    /// The kernel closure receives the thread id and a [`Lane`] recorder.
    /// Threads are grouped into warps of `config.warp_size`; warps are
    /// assigned round-robin to SMs; the kernel's cycle count is the
    /// busiest SM's total plus the fixed launch overhead.
    ///
    /// When the simulator was built with multiple host threads, warps are
    /// replayed concurrently. The kernel must then tolerate concurrent
    /// execution (use atomics for shared host data) — the same discipline
    /// real CUDA kernels need.
    pub fn launch<F>(&self, num_threads: usize, kernel: F) -> KernelMetrics
    where
        F: Fn(usize, &mut Lane) + Sync,
    {
        let ws = self.config.warp_size;
        let num_warps = num_threads.div_ceil(ws);
        let mut metrics = if self.host_threads <= 1 || num_warps < 2 {
            self.run_warp_range(0, num_warps, num_threads, &kernel)
        } else {
            let workers = self.host_threads.min(num_warps);
            let chunk = num_warps.div_ceil(workers);
            let mut partials: Vec<KernelMetrics> = Vec::with_capacity(workers);
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for w in 0..workers {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(num_warps);
                    let kernel = &kernel;
                    handles.push(
                        scope.spawn(move || self.run_warp_range(lo, hi, num_threads, kernel)),
                    );
                }
                for h in handles {
                    partials.push(h.join().expect("simulator worker panicked"));
                }
            });
            let mut total = KernelMetrics {
                sm_cycles: vec![0; self.config.num_sms],
                ..KernelMetrics::default()
            };
            for p in &partials {
                // Partial metrics describe disjoint warp sets running in
                // the same launch: everything accumulates element-wise.
                total.instructions += p.instructions;
                total.issued_slots += p.issued_slots;
                total.mem_transactions += p.mem_transactions;
                total.atomic_ops += p.atomic_ops;
                total.warps += p.warps;
                for (a, b) in total.sm_cycles.iter_mut().zip(&p.sm_cycles) {
                    *a += b;
                }
            }
            total
        };

        metrics.cycles = metrics.sm_cycles.iter().copied().max().unwrap_or(0)
            + self.config.cost.kernel_launch_cycles;
        metrics
    }

    fn run_warp_range<F>(
        &self,
        warp_lo: usize,
        warp_hi: usize,
        num_threads: usize,
        kernel: &F,
    ) -> KernelMetrics
    where
        F: Fn(usize, &mut Lane) + Sync,
    {
        let ws = self.config.warp_size;
        let mut metrics = KernelMetrics {
            sm_cycles: vec![0; self.config.num_sms],
            ..KernelMetrics::default()
        };
        let mut lanes: Vec<Vec<Op>> = vec![Vec::new(); ws];
        let mut recorder = Lane::default();

        for warp in warp_lo..warp_hi {
            for (lane_idx, lane_ops) in lanes.iter_mut().enumerate() {
                lane_ops.clear();
                let tid = warp * ws + lane_idx;
                if tid < num_threads {
                    recorder.clear();
                    kernel(tid, &mut recorder);
                    std::mem::swap(lane_ops, &mut recorder.ops);
                }
            }
            let stats = replay_warp(&lanes, &self.config);
            metrics.warps += 1;
            metrics.instructions += stats.useful_slots;
            metrics.issued_slots += stats.issued_slots;
            metrics.mem_transactions += stats.mem_transactions;
            metrics.atomic_ops += stats.atomic_ops;
            // Round-robin warp-to-SM assignment.
            metrics.sm_cycles[warp % self.config.num_sms] += stats.cycles;
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sim() -> GpuSimulator {
        GpuSimulator::new(GpuConfig::tiny()) // warp 4, 2 SMs, launch 10
    }

    #[test]
    fn lane_fuses_consecutive_compute() {
        let mut lane = Lane::default();
        lane.compute(2);
        lane.compute(3);
        assert_eq!(lane.ops(), &[Op::Compute(5)]);
        lane.load(0, 4);
        lane.compute(1);
        assert_eq!(lane.len(), 3);
        assert!(!lane.is_empty());
    }

    #[test]
    fn lane_ignores_zero_compute() {
        let mut lane = Lane::default();
        lane.compute(0);
        assert!(lane.is_empty());
        let _ = lane.take_ops();
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let m = sim().launch(0, |_, _| {});
        assert_eq!(m.cycles, 10);
        assert_eq!(m.warps, 0);
        assert_eq!(m.instructions, 0);
    }

    #[test]
    fn uniform_kernel_is_fully_efficient() {
        let m = sim().launch(8, |_, lane| lane.compute(5));
        assert_eq!(m.warps, 2);
        assert_eq!(m.instructions, 40);
        assert_eq!(m.issued_slots, 40);
        assert!((m.warp_efficiency() - 1.0).abs() < 1e-12);
        // 2 warps on 2 SMs, 5 cycles each: busiest SM = 5, +10 launch.
        assert_eq!(m.cycles, 15);
    }

    #[test]
    fn partial_last_warp_reduces_efficiency() {
        // 5 threads in warps of 4: second warp has 3 idle lanes.
        let m = sim().launch(5, |_, lane| lane.compute(1));
        assert_eq!(m.warps, 2);
        assert_eq!(m.instructions, 5);
        assert_eq!(m.issued_slots, 8);
    }

    #[test]
    fn skewed_kernel_has_low_efficiency_and_high_sm_imbalance() {
        // Thread 0 does 100 instructions; others do 1. All heavy work in
        // warp 0 -> SM 0.
        let m = sim().launch(8, |tid, lane| lane.compute(if tid == 0 { 100 } else { 1 }));
        assert!(m.warp_efficiency() < 0.4, "eff = {}", m.warp_efficiency());
        assert!(m.sm_imbalance() > 1.5, "imbalance = {}", m.sm_imbalance());
    }

    #[test]
    fn kernel_side_effects_actually_execute() {
        let counter = AtomicU64::new(0);
        let m = sim().launch(10, |tid, lane| {
            counter.fetch_add(tid as u64, Ordering::Relaxed);
            lane.compute(1);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 45);
        assert_eq!(m.instructions, 10);
    }

    #[test]
    fn parallel_replay_matches_sequential_metrics() {
        let kernel = |tid: usize, lane: &mut Lane| {
            lane.compute((tid % 7) as u64 + 1);
            lane.load((tid as u64) * 4, 4);
            if tid.is_multiple_of(3) {
                lane.atomic(1024 + (tid as u64 % 5) * 4, 4);
            }
        };
        let seq = sim().launch(1000, kernel);
        let par = sim().with_host_threads(4).launch(1000, kernel);
        assert_eq!(seq, par);
    }

    #[test]
    fn round_robin_sm_assignment() {
        // 4 warps on 2 SMs: warps 0,2 -> SM0; 1,3 -> SM1.
        let m = sim().launch(16, |_, lane| lane.compute(3));
        assert_eq!(m.sm_cycles, vec![6, 6]);
    }

    #[test]
    fn coalesced_vs_strided_loads_differ_in_cycles() {
        let coalesced = sim().launch(4, |tid, lane| lane.load(tid as u64 * 4, 4));
        let strided = sim().launch(4, |tid, lane| lane.load(tid as u64 * 64, 4));
        assert!(strided.cycles > coalesced.cycles);
        assert_eq!(coalesced.mem_transactions, 1);
        assert_eq!(strided.mem_transactions, 4);
    }

    #[test]
    fn new_parallel_constructs() {
        let sim = GpuSimulator::new_parallel(GpuConfig::tiny());
        let m = sim.launch(100, |_, lane| lane.compute(1));
        assert_eq!(m.instructions, 100);
    }
}
