//! Device-memory budget tracking.
//!
//! Table 4 of the paper shows CuSha and Gunrock running out of the Quadro
//! P4000's 8 GB on the two largest graphs, while Tigr-V+ and MW fit.
//! Frameworks in this reproduction declare their allocations against a
//! [`DeviceMemory`] budget so the same OOM behaviour emerges at analog
//! scale.

use std::error::Error as StdError;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error returned when an allocation exceeds the remaining device budget.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutOfMemory {
    /// Bytes the failed allocation requested.
    pub requested: u64,
    /// Bytes that were still available.
    pub available: u64,
    /// Total device capacity.
    pub capacity: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of device memory: requested {} bytes with {} of {} available",
            self.requested, self.available, self.capacity
        )
    }
}

impl StdError for OutOfMemory {}

/// A simulated device-memory arena with a fixed byte budget.
///
/// # Example
///
/// ```
/// use tigr_sim::DeviceMemory;
///
/// let mut mem = DeviceMemory::new(1024);
/// mem.alloc(1000)?;
/// assert!(mem.alloc(100).is_err());
/// mem.free(500);
/// assert!(mem.alloc(100).is_ok());
/// # Ok::<(), tigr_sim::OutOfMemory>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceMemory {
    capacity: u64,
    used: u64,
    peak: u64,
}

impl DeviceMemory {
    /// Creates a budget of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            capacity,
            used: 0,
            peak: 0,
        }
    }

    /// The paper's device: 8 GB.
    pub fn quadro_p4000() -> Self {
        DeviceMemory::new(8 * 1024 * 1024 * 1024)
    }

    /// A budget scaled by the analog's size fraction: `8 GB / denominator`,
    /// preserving the graph-size-to-memory ratio that produces Table 4's
    /// OOM entries.
    pub fn scaled(denominator: u64) -> Self {
        DeviceMemory::new(8 * 1024 * 1024 * 1024 / denominator.max(1))
    }

    /// Records an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfMemory`] if the allocation does not fit; the budget
    /// is left unchanged in that case.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        let available = self.capacity - self.used;
        if bytes > available {
            return Err(OutOfMemory {
                requested: bytes,
                available,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Records a free. Saturates at zero (double-frees are a framework
    /// accounting bug, not a simulator crash).
    pub fn free(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of allocations.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes remaining.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut m = DeviceMemory::new(100);
        m.alloc(60).unwrap();
        assert_eq!(m.used(), 60);
        assert_eq!(m.available(), 40);
        m.free(10);
        assert_eq!(m.used(), 50);
        assert_eq!(m.peak(), 60);
    }

    #[test]
    fn oom_reports_sizes_and_leaves_state() {
        let mut m = DeviceMemory::new(100);
        m.alloc(90).unwrap();
        let err = m.alloc(20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.available, 10);
        assert_eq!(err.capacity, 100);
        assert_eq!(m.used(), 90, "failed alloc must not change usage");
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn free_saturates() {
        let mut m = DeviceMemory::new(10);
        m.free(5);
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn p4000_has_8gb() {
        assert_eq!(DeviceMemory::quadro_p4000().capacity(), 8 << 30);
    }

    #[test]
    fn scaled_budget_divides_capacity() {
        assert_eq!(DeviceMemory::scaled(64).capacity(), (8 << 30) / 64);
        assert_eq!(DeviceMemory::scaled(0).capacity(), 8 << 30);
    }

    #[test]
    fn zero_sized_alloc_always_fits() {
        let mut m = DeviceMemory::new(0);
        assert!(m.alloc(0).is_ok());
        assert!(m.alloc(1).is_err());
    }
}
