//! Memory-access modeling and coalescing.
//!
//! On real GPUs, the loads and stores a warp issues in one SIMD step are
//! serviced in units of aligned cache-line segments (128 bytes on the
//! paper's hardware). If the 32 lanes touch 32 consecutive 4-byte words,
//! one transaction suffices; if they stride across the edge array — the
//! pattern §4.4 identifies in the naive virtual layout — each lane costs
//! its own transaction. Edge-array coalescing exists precisely to reduce
//! this number.

use serde::{Deserialize, Serialize};

/// Kind of a memory access, determining its simulated cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Plain load.
    Load,
    /// Plain store.
    Store,
    /// Atomic read-modify-write (e.g. the `atomicMin` of Algorithm 2);
    /// costs a transaction plus the atomic surcharge.
    Atomic,
}

/// One memory access issued by one lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Simulated byte address.
    pub addr: u64,
    /// Access width in bytes (4 for the engine's node ids and values).
    pub bytes: u64,
    /// Access kind.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Convenience constructor for a 4-byte load.
    pub fn load4(addr: u64) -> Self {
        MemAccess {
            addr,
            bytes: 4,
            kind: AccessKind::Load,
        }
    }

    /// Convenience constructor for a 4-byte store.
    pub fn store4(addr: u64) -> Self {
        MemAccess {
            addr,
            bytes: 4,
            kind: AccessKind::Store,
        }
    }

    /// Convenience constructor for a 4-byte atomic RMW.
    pub fn atomic4(addr: u64) -> Self {
        MemAccess {
            addr,
            bytes: 4,
            kind: AccessKind::Atomic,
        }
    }
}

/// Counts the aligned cache-line transactions needed to service the
/// accesses a warp issued in one lockstep step.
///
/// Accesses are grouped by the aligned segments `[k·line, (k+1)·line)`
/// they touch; each distinct segment costs one transaction, mirroring the
/// hardware's global-memory coalescer. Returns `(transactions, atomics)`
/// where `atomics` is the number of atomic accesses (each also counted in
/// `transactions`' segments but carrying an extra surcharge; concurrent
/// atomics to the same segment still serialize their RMW part, hence they
/// are tallied per access, not per segment).
///
/// # Example
///
/// ```
/// use tigr_sim::{coalesce_transactions, MemAccess};
///
/// // Four consecutive words in one 128-byte line: one transaction.
/// let accesses: Vec<MemAccess> = (0..4).map(|i| MemAccess::load4(i * 4)).collect();
/// assert_eq!(coalesce_transactions(&accesses, 128).0, 1);
///
/// // The same four words strided 128 bytes apart: four transactions.
/// let strided: Vec<MemAccess> = (0..4).map(|i| MemAccess::load4(i * 128)).collect();
/// assert_eq!(coalesce_transactions(&strided, 128).0, 4);
/// ```
pub fn coalesce_transactions(accesses: &[MemAccess], cacheline_bytes: u64) -> (u64, u64) {
    debug_assert!(cacheline_bytes > 0);
    let mut segments: Vec<u64> = Vec::with_capacity(accesses.len());
    let mut atomics = 0u64;
    for a in accesses {
        if a.kind == AccessKind::Atomic {
            atomics += 1;
        }
        let first = a.addr / cacheline_bytes;
        let last = (a.addr + a.bytes.max(1) - 1) / cacheline_bytes;
        for seg in first..=last {
            segments.push(seg);
        }
    }
    segments.sort_unstable();
    segments.dedup();
    (segments.len() as u64, atomics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_warp_step_costs_nothing() {
        assert_eq!(coalesce_transactions(&[], 128), (0, 0));
    }

    #[test]
    fn fully_coalesced_warp_is_one_transaction() {
        let acc: Vec<_> = (0..32u64).map(|i| MemAccess::load4(4096 + i * 4)).collect();
        assert_eq!(coalesce_transactions(&acc, 128).0, 1);
    }

    #[test]
    fn strided_warp_costs_one_per_lane() {
        let acc: Vec<_> = (0..32u64).map(|i| MemAccess::load4(i * 256)).collect();
        assert_eq!(coalesce_transactions(&acc, 128).0, 32);
    }

    #[test]
    fn stride_of_k_words_costs_proportionally() {
        // 32 lanes, stride 10 words (K=10 in the naive virtual layout):
        // lanes span 32*40 = 1280 bytes = 10 lines.
        let acc: Vec<_> = (0..32u64).map(|i| MemAccess::load4(i * 40)).collect();
        let (tx, _) = coalesce_transactions(&acc, 128);
        assert_eq!(tx, 10);
    }

    #[test]
    fn duplicate_addresses_collapse() {
        let acc = vec![
            MemAccess::load4(0),
            MemAccess::load4(0),
            MemAccess::load4(4),
        ];
        assert_eq!(coalesce_transactions(&acc, 128).0, 1);
    }

    #[test]
    fn access_straddling_lines_counts_both() {
        let acc = vec![MemAccess {
            addr: 126,
            bytes: 8,
            kind: AccessKind::Load,
        }];
        assert_eq!(coalesce_transactions(&acc, 128).0, 2);
    }

    #[test]
    fn atomics_are_tallied_per_access() {
        let acc = vec![
            MemAccess::atomic4(0),
            MemAccess::atomic4(4),
            MemAccess::load4(8),
        ];
        let (tx, atomics) = coalesce_transactions(&acc, 128);
        assert_eq!(tx, 1);
        assert_eq!(atomics, 2);
    }

    #[test]
    fn misaligned_base_still_groups_by_segment() {
        // Two words in the same 16-byte segment despite odd bases:
        // 17..21 and 21..25 both lie inside [16, 32).
        let acc = vec![MemAccess::load4(17), MemAccess::load4(21)];
        assert_eq!(coalesce_transactions(&acc, 16).0, 1);
    }
}
