//! Virtual split transformation (§4) and edge-array coalescing (§4.4).
//!
//! Instead of physically rewriting the graph, a [`VirtualGraph`] overlays
//! a *virtual node array* on the untouched physical CSR (Figure 10): each
//! high-degree node is represented by `⌈d/K⌉` virtual nodes, each covering
//! at most `K` of its edges. Computation is scheduled per virtual node;
//! values are read and written at the *physical* node's slot, so all
//! virtual nodes of a family observe each other's updates instantly —
//! the implicit value synchronization that makes the transformation free
//! of extra iterations (§4.1) and push-correct for every vertex-centric
//! program (Theorem 2).

use std::fmt;

use serde::{Deserialize, Serialize};

use tigr_graph::io::binary::MappedContainer;
use tigr_graph::{ArcSlice, Csr, NodeId, Plain};

/// One entry of the virtual node array.
///
/// A virtual node covers the edge flat-indices
/// `first_edge + j·stride` for `j < count` of the physical CSR.
/// Consecutive layout has `stride == 1`; the coalesced layout (§4.4)
/// uses `stride == family size` so that warp lanes running sibling
/// virtual nodes touch adjacent memory each step (Figure 12).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[repr(C)]
pub struct VirtualNode {
    /// The physical node this virtual node maps to (`map_v`, §4.1).
    pub physical: NodeId,
    /// Flat index of the first covered edge in the physical edge array.
    pub first_edge: u32,
    /// Distance between consecutive covered edges.
    pub stride: u32,
    /// Number of covered edges (`≤ K`).
    pub count: u32,
}

// SAFETY: `#[repr(C)]` over four 4-byte fields — 16 bytes, no padding,
// and every bit pattern is a valid `VirtualNode` (`NodeId` is a
// transparent `u32`). This is what lets the overlay section be
// reinterpreted in place from a mapped artifact.
unsafe impl Plain for VirtualNode {}

impl VirtualNode {
    /// Iterator over the flat edge indices this virtual node covers.
    pub fn edge_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.count as usize).map(move |j| self.first_edge as usize + j * self.stride as usize)
    }
}

/// The virtual node array overlaying a physical CSR.
///
/// Built by [`VirtualGraph::new`] (consecutive edge assignment) or
/// [`VirtualGraph::coalesced`] (strided assignment, the `Tigr-V+`
/// layout). The physical graph is *not* stored here — the engine passes
/// graph and overlay together, mirroring how the CUDA implementation
/// keeps both arrays on device.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualGraph {
    vnodes: ArcSlice<VirtualNode>,
    /// `first_vnode[v]..first_vnode[v+1]` indexes the virtual nodes of
    /// physical node `v` (families are contiguous in `vnodes`).
    first_vnode: ArcSlice<u32>,
    physical_nodes: usize,
    physical_edges: usize,
    k: u32,
    coalesced: bool,
}

impl VirtualGraph {
    /// Builds the virtual node array with *consecutive* edge assignment
    /// (Figure 10b): virtual node `j` of a family covers edges
    /// `[jK, (j+1)K)` of its physical node.
    ///
    /// Runs in `O(|V| + |E|/K)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(g: &Csr, k: u32) -> Self {
        Self::build(g, k, false)
    }

    /// Builds the virtual node array with *strided* edge assignment
    /// (§4.4, Figure 12): virtual node `j` of a `B`-member family covers
    /// edges `j, j+B, j+2B, …`, so sibling virtual nodes scheduled into
    /// the same warp access consecutive edge-array words each step.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn coalesced(g: &Csr, k: u32) -> Self {
        Self::build(g, k, true)
    }

    fn build(g: &Csr, k: u32, coalesced: bool) -> Self {
        assert!(k >= 1, "degree bound K must be at least 1");
        let kk = k as usize;
        let mut vnodes = Vec::with_capacity(g.num_nodes() + g.num_edges() / kk);
        let mut first_vnode = Vec::with_capacity(g.num_nodes() + 1);

        for v in g.nodes() {
            first_vnode.push(vnodes.len() as u32);
            let d = g.out_degree(v);
            let start = g.edge_start(v) as u32;
            if d == 0 {
                // Zero-degree nodes still get one virtual node so that
                // pull-style programs can schedule them; it covers no edges.
                vnodes.push(VirtualNode {
                    physical: v,
                    first_edge: start,
                    stride: 1,
                    count: 0,
                });
                continue;
            }
            let families = d.div_ceil(kk);
            for j in 0..families {
                let (first, stride, count) = if coalesced {
                    // Member j takes edges j, j+B, j+2B, ...
                    (
                        start + j as u32,
                        families as u32,
                        ((d - j).div_ceil(families)) as u32,
                    )
                } else {
                    let lo = j * kk;
                    (start + lo as u32, 1u32, (d - lo).min(kk) as u32)
                };
                vnodes.push(VirtualNode {
                    physical: v,
                    first_edge: first,
                    stride,
                    count,
                });
            }
        }

        first_vnode.push(vnodes.len() as u32);
        VirtualGraph {
            vnodes: vnodes.into(),
            first_vnode: first_vnode.into(),
            physical_nodes: g.num_nodes(),
            physical_edges: g.num_edges(),
            k,
            coalesced,
        }
    }

    /// The contiguous range of virtual-node indices belonging to physical
    /// node `v` — used by worklist scheduling to activate a whole family
    /// when its physical value improves.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vnode_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.first_vnode[v.index()] as usize..self.first_vnode[v.index() + 1] as usize
    }

    /// Expands a list of active *physical* nodes into the virtual-node
    /// indices of their families, in family order — the frontier
    /// expansion a worklist scheduler performs before launching one
    /// thread per active virtual node (top-down direction-optimizing BFS
    /// and the push engine's sparse frontier both use this).
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn expand_active(&self, active: &[u32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(active.len());
        self.expand_active_into(active, &mut out);
        out
    }

    /// [`VirtualGraph::expand_active`] into a caller-owned buffer
    /// (cleared first), so BSP drivers expanding a frontier every
    /// iteration can reuse one allocation.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn expand_active_into(&self, active: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(active.len());
        for &p in active {
            for i in self.vnode_range(NodeId::new(p)) {
                out.push(i as u32);
            }
        }
    }

    /// Number of virtual nodes (= threads to schedule).
    pub fn num_virtual_nodes(&self) -> usize {
        self.vnodes.len()
    }

    /// Number of physical nodes of the underlying graph.
    pub fn num_physical_nodes(&self) -> usize {
        self.physical_nodes
    }

    /// The degree bound `K`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// `true` for the edge-array-coalesced (`Tigr-V+`) layout.
    pub fn is_coalesced(&self) -> bool {
        self.coalesced
    }

    /// The virtual node at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn vnode(&self, i: usize) -> VirtualNode {
        self.vnodes[i]
    }

    /// All virtual nodes, in schedule order (families are contiguous).
    pub fn vnodes(&self) -> &[VirtualNode] {
        &self.vnodes
    }

    /// Largest number of edges any virtual node covers (`≤ K`).
    pub fn max_virtual_degree(&self) -> usize {
        self.vnodes
            .iter()
            .map(|v| v.count as usize)
            .max()
            .unwrap_or(0)
    }

    /// `true` when both overlay tables borrow a memory-mapped segment
    /// rather than owned heap allocations.
    pub fn is_mapped(&self) -> bool {
        self.vnodes.is_mapped() && self.first_vnode.is_mapped()
    }

    /// Heap bytes owned by the overlay tables (zero when fully mapped).
    pub fn heap_bytes(&self) -> usize {
        self.vnodes.heap_bytes() + self.first_vnode.heap_bytes()
    }

    /// Bytes served from a mapped segment (zero when fully owned).
    pub fn mapped_bytes(&self) -> usize {
        let vnode_bytes = self.vnodes.len() * std::mem::size_of::<VirtualNode>();
        let index_bytes = self.first_vnode.len() * std::mem::size_of::<u32>();
        match (self.vnodes.is_mapped(), self.first_vnode.is_mapped()) {
            (true, true) => vnode_bytes + index_bytes,
            (true, false) => vnode_bytes,
            (false, true) => index_bytes,
            (false, false) => 0,
        }
    }

    /// Size in bytes of the virtual node array under the paper's
    /// accounting: 8 bytes per entry (physical id + edge pointer) for the
    /// consecutive layout, 12 bytes (physical id + offset + stride) for
    /// the coalesced layout of Algorithm 3.
    pub fn size_bytes(&self) -> usize {
        self.vnodes.len() * if self.coalesced { 12 } else { 8 }
    }

    /// Space cost of the virtually transformed graph relative to the
    /// original CSR — the metric of Table 6: the edge array is shared, so
    /// the overhead is exactly the virtual node array (minus the original
    /// node array it replaces).
    pub fn space_cost_ratio(&self, g: &Csr) -> f64 {
        let original = g.csr_size_bytes();
        let node_array = (g.num_nodes() + 1) * 4;
        let transformed = original - node_array + self.size_bytes();
        transformed as f64 / original as f64
    }

    /// Encodes the overlay as a `TIGRCSR2` section payload (see
    /// `tigr_graph::io::binary`): `k`, coalesced flag, physical counts,
    /// then the virtual node array and the family index, all
    /// little-endian.
    pub fn to_section_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let mut buf = Vec::with_capacity(32 + self.vnodes.len() * 16 + self.first_vnode.len() * 4);
        buf.put_u32_le(self.k);
        buf.put_u32_le(self.coalesced as u32);
        buf.put_u64_le(self.physical_nodes as u64);
        buf.put_u64_le(self.physical_edges as u64);
        buf.put_u64_le(self.vnodes.len() as u64);
        for vn in self.vnodes.iter() {
            buf.put_u32_le(vn.physical.raw());
            buf.put_u32_le(vn.first_edge);
            buf.put_u32_le(vn.stride);
            buf.put_u32_le(vn.count);
        }
        for &f in self.first_vnode.iter() {
            buf.put_u32_le(f);
        }
        buf
    }

    /// Decodes an overlay from a section payload produced by
    /// [`VirtualGraph::to_section_bytes`], validating sizes and the
    /// family-index invariants before construction.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation on malformed input.
    pub fn from_section_bytes(payload: &[u8]) -> Result<Self, String> {
        use bytes::Buf;
        let mut cur = payload;
        if cur.len() < 32 {
            return Err("truncated overlay section".into());
        }
        let k = cur.get_u32_le();
        let coalesced = match cur.get_u32_le() {
            0 => false,
            1 => true,
            other => return Err(format!("bad coalesced flag {other}")),
        };
        let physical_nodes = cur.get_u64_le() as usize;
        let physical_edges = cur.get_u64_le() as usize;
        let count = cur.get_u64_le() as usize;
        let need = count as u128 * 16 + (physical_nodes as u128 + 1) * 4;
        if cur.remaining() as u128 != need {
            return Err(format!(
                "overlay payload size mismatch: need {need} bytes, have {}",
                cur.remaining()
            ));
        }
        if k == 0 {
            return Err("overlay has K = 0".into());
        }
        let mut vnodes = Vec::with_capacity(count);
        for _ in 0..count {
            vnodes.push(VirtualNode {
                physical: NodeId::new(cur.get_u32_le()),
                first_edge: cur.get_u32_le(),
                stride: cur.get_u32_le(),
                count: cur.get_u32_le(),
            });
        }
        let mut first_vnode = Vec::with_capacity(physical_nodes + 1);
        for _ in 0..=physical_nodes {
            first_vnode.push(cur.get_u32_le());
        }
        if first_vnode.first() != Some(&0)
            || first_vnode.last() != Some(&(count as u32))
            || first_vnode.windows(2).any(|w| w[0] > w[1])
            || vnodes.iter().any(|v| v.physical.index() >= physical_nodes)
        {
            return Err("inconsistent overlay family index".into());
        }
        Ok(VirtualGraph {
            vnodes: vnodes.into(),
            first_vnode: first_vnode.into(),
            physical_nodes,
            physical_edges,
            k,
            coalesced,
        })
    }

    /// Opens an overlay directly over a mapped container section: the
    /// vnode table and family index borrow the artifact's bytes instead
    /// of being decoded (little-endian targets; elsewhere, or when
    /// alignment defeats the reinterpret, the owned decoder runs).
    /// Returns `Ok(None)` when the section is absent.
    ///
    /// With `validate` the same family-index invariants as
    /// [`VirtualGraph::from_section_bytes`] are checked; without, the
    /// `O(|vnodes|)` scan is skipped for lazy-verify opens of trusted
    /// artifacts.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation on malformed input.
    pub fn from_container(
        container: &MappedContainer,
        section_id: u32,
        validate: bool,
    ) -> Result<Option<Self>, String> {
        use bytes::Buf;
        let Some(r) = container.section(section_id) else {
            return Ok(None);
        };
        let payload = container
            .section_bytes(section_id)
            .expect("section just found");
        #[cfg(target_endian = "little")]
        {
            let mut cur = payload;
            if cur.len() < 32 {
                return Err("truncated overlay section".into());
            }
            let k = cur.get_u32_le();
            let coalesced = match cur.get_u32_le() {
                0 => false,
                1 => true,
                other => return Err(format!("bad coalesced flag {other}")),
            };
            let physical_nodes = cur.get_u64_le() as usize;
            let physical_edges = cur.get_u64_le() as usize;
            let count = cur.get_u64_le() as usize;
            let need = count as u128 * 16 + (physical_nodes as u128 + 1) * 4;
            if cur.remaining() as u128 != need {
                return Err(format!(
                    "overlay payload size mismatch: need {need} bytes, have {}",
                    cur.remaining()
                ));
            }
            if k == 0 {
                return Err("overlay has K = 0".into());
            }
            let seg = container.segment();
            let vn_off = r.offset + 32;
            let fv_off = vn_off + count * 16;
            let views = (
                ArcSlice::<VirtualNode>::from_segment(std::sync::Arc::clone(seg), vn_off, count),
                ArcSlice::<u32>::from_segment(
                    std::sync::Arc::clone(seg),
                    fv_off,
                    physical_nodes + 1,
                ),
            );
            if let (Some(vnodes), Some(first_vnode)) = views {
                if validate
                    && (first_vnode.first() != Some(&0)
                        || first_vnode.last() != Some(&(count as u32))
                        || first_vnode.windows(2).any(|w| w[0] > w[1])
                        || vnodes.iter().any(|v| v.physical.index() >= physical_nodes))
                {
                    return Err("inconsistent overlay family index".into());
                }
                return Ok(Some(VirtualGraph {
                    vnodes,
                    first_vnode,
                    physical_nodes,
                    physical_edges,
                    k,
                    coalesced,
                }));
            }
        }
        Self::from_section_bytes(payload).map(Some)
    }

    /// Checks the overlay against its physical graph: every physical edge
    /// must be covered by exactly one virtual node of its source's family
    /// (the disjointness Theorem 3 relies on).
    ///
    /// Returns an error description on violation.
    pub fn validate_against(&self, g: &Csr) -> Result<(), String> {
        if self.physical_nodes != g.num_nodes() || self.physical_edges != g.num_edges() {
            return Err(format!(
                "overlay built for {}x{} graph, got {}x{}",
                self.physical_nodes,
                self.physical_edges,
                g.num_nodes(),
                g.num_edges()
            ));
        }
        let mut covered = vec![0u8; g.num_edges()];
        for vn in self.vnodes.iter() {
            let (lo, hi) = (g.edge_start(vn.physical), g.edge_end(vn.physical));
            for e in vn.edge_indices() {
                if e < lo || e >= hi {
                    return Err(format!(
                        "virtual node of {} covers edge {e} outside [{lo}, {hi})",
                        vn.physical
                    ));
                }
                if covered[e] != 0 {
                    return Err(format!("edge {e} covered twice"));
                }
                covered[e] = 1;
            }
            if vn.count as usize > self.k as usize {
                return Err(format!(
                    "virtual node of {} covers {} edges > K={}",
                    vn.physical, vn.count, self.k
                ));
            }
        }
        if let Some(e) = covered.iter().position(|&c| c == 0) {
            return Err(format!("edge {e} not covered"));
        }
        Ok(())
    }
}

impl fmt::Debug for VirtualGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualGraph")
            .field("virtual_nodes", &self.vnodes.len())
            .field("physical_nodes", &self.physical_nodes)
            .field("k", &self.k)
            .field("coalesced", &self.coalesced)
            .finish()
    }
}

/// Cursor yielding `(flat_edge_index, simulated_address_offset)` pairs —
/// a small helper the engine uses to walk a virtual node's edges while
/// issuing simulated memory traffic.
#[derive(Clone, Copy, Debug)]
pub struct EdgeCursor {
    next: u32,
    stride: u32,
    remaining: u32,
}

impl EdgeCursor {
    /// Creates a cursor over `vn`'s covered edges.
    pub fn new(vn: &VirtualNode) -> Self {
        EdgeCursor {
            next: vn.first_edge,
            stride: vn.stride,
            remaining: vn.count,
        }
    }
}

impl Iterator for EdgeCursor {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let e = self.next as usize;
        self.next += self.stride;
        self.remaining -= 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for EdgeCursor {}

/// Dynamic ("on-the-fly") mapping reasoning (§4.1, second design): no
/// virtual node array is stored; instead each thread derives its edge
/// range and physical source at kernel time.
///
/// Our realization blocks the flat edge array into chunks of `K`: thread
/// `t` covers edges `[tK, (t+1)K)`, locating the owning physical node of
/// its first edge by binary search over `row_ptr` and walking forward
/// across node boundaries. This needs zero bytes of mapping state and
/// bounds every thread's work by `K`, trading `O(log |V|)` extra compute
/// per thread for memory — exactly the tradeoff the paper describes.
#[derive(Clone, Copy, Debug)]
pub struct OnTheFlyMapper {
    k: u32,
    num_edges: usize,
    num_nodes: usize,
}

impl OnTheFlyMapper {
    /// Creates a mapper for graph `g` with degree bound `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(g: &Csr, k: u32) -> Self {
        assert!(k >= 1, "degree bound K must be at least 1");
        OnTheFlyMapper {
            k,
            num_edges: g.num_edges(),
            num_nodes: g.num_nodes(),
        }
    }

    /// Number of threads to schedule: `⌈|E|/K⌉`.
    pub fn num_threads(&self) -> usize {
        self.num_edges.div_ceil(self.k as usize)
    }

    /// The degree bound `K`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Resolves thread `tid`'s edge block against `g`, returning the
    /// half-open flat edge range and the physical node owning the first
    /// edge, plus the number of binary-search probes performed (so the
    /// engine can charge their cost).
    ///
    /// # Panics
    ///
    /// Panics if `tid >= num_threads()` or `g` does not match the mapper.
    pub fn resolve(&self, g: &Csr, tid: usize) -> ((usize, usize), NodeId, u32) {
        assert!(tid < self.num_threads(), "thread id out of range");
        assert_eq!(g.num_edges(), self.num_edges, "graph mismatch");
        assert_eq!(g.num_nodes(), self.num_nodes, "graph mismatch");
        let lo = tid * self.k as usize;
        let hi = (lo + self.k as usize).min(self.num_edges);

        // Binary search: the last node whose edge range starts at or
        // before `lo`.
        let row_ptr = g.row_ptr();
        let mut probes = 0u32;
        let (mut a, mut b) = (0usize, g.num_nodes());
        while a + 1 < b {
            probes += 1;
            let mid = (a + b) / 2;
            if row_ptr[mid] <= lo {
                a = mid;
            } else {
                b = mid;
            }
        }
        ((lo, hi), NodeId::from_index(a), probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{rmat, star_graph, RmatConfig};
    use tigr_graph::CsrBuilder;

    #[test]
    fn consecutive_layout_matches_figure_10() {
        // Figure 10: node v2 with 6 edges, K=3 -> two virtual nodes
        // covering edges [start, start+3) and [start+3, start+6).
        let mut b = CsrBuilder::new(9);
        b.sort_neighbors(false);
        for d in [5u32, 4, 5, 4, 6, 8] {
            b.edge(2, d % 9);
        }
        b.edge(1, 2);
        let g = b.build();
        let vg = VirtualGraph::new(&g, 3);
        let hub_vnodes: Vec<_> = vg
            .vnodes()
            .iter()
            .filter(|v| v.physical == NodeId::new(2))
            .collect();
        assert_eq!(hub_vnodes.len(), 2);
        assert_eq!(hub_vnodes[0].count, 3);
        assert_eq!(hub_vnodes[1].count, 3);
        assert_eq!(hub_vnodes[0].stride, 1);
        assert_eq!(hub_vnodes[1].first_edge, hub_vnodes[0].first_edge + 3);
        vg.validate_against(&g).unwrap();
    }

    #[test]
    fn coalesced_layout_matches_figure_12() {
        // Family of 2 virtual nodes over 6 edges: member 0 takes edges
        // 0,2,4; member 1 takes 1,3,5 (offset = member id, stride = 2).
        let g = star_graph(7); // hub degree 6
        let vg = VirtualGraph::coalesced(&g, 3);
        let hub: Vec<_> = vg
            .vnodes()
            .iter()
            .filter(|v| v.physical == NodeId::new(0))
            .collect();
        assert_eq!(hub.len(), 2);
        assert_eq!(hub[0].stride, 2);
        assert_eq!(hub[1].stride, 2);
        assert_eq!(hub[0].edge_indices().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(hub[1].edge_indices().collect::<Vec<_>>(), vec![1, 3, 5]);
        vg.validate_against(&g).unwrap();
    }

    #[test]
    fn virtual_node_counts() {
        let g = star_graph(101); // hub 100 + 100 leaves (degree 0)
        let vg = VirtualGraph::new(&g, 10);
        // 10 vnodes for the hub + 1 each for the 100 leaves.
        assert_eq!(vg.num_virtual_nodes(), 110);
        assert_eq!(vg.max_virtual_degree(), 10);
        assert!(!vg.is_coalesced());
        assert_eq!(vg.k(), 10);
    }

    #[test]
    fn both_layouts_cover_every_edge_once_on_power_law_graphs() {
        let g = rmat(&RmatConfig::graph500(10, 8), 3);
        for k in [1u32, 4, 8, 10, 32] {
            VirtualGraph::new(&g, k).validate_against(&g).unwrap();
            VirtualGraph::coalesced(&g, k).validate_against(&g).unwrap();
        }
    }

    #[test]
    fn coalesced_counts_are_balanced_within_family() {
        // d=7, K=3 -> B=3 members with counts 3,2,2 (within 1 of each other).
        let g = star_graph(8);
        let vg = VirtualGraph::coalesced(&g, 3);
        let counts: Vec<u32> = vg
            .vnodes()
            .iter()
            .filter(|v| v.physical == NodeId::new(0))
            .map(|v| v.count)
            .collect();
        assert_eq!(counts, vec![3, 2, 2]);
    }

    #[test]
    fn space_cost_shrinks_with_k_as_table_6() {
        let g = rmat(&RmatConfig::graph500(12, 16), 5);
        let r4 = VirtualGraph::new(&g, 4).space_cost_ratio(&g);
        let r8 = VirtualGraph::new(&g, 8).space_cost_ratio(&g);
        let r32 = VirtualGraph::new(&g, 32).space_cost_ratio(&g);
        assert!(r4 > r8 && r8 > r32, "{r4} > {r8} > {r32}");
        assert!(r4 > 1.2 && r4 < 1.8, "K=4 overhead ≈ 25-50%: {r4}");
        assert!(r32 < 1.25, "K=32 overhead small: {r32}");
    }

    #[test]
    fn validate_catches_mismatched_graph() {
        let g = star_graph(10);
        let other = star_graph(11);
        let vg = VirtualGraph::new(&g, 3);
        assert!(vg.validate_against(&other).is_err());
    }

    #[test]
    fn edge_cursor_walks_strided() {
        let vn = VirtualNode {
            physical: NodeId::new(0),
            first_edge: 5,
            stride: 3,
            count: 4,
        };
        let c = EdgeCursor::new(&vn);
        assert_eq!(c.len(), 4);
        assert_eq!(c.collect::<Vec<_>>(), vec![5, 8, 11, 14]);
    }

    #[test]
    fn otf_mapper_resolves_blocks() {
        let g = star_graph(11); // 10 edges, all from node 0
        let m = OnTheFlyMapper::new(&g, 4);
        assert_eq!(m.num_threads(), 3);
        let ((lo, hi), src, probes) = m.resolve(&g, 0);
        assert_eq!((lo, hi), (0, 4));
        assert_eq!(src, NodeId::new(0));
        assert!(probes <= 5);
        let ((lo, hi), _, _) = m.resolve(&g, 2);
        assert_eq!((lo, hi), (8, 10));
    }

    #[test]
    fn otf_blocks_can_straddle_nodes() {
        // Node 0 has 3 edges, node 1 has 3: with K=4 block 0 covers edges
        // of both nodes; resolve reports node 0 as the owner of edge 0.
        let mut b = CsrBuilder::new(8);
        for i in 2..5u32 {
            b.edge(0, i);
        }
        for i in 5..8u32 {
            b.edge(1, i);
        }
        let g = b.build();
        let m = OnTheFlyMapper::new(&g, 4);
        assert_eq!(m.num_threads(), 2);
        let ((lo, hi), src, _) = m.resolve(&g, 0);
        assert_eq!((lo, hi), (0, 4));
        assert_eq!(src, NodeId::new(0));
        let ((_, _), src1, _) = m.resolve(&g, 1);
        assert_eq!(src1, NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn otf_rejects_bad_tid() {
        let g = star_graph(5);
        let m = OnTheFlyMapper::new(&g, 2);
        let _ = m.resolve(&g, 99);
    }

    #[test]
    fn vnode_range_covers_families() {
        let g = star_graph(25); // hub degree 24
        let vg = VirtualGraph::new(&g, 10);
        let hub = vg.vnode_range(NodeId::new(0));
        assert_eq!(hub.len(), 3); // ⌈24/10⌉
        for i in hub.clone() {
            assert_eq!(vg.vnode(i).physical, NodeId::new(0));
        }
        // Every leaf family has exactly one (empty) virtual node.
        for v in 1..25u32 {
            assert_eq!(vg.vnode_range(NodeId::new(v)).len(), 1);
        }
        // Ranges tile the whole vnode array.
        let total: usize = (0..25u32)
            .map(|v| vg.vnode_range(NodeId::new(v)).len())
            .sum();
        assert_eq!(total, vg.num_virtual_nodes());
    }

    #[test]
    fn expand_active_yields_whole_families_in_order() {
        let g = star_graph(25); // hub degree 24 -> 3 vnodes with K=10
        let vg = VirtualGraph::new(&g, 10);
        let expanded = vg.expand_active(&[0, 2]);
        let hub: Vec<u32> = vg.vnode_range(NodeId::new(0)).map(|i| i as u32).collect();
        let leaf: Vec<u32> = vg.vnode_range(NodeId::new(2)).map(|i| i as u32).collect();
        assert_eq!(expanded, [hub, leaf].concat());
        assert!(vg.expand_active(&[]).is_empty());
    }

    #[test]
    fn section_bytes_round_trip() {
        let g = rmat(&RmatConfig::graph500(9, 8), 7);
        for vg in [VirtualGraph::new(&g, 6), VirtualGraph::coalesced(&g, 6)] {
            let bytes = vg.to_section_bytes();
            let back = VirtualGraph::from_section_bytes(&bytes).unwrap();
            assert_eq!(back, vg);
            back.validate_against(&g).unwrap();
        }
    }

    #[test]
    fn section_bytes_reject_corruption() {
        let g = star_graph(20);
        let vg = VirtualGraph::new(&g, 4);
        let bytes = vg.to_section_bytes();
        assert!(VirtualGraph::from_section_bytes(&bytes[..bytes.len() - 2]).is_err());
        let mut bad_flag = bytes.clone();
        bad_flag[4] = 9;
        assert!(VirtualGraph::from_section_bytes(&bad_flag).is_err());
        let mut bad_index = bytes.clone();
        // First first_vnode entry must be zero.
        let fv_start = bytes.len() - (vg.num_physical_nodes() + 1) * 4;
        bad_index[fv_start] = 3;
        assert!(VirtualGraph::from_section_bytes(&bad_index).is_err());
    }

    #[test]
    fn overlay_opens_zero_copy_from_a_container_section() {
        use tigr_graph::io::binary::{write_container, Section, VerifyMode, SECTION_OVERLAY};
        use tigr_graph::Segment;

        let g = rmat(&RmatConfig::graph500(9, 8), 7);
        let vg = VirtualGraph::coalesced(&g, 6);
        let mut buf = Vec::new();
        write_container(
            &[Section::new(SECTION_OVERLAY, vg.to_section_bytes())],
            &mut buf,
        )
        .unwrap();
        let c = MappedContainer::from_segment(
            std::sync::Arc::new(Segment::from(buf)),
            VerifyMode::Eager,
        )
        .unwrap();
        for validate in [true, false] {
            let back = VirtualGraph::from_container(&c, SECTION_OVERLAY, validate)
                .unwrap()
                .unwrap();
            assert_eq!(back, vg);
            back.validate_against(&g).unwrap();
        }
        assert!(VirtualGraph::from_container(&c, 99, true)
            .unwrap()
            .is_none());
    }

    #[test]
    fn zero_degree_nodes_still_get_a_virtual_node() {
        let g = CsrBuilder::new(3).edge(0, 1).build();
        let vg = VirtualGraph::new(&g, 5);
        assert_eq!(vg.num_virtual_nodes(), 3);
        vg.validate_against(&g).unwrap();
    }
}
