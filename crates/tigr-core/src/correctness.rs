//! Executable correctness statements (§3.3).
//!
//! Theorem 1 and Corollaries 1–4 are the paper's guarantees that UDT (and
//! split transformations generally, given dumb weights) preserve analysis
//! results. This module states each of them as a checkable function over
//! a graph and its [`TransformedGraph`]; the test suites and the
//! verification binaries run them against the oracles in
//! [`tigr_graph::properties`].

use std::collections::HashSet;

use tigr_graph::properties::{bfs_levels, connected_components, dijkstra, reachable, widest_path};
use tigr_graph::{Csr, NodeId};

use crate::split::TransformedGraph;

/// The outcome of a correctness check: `Ok(())` or a human-readable
/// description of the first violation found.
pub type CheckResult = Result<(), String>;

/// **Definition 2** — the transformation is a *split transformation*:
/// every original outgoing edge of every node is re-attached exactly once
/// within that node's family (so `N_B ⊇ N_v`), and families are disjoint.
pub fn verify_split_definition(original: &Csr, transformed: &TransformedGraph) -> CheckResult {
    let tg = transformed.graph();
    // Collect, per family root, the multiset of original targets reached
    // by family members via original (re-attached) edges; introduced
    // edges must stay inside their family.
    let n = transformed.original_nodes();
    let mut reattached: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in tg.nodes() {
        let root = transformed.family_root(v);
        for (off, &u) in tg.neighbors(v).iter().enumerate() {
            let e = tg.edge_start(v) + off;
            if !transformed.is_new_edge(e) {
                reattached[root.index()].push(u);
            } else if transformed.family_root(u) != root {
                return Err(format!(
                    "introduced edge {v} -> {u} crosses families ({} vs {})",
                    root,
                    transformed.family_root(u)
                ));
            }
        }
    }
    for v in original.nodes() {
        let mut expect: Vec<NodeId> = original.neighbors(v).to_vec();
        expect.sort_unstable();
        let mut got = reattached[v.index()].clone();
        got.sort_unstable();
        if expect != got {
            return Err(format!(
                "node {v}: original targets {expect:?} re-attached as {got:?}"
            ));
        }
    }
    Ok(())
}

/// **Theorem 1** — path preservation: for sampled node pairs `(v1, v2)`
/// of the original graph, a path exists in the original iff one exists in
/// the transformed graph.
pub fn verify_path_preservation(
    original: &Csr,
    transformed: &TransformedGraph,
    samples: usize,
    seed: u64,
) -> CheckResult {
    let n = original.num_nodes();
    if n == 0 {
        return Ok(());
    }
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for _ in 0..samples {
        let a = NodeId::from_index((next() % n as u64) as usize);
        let b = NodeId::from_index((next() % n as u64) as usize);
        let before = reachable(original, a, b);
        let after = reachable(transformed.graph(), a, b);
        if before != after {
            return Err(format!(
                "path {a} -> {b}: exists_before={before}, exists_after={after}"
            ));
        }
    }
    Ok(())
}

/// **Corollary 1** — connectivity preservation: the weak-component
/// partition of the original nodes is identical before and after.
pub fn verify_connectivity_preservation(
    original: &Csr,
    transformed: &TransformedGraph,
) -> CheckResult {
    let before = connected_components(original);
    let after_all = connected_components(transformed.graph());
    let n = original.num_nodes();
    // Compare partitions (labels may differ): two original nodes share a
    // component before iff they do after. Canonicalize by the first
    // member of each label.
    let canon = |labels: &[u32]| -> Vec<u32> {
        let mut first: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        labels
            .iter()
            .take(n)
            .enumerate()
            .map(|(i, &l)| *first.entry(l).or_insert(i as u32))
            .collect()
    };
    let (cb, ca) = (canon(&before), canon(&after_all));
    if cb != ca {
        for i in 0..n {
            if cb[i] != ca[i] {
                return Err(format!(
                    "node {i}: component changed ({} -> {})",
                    cb[i], ca[i]
                ));
            }
        }
    }
    Ok(())
}

/// **Corollary 2** — distance preservation under zero dumb weights:
/// shortest-path distances from `src` to every original node are
/// unchanged. (BFS is the all-weights-1 special case; BC depends only on
/// distances.)
pub fn verify_distance_preservation(
    original: &Csr,
    transformed: &TransformedGraph,
    src: NodeId,
) -> CheckResult {
    let before = dijkstra(original, src);
    let after = dijkstra(transformed.graph(), src);
    for v in 0..original.num_nodes() {
        if before[v] != after[v] {
            return Err(format!(
                "distance {src} -> {v}: {} before, {} after",
                before[v], after[v]
            ));
        }
    }
    Ok(())
}

/// **Corollary 3** — bottleneck preservation under infinite dumb weights:
/// widest-path values from `src` to every original node are unchanged.
pub fn verify_bottleneck_preservation(
    original: &Csr,
    transformed: &TransformedGraph,
    src: NodeId,
) -> CheckResult {
    let before = widest_path(original, src);
    let after = widest_path(transformed.graph(), src);
    for v in 0..original.num_nodes() {
        if before[v] != after[v] {
            return Err(format!(
                "width {src} -> {v}: {} before, {} after",
                before[v], after[v]
            ));
        }
    }
    Ok(())
}

/// **Corollary 4** (push-based direction) — in-degree preservation: every
/// original node keeps exactly its original incoming edges from original
/// nodes (split transformations never touch incoming edges of other
/// nodes' families).
pub fn verify_indegree_preservation(original: &Csr, transformed: &TransformedGraph) -> CheckResult {
    let n = original.num_nodes();
    let count = |g: &Csr, limit_src: bool| -> Vec<usize> {
        let mut indeg = vec![0usize; n];
        for e in g.edges() {
            if e.dst.index() < n && (!limit_src || e.src.index() < n) {
                indeg[e.dst.index()] += 1;
            }
        }
        indeg
    };
    let before = count(original, false);
    // In the transformed graph, original targets may now be pointed at by
    // split nodes standing in for their original sources; count all.
    let after = count(transformed.graph(), false);
    for v in 0..n {
        if before[v] != after[v] {
            return Err(format!(
                "in-degree of {v}: {} before, {} after",
                before[v], after[v]
            ));
        }
    }
    Ok(())
}

/// **UDT degree bound** — after `udt_transform` with bound `K`, no node
/// exceeds out-degree `K`.
pub fn verify_degree_bound(transformed: &TransformedGraph) -> CheckResult {
    let k = transformed.k() as usize;
    let g = transformed.graph();
    for v in g.nodes() {
        if g.out_degree(v) > k {
            return Err(format!("node {v} has degree {} > K = {k}", g.out_degree(v)));
        }
    }
    Ok(())
}

/// **P3** — logarithmic hop growth: the extra BFS depth the
/// transformation introduces from `src` is bounded by
/// `⌈log_K d_max⌉ + slack` levels per original hop.
pub fn verify_logarithmic_hops(
    original: &Csr,
    transformed: &TransformedGraph,
    src: NodeId,
) -> CheckResult {
    let k = transformed.k().max(2) as f64;
    let d_max = original.max_out_degree().max(2) as f64;
    let per_hop = d_max.log(k).ceil() + 1.0;

    let before = bfs_levels(original, src);
    let after = bfs_levels(transformed.graph(), src);
    for v in 0..original.num_nodes() {
        if before[v] == usize::MAX {
            continue;
        }
        let bound = ((before[v] as f64 + 1.0) * per_hop) as usize + 1;
        if after[v] > bound {
            return Err(format!(
                "node {v}: {} hops before, {} after (bound {bound})",
                before[v], after[v]
            ));
        }
    }
    Ok(())
}

/// Runs every check applicable to a UDT transformation with zero dumb
/// weights, sampling `sources` BFS/SSSP roots. Convenience used by the
/// integration suite and the verification binary.
pub fn verify_udt_full(
    original: &Csr,
    transformed: &TransformedGraph,
    sources: &[NodeId],
) -> CheckResult {
    verify_split_definition(original, transformed)?;
    verify_degree_bound(transformed)?;
    verify_connectivity_preservation(original, transformed)?;
    verify_indegree_preservation(original, transformed)?;
    verify_path_preservation(original, transformed, 64, 0xDEC0DE)?;
    for &s in sources {
        verify_distance_preservation(original, transformed, s)?;
        verify_logarithmic_hops(original, transformed, s)?;
    }
    Ok(())
}

/// Set of graph analyses whose results a transformation preserves, per
/// the paper's applicability discussion (§3.3): connectivity-based,
/// path-based, and degree-based analyses are safe; neighborhood-based
/// ones (graph coloring, triangle counting, clique detection) are not.
pub fn preserved_analyses() -> HashSet<&'static str> {
    ["cc", "sssp", "sswp", "bc", "bfs", "pr"]
        .into_iter()
        .collect()
}

/// Analyses the paper explicitly lists as *not* preserved by split
/// transformations.
pub fn unpreserved_analyses() -> HashSet<&'static str> {
    ["graph-coloring", "triangle-counting", "clique-detection"]
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{circular_transform, star_transform, udt_transform, DumbWeight};
    use tigr_graph::generators::{barabasi_albert, with_uniform_weights, BarabasiAlbertConfig};

    fn power_law() -> Csr {
        // Symmetric BA so that node 0 is a hub and every node reaches the
        // split families — otherwise the preservation checks hold
        // trivially and the negative controls below cannot trigger.
        let g = barabasi_albert(
            &BarabasiAlbertConfig {
                num_nodes: 400,
                edges_per_node: 3,
                symmetric: true,
            },
            21,
        );
        with_uniform_weights(&g, 1, 16, 5)
    }

    #[test]
    fn udt_passes_all_checks_on_power_law_graph() {
        let g = power_law();
        let t = udt_transform(&g, 4, DumbWeight::Zero);
        assert!(t.num_split_nodes() > 0, "fixture must actually split");
        let sources = [NodeId::new(0), NodeId::new(1), NodeId::new(399)];
        verify_udt_full(&g, &t, &sources).unwrap();
    }

    #[test]
    fn udt_with_infinity_weights_preserves_bottlenecks() {
        let g = power_law();
        let t = udt_transform(&g, 4, DumbWeight::Infinity);
        verify_bottleneck_preservation(&g, &t, NodeId::new(0)).unwrap();
        verify_bottleneck_preservation(&g, &t, NodeId::new(2)).unwrap();
    }

    #[test]
    fn star_and_circular_also_preserve_distances() {
        let g = power_law();
        for t in [
            star_transform(&g, 4, DumbWeight::Zero),
            circular_transform(&g, 4, DumbWeight::Zero),
        ] {
            verify_split_definition(&g, &t).unwrap();
            verify_distance_preservation(&g, &t, NodeId::new(0)).unwrap();
            verify_connectivity_preservation(&g, &t).unwrap();
            verify_path_preservation(&g, &t, 32, 77).unwrap();
        }
    }

    #[test]
    fn degree_bound_check_rejects_star() {
        // T_star's hub can exceed K; the UDT-specific check must say so.
        let g = tigr_graph::generators::star_graph(101);
        let t = star_transform(&g, 5, DumbWeight::Zero);
        assert!(verify_degree_bound(&t).is_err());
        let u = udt_transform(&g, 5, DumbWeight::Zero);
        verify_degree_bound(&u).unwrap();
    }

    #[test]
    fn wrong_dumb_weight_breaks_distances() {
        // Negative control: infinity dumb weights do NOT preserve SSSP.
        let g = power_law();
        let t = udt_transform(&g, 4, DumbWeight::Infinity);
        assert!(
            verify_distance_preservation(&g, &t, NodeId::new(0)).is_err(),
            "infinite tree edges must break distances (that is why Corollary 2 needs zero)"
        );
    }

    #[test]
    fn wrong_dumb_weight_breaks_bottlenecks() {
        // Negative control: zero dumb weights do NOT preserve SSWP.
        let g = power_law();
        let t = udt_transform(&g, 4, DumbWeight::Zero);
        assert!(verify_bottleneck_preservation(&g, &t, NodeId::new(0)).is_err());
    }

    #[test]
    fn triangle_counting_is_not_preserved() {
        // The paper's applicability boundary (§3.3): neighborhood-based
        // analyses like triangle counting are NOT preserved by split
        // transformations. Demonstrate it: splitting a triangle's corner
        // re-routes the cycle through split nodes and changes the count.
        use tigr_graph::properties::triangle_count;
        // A triangle whose corner 0 also fans out to many leaves, forcing
        // a split of node 0 at K=2.
        let mut b = tigr_graph::CsrBuilder::new(10);
        b.edge(0, 1).edge(1, 2).edge(2, 0);
        for leaf in 3..10u32 {
            b.edge(0, leaf);
        }
        let g = b.build();
        assert_eq!(triangle_count(&g), 3);
        let t = udt_transform(&g, 2, DumbWeight::Unweighted);
        assert!(t.num_split_nodes() > 0);
        assert_ne!(
            triangle_count(t.graph()),
            triangle_count(&g),
            "UDT must break neighborhood-dependent analyses, as §3.3 states"
        );
    }

    #[test]
    fn applicability_sets_match_paper() {
        let ok = preserved_analyses();
        assert!(ok.contains("sssp") && ok.contains("cc") && ok.contains("pr"));
        let bad = unpreserved_analyses();
        assert!(bad.contains("triangle-counting"));
        assert!(ok.is_disjoint(&bad));
    }

    #[test]
    fn checks_pass_trivially_on_untransformed_graph() {
        let g = power_law();
        let t = udt_transform(&g, 100_000, DumbWeight::Zero);
        assert_eq!(t.num_split_nodes(), 0);
        verify_udt_full(&g, &t, &[NodeId::new(0)]).unwrap();
    }
}
