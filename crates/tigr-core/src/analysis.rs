//! Irregularity-reduction analysis: quantifies what each transformation
//! does to a graph's degree distribution (the quantity Figure 1
//! illustrates).

use serde::{Deserialize, Serialize};

use tigr_graph::stats::degree_stats;
use tigr_graph::Csr;

use crate::dumb_weights::DumbWeight;
use crate::split::{
    circular_transform, clique_transform, recursive_star_transform, star_transform, udt_transform,
};
use crate::virtual_graph::VirtualGraph;

/// The irregularity effect of one transformation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IrregularityReduction {
    /// Transformation name.
    pub name: &'static str,
    /// Maximum out-degree after (before = the input's).
    pub max_degree_after: usize,
    /// Degree coefficient of variation after.
    pub cv_after: f64,
    /// Node-count growth factor (`1.0` = unchanged; virtual overlays
    /// report virtual nodes over physical nodes).
    pub node_growth: f64,
    /// Edge-count growth factor (`1.0` for virtual overlays — the edge
    /// array is shared).
    pub edge_growth: f64,
}

/// Compares every split topology plus the virtual overlay at degree
/// bound `k`, returning one row per design (UDT, star, recursive star,
/// circular, clique, virtual).
///
/// This is the quantitative version of the paper's Figure 1: how much
/// does each design flatten the degree distribution, and at what size
/// cost?
///
/// # Panics
///
/// Panics if `k < 2` (UDT's requirement).
pub fn compare_irregularity_reduction(g: &Csr, k: u32) -> Vec<IrregularityReduction> {
    assert!(k >= 2, "UDT requires K >= 2");
    let n0 = g.num_nodes() as f64;
    let m0 = g.num_edges() as f64;

    let mut rows = Vec::new();
    let physical: [(&'static str, crate::split::TransformedGraph); 5] = [
        ("udt", udt_transform(g, k, DumbWeight::Unweighted)),
        ("star", star_transform(g, k, DumbWeight::Unweighted)),
        (
            "recursive-star",
            recursive_star_transform(g, k, DumbWeight::Unweighted),
        ),
        ("circular", circular_transform(g, k, DumbWeight::Unweighted)),
        ("clique", clique_transform(g, k, DumbWeight::Unweighted)),
    ];
    for (name, t) in physical {
        let s = degree_stats(t.graph());
        rows.push(IrregularityReduction {
            name,
            max_degree_after: s.max_degree,
            cv_after: s.coefficient_of_variation,
            node_growth: t.graph().num_nodes() as f64 / n0.max(1.0),
            edge_growth: t.graph().num_edges() as f64 / m0.max(1.0),
        });
    }

    // Virtual overlay: the "degree" seen by the scheduler is the virtual
    // node's edge count.
    let overlay = VirtualGraph::new(g, k);
    let counts: Vec<usize> = overlay.vnodes().iter().map(|v| v.count as usize).collect();
    let vn = counts.len() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / vn.max(1.0);
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / vn.max(1.0);
    rows.push(IrregularityReduction {
        name: "virtual",
        max_degree_after: overlay.max_virtual_degree(),
        cv_after: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
        node_growth: vn / n0.max(1.0),
        edge_growth: 1.0,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{rmat, RmatConfig};

    #[test]
    fn every_design_reduces_max_degree() {
        let g = rmat(&RmatConfig::graph500(10, 8), 19);
        let before = g.max_out_degree();
        let rows = compare_irregularity_reduction(&g, 8);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(
                r.max_degree_after < before,
                "{}: {} !< {before}",
                r.name,
                r.max_degree_after
            );
        }
    }

    #[test]
    fn udt_and_virtual_hit_the_bound_exactly() {
        let g = rmat(&RmatConfig::graph500(10, 8), 20);
        let rows = compare_irregularity_reduction(&g, 8);
        let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
        assert!(get("udt").max_degree_after <= 8);
        assert!(get("virtual").max_degree_after <= 8);
        // Star's hub can exceed the bound.
        assert!(get("star").max_degree_after >= get("udt").max_degree_after);
    }

    #[test]
    fn clique_has_the_worst_edge_growth() {
        let g = tigr_graph::generators::star_graph(2001);
        let rows = compare_irregularity_reduction(&g, 8);
        let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
        assert!(get("clique").edge_growth > get("udt").edge_growth);
        assert!(get("clique").edge_growth > get("circular").edge_growth);
        assert_eq!(
            get("virtual").edge_growth,
            1.0,
            "overlay shares the edge array"
        );
    }

    #[test]
    fn reduces_cv_on_power_law_input() {
        let g = rmat(&RmatConfig::heavy_tail(11, 8), 21);
        let before = tigr_graph::stats::degree_stats(&g).coefficient_of_variation;
        let rows = compare_irregularity_reduction(&g, 8);
        for r in rows
            .iter()
            .filter(|r| r.name == "udt" || r.name == "virtual")
        {
            assert!(
                r.cv_after < before / 2.0,
                "{}: CV {} vs input {before}",
                r.name,
                r.cv_after
            );
        }
    }

    #[test]
    #[should_panic(expected = "UDT requires K >= 2")]
    fn k_below_two_rejected() {
        let g = tigr_graph::generators::star_graph(10);
        let _ = compare_irregularity_reduction(&g, 1);
    }
}
