//! The in-memory delta overlay: per-node adjacency patches over an
//! immutable base CSR.
//!
//! The overlay never copies the base. Added edges live in small
//! per-source vectors, removed base edges are a set of flat edge
//! indices, and weight changes are an index-keyed override map, so the
//! memory cost is proportional to the *delta*, not the graph. The
//! merged adjacency is exposed two ways: [`OverlayView`] implements
//! [`GraphView`] for kernels that stream edges (no materialization),
//! and [`DeltaOverlay::merged_csr`] rebuilds a full CSR through
//! [`CsrBuilder`] with its default canonical ordering — byte-identical
//! to building the merged edge list from scratch, which is what makes
//! compaction's differential guarantee hold.

use std::collections::{HashMap, HashSet};

use tigr_graph::view::GraphView;
use tigr_graph::{Csr, CsrBuilder, Edge, NodeId, Weight};

use super::{MutationError, MutationOp};

/// An in-memory patch over an immutable base [`Csr`].
#[derive(Clone, Debug)]
pub struct DeltaOverlay {
    base_nodes: usize,
    extra_nodes: usize,
    weighted: bool,
    /// Added edges per source, each list sorted by `(dst, weight)`.
    added: HashMap<u32, Vec<(u32, Weight)>>,
    /// Flat base edge indices hidden by `RemoveEdge`.
    removed: HashSet<u64>,
    /// Flat base edge index → overridden weight (weighted bases only).
    overrides: HashMap<u64, Weight>,
    added_edges: usize,
    removed_edges: usize,
}

impl DeltaOverlay {
    /// An empty overlay for `base`.
    pub fn new(base: &Csr) -> Self {
        DeltaOverlay {
            base_nodes: base.num_nodes(),
            extra_nodes: 0,
            weighted: base.is_weighted(),
            added: HashMap::new(),
            removed: HashSet::new(),
            overrides: HashMap::new(),
            added_edges: 0,
            removed_edges: 0,
        }
    }

    /// `true` when the overlay changes nothing about the base.
    pub fn is_empty(&self) -> bool {
        self.added_edges == 0
            && self.removed_edges == 0
            && self.overrides.is_empty()
            && self.extra_nodes == 0
    }

    /// Size of the delta: added + removed edges + weight overrides (the
    /// compaction-pressure metric surfaced as `delta_edges` in stats).
    pub fn delta_edges(&self) -> usize {
        self.added_edges + self.removed_edges + self.overrides.len()
    }

    /// Nodes visible through the overlay (base nodes + grown nodes).
    pub fn num_nodes(&self) -> usize {
        self.base_nodes + self.extra_nodes
    }

    /// Edges visible through the overlay.
    pub fn num_edges(&self, base: &Csr) -> usize {
        base.num_edges() - self.removed_edges + self.added_edges
    }

    /// Applies one mutation. `Ok(true)` means the op changed the graph;
    /// `Ok(false)` means it was a well-formed no-op (duplicate add,
    /// remove of an absent edge, ...) — the distinction `ingest` reports
    /// as applied vs skipped.
    ///
    /// # Errors
    ///
    /// [`MutationError::Invalid`] for out-of-range endpoints, weighted
    /// ops on unweighted graphs, or node-count overflow; the overlay is
    /// unchanged on error.
    pub fn apply(&mut self, base: &Csr, op: MutationOp) -> Result<bool, MutationError> {
        debug_assert_eq!(base.num_nodes(), self.base_nodes);
        match op {
            MutationOp::AddEdge { u, v, w } => {
                self.check_endpoints(u, v)?;
                if !self.weighted && w != 1 {
                    return Err(MutationError::Invalid(format!(
                        "edge weight {w} on an unweighted graph (only 1 is allowed)"
                    )));
                }
                if self.edge_visible(base, u, v) {
                    return Ok(false);
                }
                let list = self.added.entry(u).or_default();
                let pos = list.partition_point(|&(d, dw)| (d, dw) <= (v, w));
                list.insert(pos, (v, w));
                self.added_edges += 1;
                Ok(true)
            }
            MutationOp::RemoveEdge { u, v } => {
                self.check_endpoints(u, v)?;
                if let Some(e) = self.visible_base_edge(base, u, v) {
                    self.removed.insert(e);
                    self.overrides.remove(&e);
                    self.removed_edges += 1;
                    return Ok(true);
                }
                if let Some(list) = self.added.get_mut(&u) {
                    if let Some(pos) = list.iter().position(|&(d, _)| d == v) {
                        list.remove(pos);
                        if list.is_empty() {
                            self.added.remove(&u);
                        }
                        self.added_edges -= 1;
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            MutationOp::AddNode { nodes } => {
                if nodes as usize <= self.num_nodes() {
                    return Ok(false);
                }
                self.extra_nodes = nodes as usize - self.base_nodes;
                Ok(true)
            }
            MutationOp::SetWeight { u, v, w } => {
                self.check_endpoints(u, v)?;
                if !self.weighted {
                    return Err(MutationError::Invalid(
                        "set-weight on an unweighted graph".into(),
                    ));
                }
                if let Some(e) = self.visible_base_edge(base, u, v) {
                    let changed = self.effective_weight(base, e) != w;
                    if changed {
                        if base.weight(e as usize) == w {
                            self.overrides.remove(&e);
                        } else {
                            self.overrides.insert(e, w);
                        }
                    }
                    return Ok(changed);
                }
                if let Some(list) = self.added.get_mut(&u) {
                    if let Some(pos) = list.iter().position(|&(d, _)| d == v) {
                        if list[pos].1 == w {
                            return Ok(false);
                        }
                        list.remove(pos);
                        let at = list.partition_point(|&(d, dw)| (d, dw) <= (v, w));
                        list.insert(at, (v, w));
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Weight of base edge `e` as seen through the overlay.
    pub fn effective_weight(&self, base: &Csr, e: u64) -> Weight {
        match self.overrides.get(&e) {
            Some(&w) => w,
            None => base.weight(e as usize),
        }
    }

    /// Whether the directed edge `u → v` is visible (base not-removed,
    /// or added).
    pub fn edge_visible(&self, base: &Csr, u: u32, v: u32) -> bool {
        self.visible_base_edge(base, u, v).is_some()
            || self
                .added
                .get(&u)
                .is_some_and(|l| l.iter().any(|&(d, _)| d == v))
    }

    /// First not-removed base edge `u → v`, as a flat edge index.
    fn visible_base_edge(&self, base: &Csr, u: u32, v: u32) -> Option<u64> {
        if u as usize >= self.base_nodes {
            return None;
        }
        let node = NodeId::new(u);
        (base.edge_start(node)..base.edge_end(node)).find_map(|e| {
            (base.edge_target(e).raw() == v && !self.removed.contains(&(e as u64)))
                .then_some(e as u64)
        })
    }

    fn check_endpoints(&self, u: u32, v: u32) -> Result<(), MutationError> {
        let n = self.num_nodes();
        for node in [u, v] {
            if node as usize >= n {
                return Err(MutationError::Invalid(format!(
                    "node {node} out of range for {n} nodes (add-node first)"
                )));
            }
        }
        Ok(())
    }

    /// Borrows base+delta as a [`GraphView`].
    pub fn view<'a>(&'a self, base: &'a Csr) -> OverlayView<'a> {
        OverlayView { base, delta: self }
    }

    /// The full visible edge list (order unspecified; the builder
    /// canonicalizes).
    pub fn merged_edges(&self, base: &Csr) -> Vec<Edge> {
        let mut edges = Vec::with_capacity(self.num_edges(base));
        for u in 0..self.base_nodes as u32 {
            let node = NodeId::new(u);
            for e in base.edge_start(node)..base.edge_end(node) {
                if !self.removed.contains(&(e as u64)) {
                    let w = if self.weighted {
                        self.effective_weight(base, e as u64)
                    } else {
                        1
                    };
                    edges.push(Edge::new(node, base.edge_target(e), w));
                }
            }
        }
        for (&u, list) in &self.added {
            for &(v, w) in list {
                edges.push(Edge::new(NodeId::new(u), NodeId::new(v), w));
            }
        }
        edges
    }

    /// Materializes base+delta into a standalone CSR through
    /// [`CsrBuilder`]'s default canonical ordering — byte-identical to
    /// building the same edge list from scratch.
    pub fn merged_csr(&self, base: &Csr) -> Csr {
        let mut b = CsrBuilder::from_edges(self.num_nodes(), self.merged_edges(base));
        b.force_weighted(self.weighted);
        b.build()
    }
}

/// Base+delta as a zero-copy [`GraphView`]: edge iteration streams the
/// base CSR's adjacency (skipping removed edges, applying weight
/// overrides) followed by the overlay's added edges.
#[derive(Clone, Copy, Debug)]
pub struct OverlayView<'a> {
    base: &'a Csr,
    delta: &'a DeltaOverlay,
}

impl OverlayView<'_> {
    /// The underlying base CSR.
    pub fn base(&self) -> &Csr {
        self.base
    }
}

impl GraphView for OverlayView<'_> {
    fn num_nodes(&self) -> usize {
        self.delta.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.delta.num_edges(self.base)
    }

    fn is_weighted(&self) -> bool {
        self.delta.weighted
    }

    fn out_degree(&self, u: NodeId) -> usize {
        let added = self.delta.added.get(&u.raw()).map_or(0, Vec::len);
        if u.index() >= self.delta.base_nodes {
            return added;
        }
        let removed = (self.base.edge_start(u)..self.base.edge_end(u))
            .filter(|e| self.delta.removed.contains(&(*e as u64)))
            .count();
        self.base.out_degree(u) - removed + added
    }

    fn for_each_edge(&self, u: NodeId, f: &mut dyn FnMut(NodeId, Weight)) {
        if u.index() < self.delta.base_nodes {
            for e in self.base.edge_start(u)..self.base.edge_end(u) {
                if self.delta.removed.contains(&(e as u64)) {
                    continue;
                }
                let w = if self.delta.weighted {
                    self.delta.effective_weight(self.base, e as u64)
                } else {
                    1
                };
                f(self.base.edge_target(e), w);
            }
        }
        if let Some(list) = self.delta.added.get(&u.raw()) {
            for &(v, w) in list {
                f(NodeId::new(v), w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::view::collect_edges;

    fn weighted_base() -> Csr {
        CsrBuilder::new(4)
            .weighted_edge(0, 1, 4)
            .weighted_edge(0, 2, 7)
            .weighted_edge(1, 2, 1)
            .weighted_edge(3, 0, 9)
            .build()
    }

    #[test]
    fn add_remove_setweight_round_trip() {
        let base = weighted_base();
        let mut d = DeltaOverlay::new(&base);
        assert!(d.is_empty());

        assert!(d
            .apply(&base, MutationOp::AddEdge { u: 2, v: 3, w: 5 })
            .unwrap());
        // Duplicate of a base edge and of an added edge both skip.
        assert!(!d
            .apply(&base, MutationOp::AddEdge { u: 0, v: 1, w: 6 })
            .unwrap());
        assert!(!d
            .apply(&base, MutationOp::AddEdge { u: 2, v: 3, w: 8 })
            .unwrap());

        assert!(d
            .apply(&base, MutationOp::RemoveEdge { u: 0, v: 2 })
            .unwrap());
        assert!(!d
            .apply(&base, MutationOp::RemoveEdge { u: 0, v: 2 })
            .unwrap());

        assert!(d
            .apply(&base, MutationOp::SetWeight { u: 0, v: 1, w: 2 })
            .unwrap());
        assert!(!d
            .apply(&base, MutationOp::SetWeight { u: 0, v: 1, w: 2 })
            .unwrap());
        // Setting a missing edge's weight is a skip.
        assert!(!d
            .apply(&base, MutationOp::SetWeight { u: 1, v: 3, w: 2 })
            .unwrap());

        assert_eq!(d.delta_edges(), 3); // 1 added + 1 removed + 1 override
        let view = d.view(&base);
        assert_eq!(view.num_edges(), 4);
        assert_eq!(
            collect_edges(&view),
            vec![(0, 1, 2), (1, 2, 1), (2, 3, 5), (3, 0, 9)]
        );
    }

    #[test]
    fn removing_an_added_edge_undoes_it() {
        let base = weighted_base();
        let mut d = DeltaOverlay::new(&base);
        assert!(d
            .apply(&base, MutationOp::AddEdge { u: 1, v: 3, w: 2 })
            .unwrap());
        assert!(d
            .apply(&base, MutationOp::RemoveEdge { u: 1, v: 3 })
            .unwrap());
        assert!(d.is_empty());
        assert_eq!(d.merged_csr(&base), base);
    }

    #[test]
    fn setweight_back_to_base_clears_the_override() {
        let base = weighted_base();
        let mut d = DeltaOverlay::new(&base);
        assert!(d
            .apply(&base, MutationOp::SetWeight { u: 0, v: 1, w: 6 })
            .unwrap());
        assert!(d
            .apply(&base, MutationOp::SetWeight { u: 0, v: 1, w: 4 })
            .unwrap());
        assert!(d.is_empty());
    }

    #[test]
    fn add_node_is_a_target_count() {
        let base = weighted_base();
        let mut d = DeltaOverlay::new(&base);
        assert!(d.apply(&base, MutationOp::AddNode { nodes: 6 }).unwrap());
        // Re-applying the same target (stale-log replay) is a no-op.
        assert!(!d.apply(&base, MutationOp::AddNode { nodes: 6 }).unwrap());
        assert!(!d.apply(&base, MutationOp::AddNode { nodes: 2 }).unwrap());
        assert_eq!(d.num_nodes(), 6);
        // New nodes can source and sink edges.
        assert!(d
            .apply(&base, MutationOp::AddEdge { u: 5, v: 0, w: 3 })
            .unwrap());
        assert!(d
            .apply(&base, MutationOp::AddEdge { u: 0, v: 5, w: 2 })
            .unwrap());
        let view = d.view(&base);
        assert_eq!(view.out_degree(NodeId::new(5)), 1);
        let merged = d.merged_csr(&base);
        assert_eq!(merged.num_nodes(), 6);
        assert_eq!(merged.neighbors(NodeId::new(5)), &[NodeId::new(0)]);
    }

    #[test]
    fn invalid_ops_are_rejected_and_leave_state_unchanged() {
        let base = weighted_base();
        let mut d = DeltaOverlay::new(&base);
        for op in [
            MutationOp::AddEdge { u: 9, v: 0, w: 1 },
            MutationOp::AddEdge { u: 0, v: 9, w: 1 },
            MutationOp::RemoveEdge { u: 9, v: 0 },
            MutationOp::SetWeight { u: 0, v: 9, w: 1 },
        ] {
            assert!(matches!(d.apply(&base, op), Err(MutationError::Invalid(_))));
        }
        assert!(d.is_empty());

        let unweighted = CsrBuilder::new(2).edge(0, 1).build();
        let mut d = DeltaOverlay::new(&unweighted);
        assert!(matches!(
            d.apply(&unweighted, MutationOp::AddEdge { u: 1, v: 0, w: 7 }),
            Err(MutationError::Invalid(_))
        ));
        assert!(matches!(
            d.apply(&unweighted, MutationOp::SetWeight { u: 0, v: 1, w: 1 }),
            Err(MutationError::Invalid(_))
        ));
        // Unit-weight adds are fine and the merged graph stays
        // unweighted.
        assert!(d
            .apply(&unweighted, MutationOp::AddEdge { u: 1, v: 0, w: 1 })
            .unwrap());
        assert!(!d.merged_csr(&unweighted).is_weighted());
    }

    #[test]
    fn merged_csr_matches_from_scratch_build() {
        let base = weighted_base();
        let mut d = DeltaOverlay::new(&base);
        for op in [
            MutationOp::AddNode { nodes: 5 },
            MutationOp::AddEdge { u: 4, v: 1, w: 3 },
            MutationOp::AddEdge { u: 0, v: 3, w: 2 },
            MutationOp::RemoveEdge { u: 1, v: 2 },
            MutationOp::SetWeight { u: 3, v: 0, w: 1 },
        ] {
            assert!(d.apply(&base, op).unwrap());
        }
        let merged = d.merged_csr(&base);

        let mut scratch = CsrBuilder::new(5);
        scratch
            .weighted_edge(0, 1, 4)
            .weighted_edge(0, 2, 7)
            .weighted_edge(0, 3, 2)
            .weighted_edge(3, 0, 1)
            .weighted_edge(4, 1, 3);
        assert_eq!(merged, scratch.build());

        // The streaming view agrees with the materialized CSR on every
        // edge (as multisets per source).
        let view = d.view(&base);
        let mut streamed = collect_edges(&view);
        streamed.sort_unstable();
        let mut materialized = collect_edges(&merged);
        materialized.sort_unstable();
        assert_eq!(streamed, materialized);
    }
}
