//! The serving wrapper: [`MutableGraph`] ties the WAL, the delta
//! overlay, MVCC snapshots, and compaction together.
//!
//! # Concurrency model
//!
//! Two mutexes with a fixed acquisition order (`inner` before `wal`)
//! guard the mutable state. Mutations are serialized; readers never
//! block on them — a reader takes [`MutableGraph::snapshot`] (a cheap
//! `Arc` clone when the graph hasn't changed since the last snapshot)
//! and works against that immutable `(base, delta, epoch)` triple for
//! its whole query. Compaction holds no lock while it merges and
//! re-prepares; only the final swap takes the `inner` lock, so
//! in-flight queries keep their pinned epoch and drop it when done —
//! old epochs are freed purely by reference counting.
//!
//! # Crash safety
//!
//! Every apply batch is fsync'd to the WAL *before* the in-memory
//! overlay changes, so an acknowledged mutation survives a crash.
//! Compaction's durable steps are ordered (fresh artifact → `MANIFEST`
//! pointer → WAL reset) such that a crash between any two recovers the
//! same visible graph: replaying a stale (pre-reset) WAL over the
//! compacted base is state-convergent because every [`MutationOp`] is
//! idempotent against a base that already absorbed it.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use tigr_graph::io::{encode_csr, fnv1a64};

use crate::store::{wal_dir_for, GraphStore, PreparedGraph, ViewPlan};

use super::delta::{DeltaOverlay, OverlayView};
use super::wal::{MutationOp, Wal};
use super::MutationError;

/// File name of the mutation log inside an artifact's WAL directory.
const WAL_FILE: &str = "delta.log";
/// File name of the compaction redirect pointer.
const MANIFEST_FILE: &str = "MANIFEST";

/// What one [`MutableGraph::apply`] batch did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplySummary {
    /// Ops that changed the graph.
    pub applied: usize,
    /// Well-formed no-ops (duplicate adds, removes of absent edges, ...).
    pub skipped: usize,
    /// WAL records after the batch (the whole batch is logged, skips
    /// included — replay skips them identically).
    pub wal_len: u64,
    /// Overlay generation after the batch.
    pub epoch: u64,
}

/// What one [`MutableGraph::compact`] run did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionStats {
    /// Wall-clock milliseconds for merge + re-prepare + swap.
    pub wall_ms: u64,
    /// `delta_edges` absorbed into the fresh base.
    pub delta_edges_before: usize,
    /// `delta_edges` remaining (mutations that raced the compaction).
    pub delta_edges_after: usize,
    /// Overlay generation after the swap.
    pub epoch: u64,
}

/// An immutable `(base, delta, epoch)` triple pinned by a reader.
///
/// Queries admitted against a snapshot see exactly its state for their
/// whole execution, no matter how many mutations or compactions land
/// concurrently. A clean snapshot (`delta` is `None`) is just the base
/// — batched/fused execution paths apply unchanged; a dirty snapshot
/// exposes [`GraphSnapshot::view`] for zero-copy streaming kernels and
/// [`GraphSnapshot::merged`] for algorithms that need a materialized
/// CSR (built lazily, once, and cached for the snapshot's lifetime).
#[derive(Debug)]
pub struct GraphSnapshot {
    base: Arc<PreparedGraph>,
    delta: Option<Arc<DeltaOverlay>>,
    epoch: u64,
    plan: ViewPlan,
    merged: Mutex<Option<Arc<PreparedGraph>>>,
}

impl GraphSnapshot {
    /// Overlay generation this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable prepared base.
    pub fn base(&self) -> &Arc<PreparedGraph> {
        &self.base
    }

    /// `true` when the snapshot carries no delta (base answers are
    /// exact, fused batch paths apply).
    pub fn is_clean(&self) -> bool {
        self.delta.is_none()
    }

    /// Delta size pinned by this snapshot (0 when clean).
    pub fn delta_edges(&self) -> usize {
        self.delta.as_ref().map_or(0, |d| d.delta_edges())
    }

    /// Nodes visible through this snapshot.
    pub fn num_nodes(&self) -> usize {
        self.delta
            .as_ref()
            .map_or(self.base.graph().num_nodes(), |d| d.num_nodes())
    }

    /// Edges visible through this snapshot.
    pub fn num_edges(&self) -> usize {
        self.delta
            .as_ref()
            .map_or(self.base.graph().num_edges(), |d| {
                d.num_edges(self.base.graph())
            })
    }

    /// Zero-copy base+delta view, when the snapshot is dirty.
    pub fn view(&self) -> Option<OverlayView<'_>> {
        self.delta.as_ref().map(|d| d.view(self.base.graph()))
    }

    /// The snapshot as a fully materialized [`PreparedGraph`]: the base
    /// itself when clean, otherwise base+delta merged and re-prepared
    /// in memory (no artifact write), lazily on first use.
    ///
    /// # Errors
    ///
    /// [`MutationError::Graph`] when re-preparing the merged CSR fails.
    pub fn merged(&self) -> Result<Arc<PreparedGraph>, MutationError> {
        let Some(delta) = &self.delta else {
            return Ok(Arc::clone(&self.base));
        };
        let mut slot = self.merged.lock().unwrap();
        if let Some(m) = &*slot {
            return Ok(Arc::clone(m));
        }
        let csr = delta.merged_csr(self.base.graph());
        let prepared = Arc::new(GraphStore::disabled().materialize(csr, self.plan)?);
        *slot = Some(Arc::clone(&prepared));
        Ok(prepared)
    }
}

/// Per-epoch mutable state, swapped atomically under one lock.
struct Inner {
    base: Arc<PreparedGraph>,
    delta: DeltaOverlay,
    /// Mirror of the WAL's records since the last compaction (what a
    /// replay would redo), kept so compaction can split off the racing
    /// tail without re-reading the log.
    ops: Vec<(u64, MutationOp)>,
    epoch: u64,
    /// Snapshot of the current state, built lazily and reused until the
    /// next mutation — repeat readers of an unchanged graph share one
    /// `Arc`.
    cached: Option<Arc<GraphSnapshot>>,
}

/// A prepared graph that accepts online mutations: WAL-durable writes,
/// snapshot-isolated reads, and background-compactable deltas.
pub struct MutableGraph {
    store: GraphStore,
    plan: ViewPlan,
    inner: Mutex<Inner>,
    wal: Mutex<Wal>,
    /// `MANIFEST` path in the *original* artifact's WAL dir (fixed at
    /// open; `None` for cache-less stores, which are ephemeral anyway).
    manifest: Option<PathBuf>,
    compacting: AtomicBool,
    compactions: AtomicU64,
    last_compaction_ms: AtomicU64,
    /// Every snapshot ever handed out, weakly: lets tests (and stats)
    /// prove old epochs are freed, without keeping them alive.
    snapshots: Mutex<Vec<Weak<GraphSnapshot>>>,
}

impl std::fmt::Debug for MutableGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutableGraph")
            .field("plan", &self.plan)
            .field("epoch", &self.epoch())
            .field("wal_len", &self.wal_len())
            .field("delta_edges", &self.delta_edges())
            .field("compactions", &self.compactions())
            .finish()
    }
}

impl MutableGraph {
    /// Wraps a prepared graph for online mutation, recovering any
    /// earlier state first: if the base's WAL directory carries a
    /// compaction `MANIFEST` the serving base is redirected to the
    /// compacted artifact, then the WAL (crash-truncated to its longest
    /// valid prefix) is replayed into a fresh overlay. Unreplayable
    /// records are skipped with a warning rather than failing the open.
    ///
    /// # Errors
    ///
    /// [`MutationError::Immutable`] for physically transformed bases
    /// (split transforms renumber nodes, so mutations would name the
    /// wrong vertices); [`MutationError::Io`] when the WAL cannot be
    /// opened or recovered.
    pub fn open(store: GraphStore, base: PreparedGraph) -> Result<MutableGraph, MutationError> {
        if base.transformed().is_some() {
            return Err(MutationError::Immutable(
                "physically transformed graphs renumber nodes; use a virtual overlay instead"
                    .into(),
            ));
        }
        let plan = ViewPlan::from_prepared(&base);
        let (wal_path, manifest) = match &base.report().artifact {
            Some(artifact) => {
                let dir = wal_dir_for(artifact);
                (dir.join(WAL_FILE), Some(dir.join(MANIFEST_FILE)))
            }
            None => {
                // Cache-less stores get an ephemeral per-open log: there
                // is no artifact to pair recovery with, so uniqueness
                // beats reuse.
                static EPHEMERAL: AtomicU64 = AtomicU64::new(0);
                let dir = std::env::temp_dir().join(format!(
                    "tigr-wal-{}-{}-{}",
                    std::process::id(),
                    base.report().key,
                    EPHEMERAL.fetch_add(1, Ordering::Relaxed)
                ));
                (dir.join(WAL_FILE), None)
            }
        };

        let mut base = Arc::new(base);
        if let Some(manifest_path) = manifest.as_deref().filter(|p| p.exists()) {
            match read_manifest(manifest_path) {
                Ok((key, canonical)) => match store.cache_dir() {
                    Some(dir) => {
                        let artifact = dir.join(format!("{key}.tigr"));
                        match store.open_materialized(&artifact, plan, &canonical) {
                            Ok(compacted) => base = Arc::new(compacted),
                            Err(e) => eprintln!(
                                "tigr: compacted artifact {} unusable ({e}); \
                                 replaying full WAL over the original base",
                                artifact.display()
                            ),
                        }
                    }
                    None => eprintln!(
                        "tigr: MANIFEST present but store has no cache dir; \
                         replaying full WAL over the original base"
                    ),
                },
                Err(e) => eprintln!(
                    "tigr: unreadable MANIFEST {} ({e}); ignoring",
                    manifest_path.display()
                ),
            }
        }

        let (wal, recovery) = Wal::open(&wal_path)?;
        if recovery.truncated_bytes > 0 {
            eprintln!(
                "tigr: WAL {} had a torn tail; truncated {} byte(s)",
                wal_path.display(),
                recovery.truncated_bytes
            );
        }
        let mut delta = DeltaOverlay::new(base.graph());
        let mut ops = Vec::with_capacity(recovery.ops.len());
        for (seq, op) in recovery.ops {
            match delta.apply(base.graph(), op) {
                Ok(_) => ops.push((seq, op)),
                Err(e) => eprintln!("tigr: skipping unreplayable WAL record #{seq} ({e})"),
            }
        }
        let epoch = u64::from(!delta.is_empty());
        Ok(MutableGraph {
            store,
            plan,
            inner: Mutex::new(Inner {
                base,
                delta,
                ops,
                epoch,
                cached: None,
            }),
            wal: Mutex::new(wal),
            manifest,
            compacting: AtomicBool::new(false),
            compactions: AtomicU64::new(0),
            last_compaction_ms: AtomicU64::new(0),
            snapshots: Mutex::new(Vec::new()),
        })
    }

    /// The derived-view plan compaction rebuilds (fixed at open).
    pub fn plan(&self) -> ViewPlan {
        self.plan
    }

    /// Applies a batch of mutations atomically: either every op is
    /// validated, logged (one fsync for the whole batch), and installed,
    /// or none is. Skipped no-ops count in the summary but are logged
    /// too — replay skips them identically.
    ///
    /// # Errors
    ///
    /// [`MutationError::Invalid`] if any op is malformed (the batch is
    /// rejected whole, before the WAL write); [`MutationError::Io`] if
    /// the WAL append fails (the in-memory graph is unchanged).
    pub fn apply(&self, ops: &[MutationOp]) -> Result<ApplySummary, MutationError> {
        let mut inner = self.inner.lock().unwrap();
        let mut scratch = inner.delta.clone();
        let mut applied = 0usize;
        let mut skipped = 0usize;
        for &op in ops {
            if scratch.apply(inner.base.graph(), op)? {
                applied += 1;
            } else {
                skipped += 1;
            }
        }
        let wal_len = if ops.is_empty() {
            self.wal.lock().unwrap().len()
        } else {
            let mut wal = self.wal.lock().unwrap();
            let first_seq = wal.append_batch(ops)?;
            for (i, &op) in ops.iter().enumerate() {
                inner.ops.push((first_seq + i as u64, op));
            }
            wal.len()
        };
        inner.delta = scratch;
        if applied > 0 {
            inner.epoch += 1;
            inner.cached = None;
        }
        Ok(ApplySummary {
            applied,
            skipped,
            wal_len,
            epoch: inner.epoch,
        })
    }

    /// Pins the current state. Cheap for repeat readers: the snapshot is
    /// cached until the next mutation or compaction.
    pub fn snapshot(&self) -> Arc<GraphSnapshot> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(s) = &inner.cached {
            return Arc::clone(s);
        }
        let snap = Arc::new(GraphSnapshot {
            base: Arc::clone(&inner.base),
            delta: (!inner.delta.is_empty()).then(|| Arc::new(inner.delta.clone())),
            epoch: inner.epoch,
            plan: self.plan,
            merged: Mutex::new(None),
        });
        inner.cached = Some(Arc::clone(&snap));
        drop(inner);
        let mut registry = self.snapshots.lock().unwrap();
        registry.retain(|w| w.strong_count() > 0);
        registry.push(Arc::downgrade(&snap));
        snap
    }

    /// Merges base+delta into a fresh CSR, re-runs preparation over it
    /// (re-splitting virtual nodes whose degree crossed `K`, §4.1),
    /// seals a new artifact, and swaps it in as the serving base.
    /// Mutations that land while the merge runs survive as the new
    /// (much smaller) delta. In-flight snapshots are untouched — their
    /// epochs drain by refcount.
    ///
    /// # Errors
    ///
    /// [`MutationError::Busy`] when a compaction is already running;
    /// [`MutationError::Graph`] when re-preparation fails (the serving
    /// state is unchanged); [`MutationError::Io`] when the WAL reset
    /// fails after the swap was otherwise committed.
    pub fn compact(&self) -> Result<CompactionStats, MutationError> {
        if self.compacting.swap(true, Ordering::AcqRel) {
            return Err(MutationError::Busy);
        }
        let result = self.compact_locked();
        self.compacting.store(false, Ordering::Release);
        result
    }

    fn compact_locked(&self) -> Result<CompactionStats, MutationError> {
        let started = Instant::now();
        // Pin the merge input without holding the lock during the
        // (potentially long) merge + re-prepare.
        let (base, delta, high_seq) = {
            let inner = self.inner.lock().unwrap();
            if inner.delta.is_empty() {
                return Ok(CompactionStats {
                    wall_ms: 0,
                    delta_edges_before: 0,
                    delta_edges_after: 0,
                    epoch: inner.epoch,
                });
            }
            (
                Arc::clone(&inner.base),
                inner.delta.clone(),
                inner.ops.last().map(|&(seq, _)| seq),
            )
        };
        let delta_edges_before = delta.delta_edges();
        let merged = delta.merged_csr(base.graph());
        let canonical = self.plan.canonical(fnv1a64(&encode_csr(&merged)));
        let fresh = Arc::new(self.store.materialize(merged, self.plan)?);

        let mut inner = self.inner.lock().unwrap();
        // Ops that raced the merge become the new delta.
        let tail: Vec<(u64, MutationOp)> = inner
            .ops
            .iter()
            .copied()
            .filter(|&(seq, _)| Some(seq) > high_seq)
            .collect();
        let mut new_delta = DeltaOverlay::new(fresh.graph());
        for &(seq, op) in &tail {
            if let Err(e) = new_delta.apply(fresh.graph(), op) {
                eprintln!("tigr: dropping racing op #{seq} at compaction ({e})");
            }
        }

        // Durable step 2 (the artifact itself was step 1): point the
        // original WAL dir at the fresh artifact. Written only when the
        // artifact really exists — a failed artifact write must not
        // redirect recovery at nothing.
        if let (Some(manifest), Some(artifact)) = (&self.manifest, &fresh.report().artifact) {
            if artifact.exists() {
                if let Err(e) = write_manifest(manifest, &fresh.report().key, &canonical) {
                    eprintln!(
                        "tigr: failed to write MANIFEST {} ({e}); \
                         recovery will replay the full WAL",
                        manifest.display()
                    );
                }
            }
        }
        // Durable step 3: shrink the WAL to the racing tail. Old
        // records are safe to drop only now — the manifest redirect (or
        // full-WAL replay if it failed) covers every earlier crash.
        self.wal.lock().unwrap().reset(&tail)?;

        let delta_edges_after = new_delta.delta_edges();
        inner.base = fresh;
        inner.delta = new_delta;
        inner.ops = tail;
        inner.epoch += 1;
        inner.cached = None;
        let epoch = inner.epoch;
        drop(inner);

        let wall_ms = started.elapsed().as_millis() as u64;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.last_compaction_ms.store(wall_ms, Ordering::Relaxed);
        Ok(CompactionStats {
            wall_ms,
            delta_edges_before,
            delta_edges_after,
            epoch,
        })
    }

    /// Kicks off [`MutableGraph::compact`] on a background thread when
    /// the delta has reached `threshold` and no compaction is running.
    /// Returns whether a thread was spawned.
    pub fn maybe_spawn_compaction(self: &Arc<Self>, threshold: usize) -> bool {
        if threshold == 0
            || self.delta_edges() < threshold
            || self.compacting.load(Ordering::Acquire)
        {
            return false;
        }
        let this = Arc::clone(self);
        std::thread::spawn(move || match this.compact() {
            Ok(stats) if stats.delta_edges_before > 0 => eprintln!(
                "tigr: background compaction absorbed {} delta edge(s) in {} ms (epoch {})",
                stats.delta_edges_before, stats.wall_ms, stats.epoch
            ),
            Ok(_) => {}
            Err(MutationError::Busy) => {}
            Err(e) => eprintln!("tigr: background compaction failed: {e}"),
        });
        true
    }

    /// WAL records since the last compaction.
    pub fn wal_len(&self) -> u64 {
        self.wal.lock().unwrap().len()
    }

    /// Current delta size (added + removed edges + weight overrides).
    pub fn delta_edges(&self) -> usize {
        self.inner.lock().unwrap().delta.delta_edges()
    }

    /// Current overlay generation.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().unwrap().epoch
    }

    /// Completed compactions since open.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Wall-clock milliseconds of the most recent compaction (0 before
    /// the first).
    pub fn last_compaction_ms(&self) -> u64 {
        self.last_compaction_ms.load(Ordering::Relaxed)
    }

    /// Snapshots still alive (prunes dead weak refs). At most one per
    /// epoch is cached internally, so a value that stays small under
    /// mutation churn proves old epochs are being freed.
    pub fn live_snapshots(&self) -> usize {
        let mut registry = self.snapshots.lock().unwrap();
        registry.retain(|w| w.strong_count() > 0);
        registry.len()
    }
}

/// Parses a `MANIFEST`: line 1 the compacted artifact's key, line 2 its
/// canonical spec string.
fn read_manifest(path: &Path) -> std::io::Result<(String, String)> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines();
    let bad = || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed MANIFEST");
    let key = lines.next().ok_or_else(bad)?.trim();
    let canonical = lines.next().ok_or_else(bad)?.trim();
    if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) || canonical.is_empty() {
        return Err(bad());
    }
    Ok((key.to_string(), canonical.to_string()))
}

/// Atomically (tmp + fsync + rename + dir fsync) writes the redirect
/// pointer.
fn write_manifest(path: &Path, key: &str, canonical: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    let mut file = fs::File::create(&tmp)?;
    writeln!(file, "{key}")?;
    writeln!(file, "{canonical}")?;
    file.sync_all()?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PrepareSpec;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tigr_mutable_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spec() -> PrepareSpec {
        PrepareSpec::generated("ba:64:3", 11)
            .with_uniform_weights(1, 16, 5)
            .with_virtual(4, true)
            .with_transpose(true)
    }

    /// A fixed-shape batch (5 applied + 1 skipped, delta_edges 4) whose
    /// remove/set-weight targets are real edges of `g`.
    fn ops(g: &tigr_graph::Csr) -> Vec<MutationOp> {
        let mut edges = Vec::new();
        'outer: for u in 0..g.num_nodes() as u32 {
            let node = tigr_graph::NodeId::new(u);
            for e in g.edge_start(node)..g.edge_end(node) {
                edges.push((u, g.edge_target(e).raw(), g.weight(e)));
                if edges.len() == 2 {
                    break 'outer;
                }
            }
        }
        let [(ru, rv, _), (su, sv, sw)] = edges[..] else {
            panic!("test graph needs at least two edges");
        };
        vec![
            MutationOp::AddNode { nodes: 66 },
            MutationOp::AddEdge { u: 65, v: 0, w: 3 },
            MutationOp::AddEdge { u: 0, v: 65, w: 2 },
            MutationOp::RemoveEdge { u: ru, v: rv },
            MutationOp::SetWeight {
                u: su,
                v: sv,
                w: sw + 1,
            },
            MutationOp::AddEdge { u: 65, v: 0, w: 7 }, // duplicate → skip
        ]
    }

    #[test]
    fn apply_is_atomic_and_snapshot_isolated() {
        let store = GraphStore::disabled();
        let base = store.prepare(&spec()).unwrap();
        let mg = MutableGraph::open(store, base).unwrap();

        let before = mg.snapshot();
        assert!(before.is_clean());
        assert_eq!(before.epoch(), 0);
        // Cached: a second snapshot of an unchanged graph is the same Arc.
        assert!(Arc::ptr_eq(&before, &mg.snapshot()));

        let batch = ops(before.base().graph());
        let summary = mg.apply(&batch).unwrap();
        assert_eq!(summary.applied, 5);
        assert_eq!(summary.skipped, 1);
        assert_eq!(summary.wal_len, 6);
        assert_eq!(summary.epoch, 1);

        let after = mg.snapshot();
        assert!(!after.is_clean());
        assert_eq!(after.num_nodes(), 66);
        assert_eq!(after.num_edges(), before.num_edges() + 1); // +2 added −1 removed
                                                               // The pinned pre-mutation snapshot still answers from the old
                                                               // state.
        assert_eq!(before.num_nodes(), 64);
        assert!(before.is_clean());

        // A malformed batch is rejected whole: nothing from it lands.
        let bad = [
            MutationOp::AddEdge { u: 2, v: 3, w: 1 },
            MutationOp::AddEdge { u: 999, v: 0, w: 1 },
        ];
        assert!(matches!(mg.apply(&bad), Err(MutationError::Invalid(_))));
        assert_eq!(mg.epoch(), 1);
        assert_eq!(mg.wal_len(), 6);
    }

    #[test]
    fn transformed_bases_are_immutable() {
        let store = GraphStore::disabled();
        let transformed = store
            .prepare(&spec().with_transform(
                crate::store::TransformKind::Udt,
                Some(4),
                crate::DumbWeight::Zero,
            ))
            .unwrap();
        assert!(matches!(
            MutableGraph::open(store, transformed),
            Err(MutationError::Immutable(_))
        ));
    }

    #[test]
    fn wal_replay_recovers_the_overlay_across_reopen() {
        let dir = temp_dir("replay");
        let store = GraphStore::new(Some(dir.clone()));
        let base = store.prepare(&spec()).unwrap();
        {
            let batch = ops(base.graph());
            let mg = MutableGraph::open(store.clone(), base).unwrap();
            mg.apply(&batch).unwrap();
        }
        let reopened = MutableGraph::open(store.clone(), store.prepare(&spec()).unwrap()).unwrap();
        assert_eq!(reopened.wal_len(), 6);
        assert_eq!(reopened.epoch(), 1);
        let snap = reopened.snapshot();
        assert_eq!(snap.num_nodes(), 66);
        assert_eq!(snap.delta_edges(), 4); // 2 added + 1 removed + 1 override
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_swaps_base_resets_wal_and_preserves_answers() {
        let dir = temp_dir("compact");
        let store = GraphStore::new(Some(dir.clone()));
        let base = store.prepare(&spec()).unwrap();
        let original_key = base.report().key.clone();
        let batch = ops(base.graph());
        let mg = MutableGraph::open(store.clone(), base).unwrap();
        mg.apply(&batch).unwrap();
        let pre = mg.snapshot();
        let pre_merged = pre.merged().unwrap().graph().clone();

        let stats = mg.compact().unwrap();
        assert_eq!(stats.delta_edges_before, 4);
        assert_eq!(stats.delta_edges_after, 0);
        assert_eq!(mg.compactions(), 1);
        assert_eq!(mg.wal_len(), 0);
        assert_eq!(mg.delta_edges(), 0);

        let post = mg.snapshot();
        assert!(post.is_clean());
        assert_ne!(post.base().report().key, original_key);
        // The compacted base is byte-identical to the pre-compaction
        // merged view, and the overlay was rebuilt against it.
        assert_eq!(post.base().graph(), &pre_merged);
        let overlay = post.base().overlay().unwrap();
        assert_eq!(overlay.num_physical_nodes(), 66);
        overlay.validate_against(post.base().graph()).unwrap();
        // The pinned pre-compaction snapshot still sees the delta.
        assert_eq!(pre.delta_edges(), 4);

        // Reopen from disk: the MANIFEST redirects to the compacted
        // artifact, with an empty delta.
        drop((pre, post));
        drop(mg);
        let reopened = MutableGraph::open(store.clone(), store.prepare(&spec()).unwrap()).unwrap();
        assert_eq!(reopened.wal_len(), 0);
        let snap = reopened.snapshot();
        assert!(snap.is_clean());
        assert_eq!(snap.base().graph(), &pre_merged);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_wal_replay_over_compacted_base_is_convergent() {
        // Simulate a crash between MANIFEST write and WAL reset: restore
        // the pre-compaction log next to the redirect and reopen.
        let dir = temp_dir("stale");
        let store = GraphStore::new(Some(dir.clone()));
        let base = store.prepare(&spec()).unwrap();
        let wal_path = wal_dir_for(base.report().artifact.as_ref().unwrap()).join(WAL_FILE);
        let batch = ops(base.graph());
        let mg = MutableGraph::open(store.clone(), base).unwrap();
        mg.apply(&batch).unwrap();
        let expected = mg.snapshot().merged().unwrap().graph().clone();

        let stale_log = fs::read(&wal_path).unwrap();
        mg.compact().unwrap();
        drop(mg);
        fs::write(&wal_path, &stale_log).unwrap();

        let reopened = MutableGraph::open(store.clone(), store.prepare(&spec()).unwrap()).unwrap();
        // Every stale record replays as a no-op against the compacted
        // base: same visible graph, empty delta.
        assert_eq!(reopened.delta_edges(), 0);
        assert_eq!(reopened.snapshot().merged().unwrap().graph(), &expected);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn racing_ops_survive_compaction_as_the_new_delta() {
        let store = GraphStore::disabled();
        let base = store.prepare(&spec()).unwrap();
        let batch = ops(base.graph());
        let mg = MutableGraph::open(store, base).unwrap();
        mg.apply(&batch).unwrap();
        // No way to pause mid-compaction deterministically here; instead
        // verify the tail split logic by applying, compacting, applying
        // again, and compacting once more.
        mg.compact().unwrap();
        mg.apply(&[MutationOp::AddEdge { u: 5, v: 6, w: 2 }])
            .unwrap();
        assert_eq!(mg.delta_edges(), 1);
        let stats = mg.compact().unwrap();
        assert_eq!(stats.delta_edges_before, 1);
        assert_eq!(stats.delta_edges_after, 0);
        assert_eq!(mg.compactions(), 2);
    }

    #[test]
    fn old_epochs_are_freed_by_refcount() {
        let store = GraphStore::disabled();
        let base = store.prepare(&spec()).unwrap();
        let mg = MutableGraph::open(store, base).unwrap();
        for i in 0..20u32 {
            let snap = mg.snapshot();
            assert_eq!(snap.epoch(), u64::from(i));
            mg.apply(&[MutationOp::AddEdge {
                u: i % 8,
                v: 40 + i,
                w: 1 + i,
            }])
            .unwrap();
            drop(snap);
        }
        // Only the currently cached snapshot (if any) can be alive.
        assert!(mg.live_snapshots() <= 1, "{}", mg.live_snapshots());
    }
}
