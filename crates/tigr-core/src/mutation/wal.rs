//! The append-only mutation log.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! header  = "TIGRWAL1" version:u32 reserved:u32            (16 bytes)
//! record  = payload_len:u32 seq:u64 fnv1a64(payload):u64 payload
//! payload = tag:u8 fields:u32...                           (see MutationOp)
//! ```
//!
//! Appends batch any number of records into one `write` + one
//! `fsync`, so bulk ingest pays the durability cost per batch, not per
//! edge. Replay on open walks records until the first torn, corrupt,
//! undecodable, or non-monotone-sequence record and truncates the file
//! back to that boundary — the longest valid prefix always survives,
//! and recovery never panics on arbitrary bytes.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use tigr_graph::io::fnv1a64;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"TIGRWAL1";
const WAL_VERSION: u32 = 1;
const HEADER_LEN: usize = 16;
const RECORD_HEADER_LEN: usize = 20;
/// Largest accepted record payload. The widest op today encodes to 13
/// bytes; the cap bounds how far a corrupt length field can point.
const MAX_PAYLOAD: u32 = 64;

/// One durable graph mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationOp {
    /// Add the directed edge `u → v` with weight `w` (`1` on unweighted
    /// graphs). Adding an edge that is already visible is a skip, not
    /// an error — which also makes stale-log replay convergent.
    AddEdge {
        /// Source node.
        u: u32,
        /// Destination node.
        v: u32,
        /// Edge weight.
        w: u32,
    },
    /// Remove one visible occurrence of the edge `u → v`. Removing an
    /// absent edge is a skip.
    RemoveEdge {
        /// Source node.
        u: u32,
        /// Destination node.
        v: u32,
    },
    /// Grow the graph to at least `nodes` nodes. The payload is the
    /// *target* count, not an increment, so replaying the op over an
    /// already-grown (compacted) base is an exact no-op.
    AddNode {
        /// Target minimum node count.
        nodes: u32,
    },
    /// Set the weight of the visible edge `u → v` to `w` (weighted
    /// graphs only). Setting a missing edge's weight is a skip.
    SetWeight {
        /// Source node.
        u: u32,
        /// Destination node.
        v: u32,
        /// New edge weight.
        w: u32,
    },
}

const TAG_ADD_EDGE: u8 = 1;
const TAG_REMOVE_EDGE: u8 = 2;
const TAG_ADD_NODE: u8 = 3;
const TAG_SET_WEIGHT: u8 = 4;

impl MutationOp {
    /// Stable lowercase label (`add-edge` / `remove-edge` / `add-node`
    /// / `set-weight`) used on the wire and in the CLI.
    pub fn label(&self) -> &'static str {
        match self {
            MutationOp::AddEdge { .. } => "add-edge",
            MutationOp::RemoveEdge { .. } => "remove-edge",
            MutationOp::AddNode { .. } => "add-node",
            MutationOp::SetWeight { .. } => "set-weight",
        }
    }

    /// Encodes the op as a WAL record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13);
        match *self {
            MutationOp::AddEdge { u, v, w } => {
                out.push(TAG_ADD_EDGE);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&w.to_le_bytes());
            }
            MutationOp::RemoveEdge { u, v } => {
                out.push(TAG_REMOVE_EDGE);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
            }
            MutationOp::AddNode { nodes } => {
                out.push(TAG_ADD_NODE);
                out.extend_from_slice(&nodes.to_le_bytes());
            }
            MutationOp::SetWeight { u, v, w } => {
                out.push(TAG_SET_WEIGHT);
                out.extend_from_slice(&u.to_le_bytes());
                out.extend_from_slice(&v.to_le_bytes());
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a record payload; `None` for unknown tags, short or
    /// over-long payloads.
    pub fn decode(bytes: &[u8]) -> Option<MutationOp> {
        let u32_at = |i: usize| {
            bytes
                .get(i..i + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        };
        match (bytes.first()?, bytes.len()) {
            (&TAG_ADD_EDGE, 13) => Some(MutationOp::AddEdge {
                u: u32_at(1)?,
                v: u32_at(5)?,
                w: u32_at(9)?,
            }),
            (&TAG_REMOVE_EDGE, 9) => Some(MutationOp::RemoveEdge {
                u: u32_at(1)?,
                v: u32_at(5)?,
            }),
            (&TAG_ADD_NODE, 5) => Some(MutationOp::AddNode { nodes: u32_at(1)? }),
            (&TAG_SET_WEIGHT, 13) => Some(MutationOp::SetWeight {
                u: u32_at(1)?,
                v: u32_at(5)?,
                w: u32_at(9)?,
            }),
            _ => None,
        }
    }
}

/// What [`Wal::open`] recovered from an existing log.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Valid records in log order, each with its sequence number.
    pub ops: Vec<(u64, MutationOp)>,
    /// Bytes discarded from the tail (torn/corrupt records, or the
    /// whole file when the header itself was unusable).
    pub truncated_bytes: u64,
}

/// An open, crash-safe mutation log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    records: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replaying every
    /// valid record and truncating any torn tail back to the last valid
    /// record boundary. An unreadable header resets the log to empty.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Wal, Recovery)> {
        let path = path.into();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let header_ok = bytes.len() >= HEADER_LEN
            && &bytes[..8] == WAL_MAGIC
            && u32::from_le_bytes(bytes[8..12].try_into().unwrap()) == WAL_VERSION;
        if !header_ok {
            let truncated_bytes = bytes.len() as u64;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header_bytes())?;
            file.sync_all()?;
            let wal = Wal {
                file,
                path,
                next_seq: 1,
                records: 0,
            };
            return Ok((
                wal,
                Recovery {
                    ops: Vec::new(),
                    truncated_bytes,
                },
            ));
        }

        let mut ops = Vec::new();
        let mut off = HEADER_LEN;
        let mut last_seq = 0u64;
        while let Some(header) = bytes.get(off..off + RECORD_HEADER_LEN) {
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
            if len == 0 || len > MAX_PAYLOAD {
                break;
            }
            let seq = u64::from_le_bytes(header[4..12].try_into().unwrap());
            let sum = u64::from_le_bytes(header[12..20].try_into().unwrap());
            let Some(payload) = bytes
                .get(off + RECORD_HEADER_LEN..)
                .and_then(|rest| rest.get(..len as usize))
            else {
                break;
            };
            if fnv1a64(payload) != sum || seq <= last_seq {
                break;
            }
            let Some(op) = MutationOp::decode(payload) else {
                break;
            };
            ops.push((seq, op));
            last_seq = seq;
            off += RECORD_HEADER_LEN + len as usize;
        }

        let truncated_bytes = (bytes.len() - off) as u64;
        if truncated_bytes > 0 {
            file.set_len(off as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let wal = Wal {
            file,
            path,
            next_seq: last_seq + 1,
            records: ops.len() as u64,
        };
        Ok((
            wal,
            Recovery {
                ops,
                truncated_bytes,
            },
        ))
    }

    /// Appends `ops` as consecutive records and fsyncs once. Returns the
    /// sequence number assigned to the first op.
    pub fn append_batch(&mut self, ops: &[MutationOp]) -> io::Result<u64> {
        let first = self.next_seq;
        if ops.is_empty() {
            return Ok(first);
        }
        let mut buf = Vec::with_capacity(ops.len() * (RECORD_HEADER_LEN + 13));
        for (i, op) in ops.iter().enumerate() {
            encode_record(&mut buf, first + i as u64, op);
        }
        self.file.write_all(&buf)?;
        self.file.sync_all()?;
        self.next_seq += ops.len() as u64;
        self.records += ops.len() as u64;
        Ok(first)
    }

    /// Atomically replaces the log's contents with `ops` (keeping their
    /// original sequence numbers): written to a temp file, fsync'd, and
    /// renamed over the log, so a crash leaves either the old or the new
    /// log, never a mixture. Used by compaction to drop the sealed
    /// prefix.
    pub fn reset(&mut self, ops: &[(u64, MutationOp)]) -> io::Result<()> {
        let mut buf = header_bytes().to_vec();
        for (seq, op) in ops {
            encode_record(&mut buf, *seq, op);
        }
        let tmp = self.path.with_extension("log.tmp");
        let mut tmp_file = File::create(&tmp)?;
        tmp_file.write_all(&buf)?;
        tmp_file.sync_all()?;
        fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            File::open(dir)?.sync_all()?;
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.records = ops.len() as u64;
        self.next_seq = self.next_seq.max(ops.last().map_or(0, |(s, _)| s + 1));
        Ok(())
    }

    /// Number of records currently in the log.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// `true` when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The sequence number the next appended op will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header_bytes() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

fn encode_record(buf: &mut Vec<u8>, seq: u64, op: &MutationOp) {
    let payload = op.encode();
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tigr_wal_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("delta.log")
    }

    fn sample_ops() -> Vec<MutationOp> {
        vec![
            MutationOp::AddEdge { u: 0, v: 1, w: 4 },
            MutationOp::RemoveEdge { u: 1, v: 2 },
            MutationOp::AddNode { nodes: 40 },
            MutationOp::SetWeight { u: 0, v: 1, w: 9 },
            MutationOp::AddEdge { u: 39, v: 0, w: 1 },
        ]
    }

    #[test]
    fn ops_encode_decode_round_trip() {
        for op in sample_ops() {
            assert_eq!(MutationOp::decode(&op.encode()), Some(op));
        }
        // Unknown tag, short payload, and over-long payload all decode
        // to None rather than panicking.
        assert_eq!(MutationOp::decode(&[9, 0, 0, 0, 0]), None);
        assert_eq!(MutationOp::decode(&[TAG_ADD_EDGE, 1, 2]), None);
        assert_eq!(MutationOp::decode(&[]), None);
        let mut long = MutationOp::AddNode { nodes: 3 }.encode();
        long.push(0);
        assert_eq!(MutationOp::decode(&long), None);
    }

    #[test]
    fn append_and_reopen_replays_everything() {
        let path = temp_path("replay");
        let ops = sample_ops();
        {
            let (mut wal, rec) = Wal::open(&path).unwrap();
            assert!(rec.ops.is_empty());
            assert_eq!(wal.append_batch(&ops[..2]).unwrap(), 1);
            assert_eq!(wal.append_batch(&ops[2..]).unwrap(), 3);
            assert_eq!(wal.len(), 5);
        }
        let (wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(wal.len(), 5);
        assert_eq!(wal.next_seq(), 6);
        let replayed: Vec<MutationOp> = rec.ops.iter().map(|(_, op)| *op).collect();
        assert_eq!(replayed, ops);
        let seqs: Vec<u64> = rec.ops.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn every_truncation_point_recovers_longest_valid_prefix() {
        let path = temp_path("truncate");
        let ops = sample_ops();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_batch(&ops).unwrap();
        }
        let full = fs::read(&path).unwrap();

        // Compute each record's end offset to know the expected prefix
        // for a cut at byte `t`.
        let mut ends = Vec::new();
        let mut off = HEADER_LEN;
        for op in &ops {
            off += RECORD_HEADER_LEN + op.encode().len();
            ends.push(off);
        }
        assert_eq!(off, full.len());

        for t in 0..=full.len() {
            let cut = path.parent().unwrap().join(format!("cut{t}.log"));
            fs::write(&cut, &full[..t]).unwrap();
            let (wal, rec) = Wal::open(&cut).unwrap();
            let expected = ends.iter().filter(|&&e| e <= t).count();
            assert_eq!(rec.ops.len(), expected, "cut at {t}");
            assert_eq!(wal.len(), expected as u64, "cut at {t}");
            for (i, (seq, op)) in rec.ops.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1);
                assert_eq!(op, &ops[i]);
            }
            // The file was truncated back to a record boundary: a
            // second open recovers the identical prefix with no
            // further truncation.
            let (_, again) = Wal::open(&cut).unwrap();
            assert_eq!(again.truncated_bytes, 0, "cut at {t}");
            assert_eq!(again.ops, rec.ops, "cut at {t}");
        }
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn appends_work_after_torn_tail_recovery() {
        let path = temp_path("resume");
        let ops = sample_ops();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_batch(&ops).unwrap();
        }
        // Tear the last record in half.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.ops.len(), ops.len() - 1);
        assert!(rec.truncated_bytes > 0);
        // The sequence resumes after the last surviving record.
        let fresh = MutationOp::AddEdge { u: 7, v: 8, w: 1 };
        assert_eq!(wal.append_batch(&[fresh]).unwrap(), ops.len() as u64);

        let (_, rec2) = Wal::open(&path).unwrap();
        assert_eq!(rec2.ops.len(), ops.len());
        assert_eq!(rec2.ops.last().unwrap().1, fresh);
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_byte_never_panics_and_keeps_prefix() {
        let path = temp_path("corrupt");
        let ops = sample_ops();
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_batch(&ops).unwrap();
        }
        let full = fs::read(&path).unwrap();
        for i in 0..full.len() {
            let mut bytes = full.clone();
            bytes[i] ^= 0xA5;
            let cut = path.parent().unwrap().join("flip.log");
            fs::write(&cut, &bytes).unwrap();
            let (_, rec) = Wal::open(&cut).unwrap();
            // Every recovered record must be one of the originals in
            // prefix order (corruption can only shorten the log, never
            // invent or reorder ops — flipping a payload byte is caught
            // by the checksum).
            assert!(rec.ops.len() <= ops.len(), "flip at {i}");
            for (j, (_, op)) in rec.ops.iter().enumerate() {
                assert_eq!(op, &ops[j], "flip at {i}");
            }
        }
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn garbage_header_resets_to_empty_log() {
        let path = temp_path("garbage");
        fs::write(&path, b"not a wal at all, definitely longer than 16").unwrap();
        let (mut wal, rec) = Wal::open(&path).unwrap();
        assert!(rec.ops.is_empty());
        assert!(rec.truncated_bytes > 0);
        assert_eq!(wal.len(), 0);
        wal.append_batch(&[MutationOp::AddNode { nodes: 2 }])
            .unwrap();
        let (_, rec2) = Wal::open(&path).unwrap();
        assert_eq!(rec2.ops, vec![(1, MutationOp::AddNode { nodes: 2 })]);
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn reset_keeps_only_tail_with_original_seqs() {
        let path = temp_path("reset");
        let ops = sample_ops();
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append_batch(&ops).unwrap();
        let tail = vec![(4, ops[3]), (5, ops[4])];
        wal.reset(&tail).unwrap();
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.next_seq(), 6);

        let (mut wal2, rec) = Wal::open(&path).unwrap();
        assert_eq!(rec.ops, tail);
        assert_eq!(rec.truncated_bytes, 0);
        // Appends continue past the retained sequence numbers.
        let op = MutationOp::RemoveEdge { u: 0, v: 1 };
        assert_eq!(wal2.append_batch(&[op]).unwrap(), 6);
        fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    /// Committed regression corpus: byte patterns that previously (or
    /// plausibly could) confuse recovery, with the exact op count each
    /// must recover to. Payload checksums are FNV-1a64 over the payload
    /// bytes, spelled out literally so the fixture does not depend on
    /// the encoder under test.
    #[test]
    fn recovery_seed_corpus() {
        // fnv1a64([3, 2, 0, 0, 0]) — AddNode { nodes: 2 }.
        const ADD_NODE_2_SUM: [u8; 8] = [0x90, 0xda, 0x0f, 0xf6, 0xf2, 0xda, 0x75, 0xb1];
        let good_record: Vec<u8> = {
            let mut r = vec![5, 0, 0, 0]; // len
            r.extend_from_slice(&1u64.to_le_bytes()); // seq
            r.extend_from_slice(&ADD_NODE_2_SUM); // checksum
            r.extend_from_slice(&[3, 2, 0, 0, 0]); // payload
            r
        };
        let header = header_bytes().to_vec();

        let mut corpus: Vec<(&str, Vec<u8>, usize)> = vec![
            ("empty file", Vec::new(), 0),
            ("header only", header.clone(), 0),
            ("short header", WAL_MAGIC[..6].to_vec(), 0),
            (
                "one good record",
                [header.clone(), good_record.clone()].concat(),
                1,
            ),
        ];
        // Zero length field: must stop, not loop.
        corpus.push((
            "zero length field",
            [header.clone(), vec![0; RECORD_HEADER_LEN + 4]].concat(),
            0,
        ));
        // Huge length field: must stop, not allocate or scan past EOF.
        {
            let mut r = header.clone();
            r.extend_from_slice(&u32::MAX.to_le_bytes());
            r.extend_from_slice(&[0; 16]);
            corpus.push(("huge length field", r, 0));
        }
        // Duplicate sequence number on the second record: prefix of 1.
        {
            let mut r = [header.clone(), good_record.clone()].concat();
            r.extend_from_slice(&good_record); // same seq = 1 again
            corpus.push(("non-monotone seq", r, 1));
        }
        // Valid framing, unknown op tag: prefix of 0.
        {
            let payload = [9u8, 0, 0, 0, 0];
            let mut r = header.clone();
            r.extend_from_slice(&5u32.to_le_bytes());
            r.extend_from_slice(&1u64.to_le_bytes());
            r.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
            r.extend_from_slice(&payload);
            corpus.push(("unknown op tag", r, 0));
        }

        for (name, bytes, expected) in corpus {
            let path = temp_path("corpus");
            fs::write(&path, &bytes).unwrap();
            let (wal, rec) = Wal::open(&path).unwrap();
            assert_eq!(rec.ops.len(), expected, "{name}");
            assert_eq!(wal.len(), expected as u64, "{name}");
            fs::remove_dir_all(path.parent().unwrap()).ok();
        }
    }
}
