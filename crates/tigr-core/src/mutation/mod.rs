//! Online graph mutation: WAL + delta overlay + snapshot-isolated reads
//! + compaction.
//!
//! PR 8 made prepared graphs immutable mmap'd `TIGRCSR2` segments; this
//! module family opens the evolving-graph scenario class on top of them
//! without giving up that immutability:
//!
//! * [`Wal`] — an append-only, checksummed, fsync'd log of
//!   [`MutationOp`]s. Replay on open is crash-safe: a torn or corrupt
//!   tail is truncated back to the longest valid prefix and never
//!   panics.
//! * [`DeltaOverlay`] — an in-memory patch (per-node added edges,
//!   removed base-edge indices, weight overrides, extra nodes) layered
//!   over the immutable base CSR. [`OverlayView`] exposes base+delta
//!   through [`tigr_graph::GraphView`] so kernels iterate the merged
//!   adjacency without copying the base.
//! * [`GraphSnapshot`] — an `Arc`-held (base, delta, epoch) triple
//!   pinned by each admitted query: MVCC snapshot isolation, so
//!   concurrent mutations never change an in-flight answer. Old epochs
//!   are freed by reference counting as their last reader drops.
//! * [`MutableGraph`] — the serving wrapper tying it together, with
//!   [`MutableGraph::compact`]: merge base+delta into a fresh CSR,
//!   re-run preparation (re-splitting virtual nodes whose degree
//!   crossed `K`, §4.1), seal a new artifact, and swap the serving base
//!   atomically while draining old-epoch readers.
//!
//! # Durability protocol
//!
//! The WAL lives in the base artifact's `<key>.wal/` directory. Every
//! apply batch is appended and fsync'd *before* the in-memory overlay
//! changes. Compaction orders its durable steps so that a crash at any
//! point recovers the same visible graph: (1) write the compacted
//! artifact, (2) atomically update the `MANIFEST` pointer in the
//! original WAL dir, (3) atomically rewrite the WAL to the
//! post-snapshot tail. Replay of a *stale* (pre-reset) WAL over a
//! compacted base is state-convergent by construction: `AddEdge` of a
//! visible edge and `RemoveEdge` of an absent edge are skips, and
//! `AddNode` carries a target node count rather than an increment.

mod delta;
mod mutable;
mod wal;

use std::fmt;
use std::io;

use tigr_graph::GraphError;

pub use delta::{DeltaOverlay, OverlayView};
pub use mutable::{ApplySummary, CompactionStats, GraphSnapshot, MutableGraph};
pub use wal::{MutationOp, Recovery, Wal, WAL_MAGIC};

/// Why a mutation was rejected.
#[derive(Debug)]
pub enum MutationError {
    /// The operation is malformed for this graph (endpoint out of
    /// range, weighted op on an unweighted graph, ...). The graph is
    /// unchanged.
    Invalid(String),
    /// The graph cannot be mutated at all (e.g. it was physically
    /// transformed, so node ids no longer name original nodes).
    Immutable(String),
    /// Another compaction is already running.
    Busy,
    /// The WAL could not be written or recovered.
    Io(io::Error),
    /// Compaction failed to materialize the merged graph.
    Graph(GraphError),
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::Invalid(m) => write!(f, "invalid mutation: {m}"),
            MutationError::Immutable(m) => write!(f, "graph is immutable: {m}"),
            MutationError::Busy => write!(f, "compaction already in progress"),
            MutationError::Io(e) => write!(f, "WAL I/O error: {e}"),
            MutationError::Graph(e) => write!(f, "compaction failed: {e}"),
        }
    }
}

impl std::error::Error for MutationError {}

impl From<io::Error> for MutationError {
    fn from(e: io::Error) -> Self {
        MutationError::Io(e)
    }
}

impl From<GraphError> for MutationError {
    fn from(e: GraphError) -> Self {
        MutationError::Graph(e)
    }
}
