//! The prepared-graph artifact layer: `PrepareSpec` → [`GraphStore`] →
//! [`PreparedGraph`].
//!
//! Tigr's transformations are a one-time preprocessing cost the paper
//! amortizes across runs (§5, Table 7), so re-deriving the UDT/virtual
//! overlay and the pull-direction transpose on every invocation wastes
//! exactly the work the transformation was supposed to save. This module
//! makes preparation a first-class cached artifact:
//!
//! * A [`PrepareSpec`] fully describes the input (source file or
//!   generator tag + seed, optional uniform weights), the transformation
//!   (physical split kind + `K` + dumb-weight policy, or a virtual
//!   overlay + coalescing), and whether a transpose is needed.
//! * [`GraphStore::prepare`] resolves the spec into a [`PreparedGraph`]
//!   owning the CSR and every derived view, consulting a content-hash
//!   keyed on-disk cache of `TIGRCSR2` containers when a cache directory
//!   is configured. A hit loads the artifact and performs **zero**
//!   transform/transpose/overlay construction; a miss builds the views
//!   and writes the artifact for the next run.
//!
//! Cache keys hash the *canonical spec string* — which for file sources
//! embeds an FNV-1a hash of the file's bytes, and for generated sources
//! the generator tag and seed — so edits to the input file or any spec
//! field change the key. The canonical string is also embedded in the
//! artifact (`SECTION_SPEC`) and compared on load, guarding against hash
//! collisions and stale artifacts. Writes are deterministic: the same
//! spec always produces a byte-identical artifact.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tigr_graph::io::{
    self, find_section, fnv1a64, MappedContainer, Section, VerifyMode, SECTION_CSR,
    SECTION_OVERLAY, SECTION_REV_OVERLAY, SECTION_SPEC, SECTION_TRANSFORM, SECTION_TRANSPOSE,
};
use tigr_graph::reverse::transpose;
use tigr_graph::{generators, Csr, GraphError, Result, Segment};

use crate::cancel::CancelToken;
use crate::dumb_weights::DumbWeight;
use crate::k_select;
use crate::split::{
    circular_transform, clique_transform, recursive_star_transform, star_transform, udt_transform,
    TransformedGraph,
};
use crate::virtual_graph::VirtualGraph;

/// Where a graph comes from: a file on disk or a deterministic
/// generator invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSource {
    /// Load from a file; the cache key hashes the file's bytes, so
    /// editing the file invalidates cached artifacts.
    File(PathBuf),
    /// Generate deterministically from a tag and seed. Supported tags:
    ///
    /// * `dataset:<name>[:<denominator>[:weighted]]` — a paper dataset
    ///   proxy from `tigr_graph::datasets` at the given scale denominator
    ///   (default [`tigr_graph::datasets::DEFAULT_SCALE_DENOMINATOR`]).
    /// * `rmat:<scale>:<edge_factor>` — a Graph500 R-MAT instance.
    /// * `star:<nodes>` — a star graph (seed unused).
    /// * `ba:<nodes>:<edges_per_node>[:sym]` — Barabási–Albert.
    Generated {
        /// Generator tag (see variant docs for the grammar).
        tag: String,
        /// Generator seed.
        seed: u64,
    },
}

/// Physical split topology selector for [`PrepareSpec::transform`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransformKind {
    /// Uniform-degree tree (§3.2, the paper's sweet spot).
    Udt,
    /// Single-level star (Figure 5c).
    Star,
    /// Recursive star.
    RecursiveStar,
    /// Circular chain (Figure 5b).
    Circular,
    /// Clique (Figure 5a).
    Clique,
}

impl TransformKind {
    /// Stable label used in canonical spec strings and CLI parsing.
    pub fn label(self) -> &'static str {
        match self {
            TransformKind::Udt => "udt",
            TransformKind::Star => "star",
            TransformKind::RecursiveStar => "recursive-star",
            TransformKind::Circular => "circular",
            TransformKind::Clique => "clique",
        }
    }

    /// Parses a label produced by [`TransformKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "udt" => TransformKind::Udt,
            "star" => TransformKind::Star,
            "recursive-star" => TransformKind::RecursiveStar,
            "circular" => TransformKind::Circular,
            "clique" => TransformKind::Clique,
            _ => return None,
        })
    }

    /// Applies the transform to `g` with degree bound `k`.
    pub fn apply(self, g: &Csr, k: u32, dumb: DumbWeight) -> TransformedGraph {
        match self {
            TransformKind::Udt => udt_transform(g, k, dumb),
            TransformKind::Star => star_transform(g, k, dumb),
            TransformKind::RecursiveStar => recursive_star_transform(g, k, dumb),
            TransformKind::Circular => circular_transform(g, k, dumb),
            TransformKind::Clique => clique_transform(g, k, dumb),
        }
    }
}

/// Physical-transform request inside a [`PrepareSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransformSpec {
    /// Split topology to apply.
    pub kind: TransformKind,
    /// Degree bound; `None` selects [`k_select::physical_k`] for the
    /// resolved graph (deterministic per source).
    pub k: Option<u32>,
    /// Dumb-weight policy for introduced edges.
    pub dumb: DumbWeight,
}

/// A complete, hashable description of graph preparation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrepareSpec {
    /// Input graph source.
    pub source: GraphSource,
    /// Overlay `(lo, hi, seed)` uniform random weights after loading.
    pub uniform_weights: Option<(u32, u32, u64)>,
    /// Physical split transformation to apply.
    pub transform: Option<TransformSpec>,
    /// Build a virtual overlay with this degree bound `K`.
    pub virtual_k: Option<u32>,
    /// Use the coalesced (`Tigr-V+`) overlay layout.
    pub coalesced: bool,
    /// Build the transpose (and, for virtual specs, its mirrored
    /// overlay) — required for pull/auto direction.
    pub transpose: bool,
}

impl PrepareSpec {
    /// Spec loading `path` with no derived views.
    pub fn from_file(path: impl Into<PathBuf>) -> Self {
        PrepareSpec {
            source: GraphSource::File(path.into()),
            uniform_weights: None,
            transform: None,
            virtual_k: None,
            coalesced: false,
            transpose: false,
        }
    }

    /// Spec generating from `tag` + `seed` with no derived views.
    pub fn generated(tag: impl Into<String>, seed: u64) -> Self {
        PrepareSpec {
            source: GraphSource::Generated {
                tag: tag.into(),
                seed,
            },
            uniform_weights: None,
            transform: None,
            virtual_k: None,
            coalesced: false,
            transpose: false,
        }
    }

    /// Adds uniform random weights in `[lo, hi]` drawn with `seed`.
    #[must_use]
    pub fn with_uniform_weights(mut self, lo: u32, hi: u32, seed: u64) -> Self {
        self.uniform_weights = Some((lo, hi, seed));
        self
    }

    /// Requests a physical split transform.
    #[must_use]
    pub fn with_transform(mut self, kind: TransformKind, k: Option<u32>, dumb: DumbWeight) -> Self {
        self.transform = Some(TransformSpec { kind, k, dumb });
        self
    }

    /// Requests a virtual overlay with degree bound `k`.
    #[must_use]
    pub fn with_virtual(mut self, k: u32, coalesced: bool) -> Self {
        self.virtual_k = Some(k);
        self.coalesced = coalesced;
        self
    }

    /// Requests the transpose views (needed for pull/auto direction).
    #[must_use]
    pub fn with_transpose(mut self, yes: bool) -> Self {
        self.transpose = yes;
        self
    }

    /// The canonical spec string the cache key hashes, with the source
    /// identity resolved: file sources embed `content_hash`, generated
    /// sources their tag and seed.
    fn canonical(&self, content_hash: Option<u64>) -> String {
        let source = match (&self.source, content_hash) {
            (GraphSource::File(_), Some(h)) => format!("file:{h:016x}"),
            (GraphSource::File(p), None) => format!("file-path:{}", p.display()),
            (GraphSource::Generated { tag, seed }, _) => format!("gen:{tag}:{seed}"),
        };
        let weights = match self.uniform_weights {
            Some((lo, hi, seed)) => format!("{lo}:{hi}:{seed}"),
            None => "none".into(),
        };
        let transform = match &self.transform {
            Some(t) => format!(
                "{}:{}:{}",
                t.kind.label(),
                t.k.map_or_else(|| "auto".into(), |k| k.to_string()),
                match t.dumb {
                    DumbWeight::Zero => "zero",
                    DumbWeight::Infinity => "inf",
                    DumbWeight::Unweighted => "none",
                }
            ),
            None => "none".into(),
        };
        let overlay = match self.virtual_k {
            Some(k) if self.coalesced => format!("{k}:coalesced"),
            Some(k) => format!("{k}:consecutive"),
            None => "none".into(),
        };
        format!(
            "tigr-prepare-v2|source={source}|weights={weights}|transform={transform}|virtual={overlay}|transpose={}",
            self.transpose as u8
        )
    }
}

/// The derived views a graph carries, detached from any source spec —
/// what compaction must rebuild when it materializes a mutated CSR into
/// a fresh [`PreparedGraph`]. Physical split transforms are deliberately
/// absent: a physically transformed graph renumbers nodes, so the
/// mutation layer refuses to mutate one rather than guess a mapping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ViewPlan {
    /// Rebuild a virtual overlay with this degree bound `K` (re-splitting
    /// nodes whose degree crossed `K` since the base was prepared, per
    /// §4.1's split rule).
    pub virtual_k: Option<u32>,
    /// Use the coalesced (`Tigr-V+`) overlay layout.
    pub coalesced: bool,
    /// Rebuild the transpose (and mirrored overlay).
    pub transpose: bool,
}

impl ViewPlan {
    /// The plan that reproduces `p`'s derived views.
    pub fn from_prepared(p: &PreparedGraph) -> Self {
        ViewPlan {
            virtual_k: p.overlay().map(VirtualGraph::k),
            coalesced: p.overlay().is_some_and(VirtualGraph::is_coalesced),
            transpose: p.transpose().is_some(),
        }
    }

    /// Canonical artifact-spec string for a materialized CSR with this
    /// plan; `csr_hash` is an FNV-1a of the encoded CSR bytes, so the
    /// key tracks graph content exactly like file-source prepare keys.
    pub(crate) fn canonical(self, csr_hash: u64) -> String {
        let overlay = match self.virtual_k {
            Some(k) if self.coalesced => format!("{k}:coalesced"),
            Some(k) => format!("{k}:consecutive"),
            None => "none".into(),
        };
        format!(
            "tigr-compact-v1|csr={csr_hash:016x}|virtual={overlay}|transpose={}",
            self.transpose as u8
        )
    }
}

/// Map-vs-decode policy for opening cached artifacts (see
/// [`GraphStore::with_mmap`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MmapMode {
    /// Always serve cache hits from a memory mapping, and re-open the
    /// freshly written artifact by map after a miss so the process ends
    /// up on mapped storage either way.
    On,
    /// Never map: cache hits are decoded into owned heap arrays.
    Off,
    /// Map on cache hit, keep the in-memory views just built on a miss
    /// (skipping a redundant re-open). The default.
    #[default]
    Auto,
}

impl MmapMode {
    /// Parses `on` / `off` / `auto` (as accepted by `--mmap` and the
    /// `TIGR_MMAP` environment variable).
    pub fn parse(s: &str) -> Option<MmapMode> {
        match s {
            "on" => Some(MmapMode::On),
            "off" => Some(MmapMode::Off),
            "auto" => Some(MmapMode::Auto),
            _ => None,
        }
    }

    /// The flag spelling (`on` / `off` / `auto`).
    pub fn label(self) -> &'static str {
        match self {
            MmapMode::On => "on",
            MmapMode::Off => "off",
            MmapMode::Auto => "auto",
        }
    }
}

/// How a [`PreparedGraph`]'s views ended up in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// Views borrow a memory-mapped artifact; payload bytes were never
    /// copied onto the heap.
    Mapped,
    /// Views were decoded from an artifact into owned heap arrays.
    Decoded,
    /// Views were derived from the source (cache miss or caching off).
    Built,
}

impl OpenMode {
    /// Stable lowercase label (`mapped`/`decoded`/`built`).
    pub fn label(self) -> &'static str {
        match self {
            OpenMode::Mapped => "mapped",
            OpenMode::Decoded => "decoded",
            OpenMode::Built => "built",
        }
    }
}

/// How a [`PreparedGraph`] was opened: mode, verification level, wall
/// time, and where its view bytes live (mapped segment vs heap).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenInfo {
    /// How the views came to be (mapped / decoded / built).
    pub mode: OpenMode,
    /// Verification level the open used (meaningless for `Built`).
    pub verify: VerifyMode,
    /// Wall-clock microseconds the open (or build) took.
    pub open_us: u64,
    /// View bytes served from a mapped segment.
    pub mapped_bytes: usize,
    /// View bytes owned on the heap.
    pub heap_bytes: usize,
}

/// Outcome of the cache consultation for one [`GraphStore::prepare`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Artifact found and loaded; no derivation work performed.
    Hit,
    /// No valid artifact; views were built (and the artifact written).
    Miss,
    /// The store has no cache directory.
    Disabled,
}

impl CacheStatus {
    /// Stable lowercase label (`hit`/`miss`/`off`).
    pub fn label(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Disabled => "off",
        }
    }
}

/// What [`GraphStore::prepare`] did: cache outcome plus the number of
/// derivation steps actually executed (all zero on a hit).
#[derive(Clone, Debug)]
pub struct PrepareReport {
    /// Cache outcome.
    pub cache: CacheStatus,
    /// Cache key (16 hex digits), also the artifact file stem.
    pub key: String,
    /// Artifact path consulted/written, when caching is enabled.
    pub artifact: Option<PathBuf>,
    /// Physical split transforms built this call.
    pub transforms_built: u32,
    /// Transposes built this call.
    pub transposes_built: u32,
    /// Virtual overlays built this call (forward and reverse count
    /// separately).
    pub overlays_built: u32,
}

impl PrepareReport {
    /// Total derivation steps executed (`0` proves a warm run).
    pub fn work_items(&self) -> u32 {
        self.transforms_built + self.transposes_built + self.overlays_built
    }
}

/// A graph together with every derived view its spec requested, all
/// owned — the engine borrows from this one struct instead of each call
/// site threading separately constructed pieces.
pub struct PreparedGraph {
    graph: Csr,
    transpose: Option<Csr>,
    overlay: Option<VirtualGraph>,
    rev_overlay: Option<VirtualGraph>,
    transformed: Option<TransformedGraph>,
    report: PrepareReport,
    /// Backing segment when views borrow a mapped (or owned-container)
    /// artifact; keeps the mapping alive for the views' lifetime.
    segment: Option<Arc<Segment>>,
    open: OpenInfo,
}

impl PreparedGraph {
    /// The base (post-weights) graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The transpose of [`Self::graph`], when the spec requested it.
    pub fn transpose(&self) -> Option<&Csr> {
        self.transpose.as_ref()
    }

    /// The forward virtual overlay, when the spec requested one.
    pub fn overlay(&self) -> Option<&VirtualGraph> {
        self.overlay.as_ref()
    }

    /// The overlay mirrored onto the transpose (present iff both
    /// `virtual_k` and `transpose` were requested).
    pub fn rev_overlay(&self) -> Option<&VirtualGraph> {
        self.rev_overlay.as_ref()
    }

    /// The physical split transform, when the spec requested one.
    pub fn transformed(&self) -> Option<&TransformedGraph> {
        self.transformed.as_ref()
    }

    /// What preparation did (cache outcome, work counters).
    pub fn report(&self) -> &PrepareReport {
        &self.report
    }

    /// How the views were opened (mode, wall time, byte accounting).
    pub fn open_info(&self) -> &OpenInfo {
        &self.open
    }

    /// `true` when the views borrow a memory-mapped artifact.
    pub fn is_mapped(&self) -> bool {
        self.open.mode == OpenMode::Mapped
    }

    /// The artifact segment backing mapped views, when there is one.
    pub fn segment(&self) -> Option<&Arc<Segment>> {
        self.segment.as_ref()
    }

    /// Sums mapped-vs-heap bytes across every view.
    fn tally_bytes(&self) -> (usize, usize) {
        let mut mapped = self.graph.mapped_bytes();
        let mut heap = self.graph.heap_bytes();
        if let Some(t) = &self.transpose {
            mapped += t.mapped_bytes();
            heap += t.heap_bytes();
        }
        for vg in [&self.overlay, &self.rev_overlay].into_iter().flatten() {
            mapped += vg.mapped_bytes();
            heap += vg.heap_bytes();
        }
        if let Some(t) = &self.transformed {
            heap += t.graph().heap_bytes();
        }
        (mapped, heap)
    }

    /// Installs the open record, deriving the byte tallies and
    /// downgrading `Mapped` to `Decoded` when the views did not actually
    /// end up borrowing a mapping (alignment or platform fallback).
    fn finish_open(&mut self, mode: OpenMode, verify: VerifyMode, started: Instant) {
        let (mapped_bytes, heap_bytes) = self.tally_bytes();
        let mode = if mode == OpenMode::Mapped && mapped_bytes == 0 {
            OpenMode::Decoded
        } else {
            mode
        };
        self.open = OpenInfo {
            mode,
            verify,
            open_us: started.elapsed().as_micros() as u64,
            mapped_bytes,
            heap_bytes,
        };
    }

    /// Consumes the prepared graph, returning the owned base CSR (for
    /// callers that only need the graph itself).
    pub fn into_graph(self) -> Csr {
        self.graph
    }
}

impl fmt::Debug for PreparedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PreparedGraph")
            .field("nodes", &self.graph.num_nodes())
            .field("edges", &self.graph.num_edges())
            .field("transpose", &self.transpose.is_some())
            .field("overlay", &self.overlay.is_some())
            .field("transformed", &self.transformed.is_some())
            .field("cache", &self.report.cache)
            .field("open", &self.open.mode)
            .finish()
    }
}

/// Resolves [`PrepareSpec`]s into [`PreparedGraph`]s through an optional
/// on-disk artifact cache.
#[derive(Clone, Debug)]
pub struct GraphStore {
    cache_dir: Option<PathBuf>,
    mmap: MmapMode,
    verify: VerifyMode,
}

impl GraphStore {
    /// Store caching under `cache_dir` (`None` disables caching), with
    /// the default map policy ([`MmapMode::Auto`]) and eager
    /// verification.
    pub fn new(cache_dir: Option<PathBuf>) -> Self {
        GraphStore {
            cache_dir,
            mmap: MmapMode::default(),
            verify: VerifyMode::default(),
        }
    }

    /// Store with caching disabled.
    pub fn disabled() -> Self {
        GraphStore::new(None)
    }

    /// Store configured from the environment: `TIGR_CACHE_DIR` for the
    /// cache directory, `TIGR_MMAP` (`on`/`off`/`auto`) for the map
    /// policy, and `TIGR_VERIFY` (`eager`/`lazy`) for artifact
    /// verification. Unset or unrecognized values fall back to the
    /// defaults.
    pub fn from_env() -> Self {
        let mmap = std::env::var("TIGR_MMAP")
            .ok()
            .and_then(|s| MmapMode::parse(&s))
            .unwrap_or_default();
        let verify = std::env::var("TIGR_VERIFY")
            .ok()
            .and_then(|s| VerifyMode::parse(&s))
            .unwrap_or_default();
        GraphStore {
            cache_dir: std::env::var_os("TIGR_CACHE_DIR").map(PathBuf::from),
            mmap,
            verify,
        }
    }

    /// Replaces the cache directory, keeping the map and verify policy.
    #[must_use]
    pub fn with_cache_dir(mut self, cache_dir: Option<PathBuf>) -> Self {
        self.cache_dir = cache_dir;
        self
    }

    /// Sets the map-vs-decode policy for artifact opens.
    #[must_use]
    pub fn with_mmap(mut self, mode: MmapMode) -> Self {
        self.mmap = mode;
        self
    }

    /// Sets the verification level for artifact opens.
    #[must_use]
    pub fn with_verify(mut self, verify: VerifyMode) -> Self {
        self.verify = verify;
        self
    }

    /// The configured cache directory, if any.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// The configured map-vs-decode policy.
    pub fn mmap(&self) -> MmapMode {
        self.mmap
    }

    /// The configured verification level.
    pub fn verify(&self) -> VerifyMode {
        self.verify
    }

    /// Resolves `spec` into a [`PreparedGraph`]: loads a cached artifact
    /// when one matches, otherwise loads/generates the graph, builds the
    /// requested views, and (if caching is enabled) writes the artifact.
    ///
    /// A corrupt or stale artifact is treated as a miss and rebuilt; the
    /// condition is reported on stderr but never fails the call.
    ///
    /// Resolution is safe under concurrency: any number of threads (or
    /// processes) may warm the same key at once. Each racer writes the
    /// artifact through its own uniquely named temp file and publishes it
    /// with an atomic rename, so every racer succeeds and returns a
    /// coherent [`PreparedGraph`]; the artifacts are byte-identical, so
    /// it does not matter whose rename lands last.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] when the source cannot be loaded or the
    /// generator tag is malformed.
    pub fn prepare(&self, spec: &PrepareSpec) -> Result<PreparedGraph> {
        self.prepare_cancellable(spec, &CancelToken::never())
    }

    /// [`GraphStore::prepare`] with a cooperative cancellation hook: the
    /// token is polled between derivation steps (after the source
    /// resolves, and before each transform / overlay / transpose build),
    /// so a deadline-bound caller never waits out an expensive
    /// derivation it no longer wants. A fired token aborts with
    /// [`GraphError::Cancelled`] and writes no artifact.
    ///
    /// # Errors
    ///
    /// Everything [`GraphStore::prepare`] returns, plus
    /// [`GraphError::Cancelled`] when `cancel` fires mid-derivation.
    pub fn prepare_cancellable(
        &self,
        spec: &PrepareSpec,
        cancel: &CancelToken,
    ) -> Result<PreparedGraph> {
        // Resolve the source identity first: file bytes are read exactly
        // once and reused for parsing on a miss.
        let file_bytes = match &spec.source {
            GraphSource::File(path) => Some(fs::read(path)?),
            GraphSource::Generated { .. } => None,
        };
        let canonical = spec.canonical(file_bytes.as_deref().map(fnv1a64));
        let key = format!("{:016x}", fnv1a64(canonical.as_bytes()));
        let artifact = self
            .cache_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.tigr")));

        if let Some(path) = &artifact {
            if path.exists() {
                match load_artifact(
                    path,
                    spec,
                    &canonical,
                    self.mmap != MmapMode::Off,
                    self.verify,
                ) {
                    Ok(mut prepared) => {
                        prepared.report = PrepareReport {
                            cache: CacheStatus::Hit,
                            key,
                            artifact: artifact.clone(),
                            transforms_built: 0,
                            transposes_built: 0,
                            overlays_built: 0,
                        };
                        // A half-created cache entry (artifact renamed
                        // into place, WAL directory lost with the crash)
                        // must open cleanly: recreate the WAL dir
                        // idempotently on every hit.
                        ensure_wal_dir(path);
                        return Ok(prepared);
                    }
                    Err(e) => {
                        eprintln!(
                            "tigr: cache artifact {} unusable ({e}); rebuilding",
                            path.display()
                        );
                    }
                }
            }
        }

        let mut report = PrepareReport {
            cache: if artifact.is_some() {
                CacheStatus::Miss
            } else {
                CacheStatus::Disabled
            },
            key,
            artifact: artifact.clone(),
            transforms_built: 0,
            transposes_built: 0,
            overlays_built: 0,
        };

        if cancel.is_cancelled() {
            return Err(GraphError::Cancelled);
        }
        let build_started = Instant::now();
        let mut graph = match &spec.source {
            GraphSource::File(path) => parse_graph_bytes(path, &file_bytes.unwrap())?,
            GraphSource::Generated { tag, seed } => generate_from_tag(tag, *seed)?,
        };
        if let Some((lo, hi, seed)) = spec.uniform_weights {
            graph = generators::with_uniform_weights(&graph, lo, hi, seed);
        }

        if cancel.is_cancelled() {
            return Err(GraphError::Cancelled);
        }
        let transformed = spec.transform.as_ref().map(|t| {
            report.transforms_built += 1;
            let k = t.k.unwrap_or_else(|| k_select::physical_k(&graph));
            t.kind.apply(&graph, k, t.dumb)
        });
        if cancel.is_cancelled() {
            return Err(GraphError::Cancelled);
        }
        let overlay = spec.virtual_k.map(|k| {
            report.overlays_built += 1;
            if spec.coalesced {
                VirtualGraph::coalesced(&graph, k)
            } else {
                VirtualGraph::new(&graph, k)
            }
        });
        if cancel.is_cancelled() {
            return Err(GraphError::Cancelled);
        }
        let rev = if spec.transpose {
            report.transposes_built += 1;
            Some(transpose(&graph))
        } else {
            None
        };
        if cancel.is_cancelled() {
            return Err(GraphError::Cancelled);
        }
        let rev_overlay = match (&rev, spec.virtual_k) {
            (Some(rev), Some(k)) => {
                report.overlays_built += 1;
                Some(if spec.coalesced {
                    VirtualGraph::coalesced(rev, k)
                } else {
                    VirtualGraph::new(rev, k)
                })
            }
            _ => None,
        };

        let mut prepared = PreparedGraph {
            graph,
            transpose: rev,
            overlay,
            rev_overlay,
            transformed,
            report,
            segment: None,
            open: PLACEHOLDER_OPEN,
        };
        prepared.finish_open(OpenMode::Built, self.verify, build_started);

        if let Some(path) = &artifact {
            ensure_wal_dir(path);
            match write_artifact(path, &prepared, &canonical) {
                Ok(()) if self.mmap == MmapMode::On => {
                    // The policy demands mapped storage: swap the just
                    // built heap views for borrowed views of the artifact
                    // that was just written. Any failure keeps the built
                    // views — the result is identical either way.
                    match load_artifact(path, spec, &canonical, true, self.verify) {
                        Ok(mut mapped) => {
                            mapped.report = prepared.report.clone();
                            return Ok(mapped);
                        }
                        Err(e) => eprintln!(
                            "tigr: could not re-open artifact {} by map ({e}); keeping built views",
                            path.display()
                        ),
                    }
                }
                Ok(()) => {}
                Err(e) => eprintln!(
                    "tigr: failed to write cache artifact {} ({e})",
                    path.display()
                ),
            }
        }
        Ok(prepared)
    }

    /// Materializes an in-memory CSR into a [`PreparedGraph`], rebuilding
    /// the derived views `plan` names and — when caching is enabled —
    /// sealing the result into a fresh `TIGRCSR2` artifact (with its WAL
    /// directory) keyed by the CSR's content. This is the compaction
    /// path: base+delta has already been merged into `graph`, and the
    /// virtual overlay is rebuilt from scratch, so nodes whose degree
    /// crossed `K` under mutation are re-split exactly as a cold prepare
    /// of the merged edge list would split them.
    pub fn materialize(&self, graph: Csr, plan: ViewPlan) -> Result<PreparedGraph> {
        let started = Instant::now();
        let canonical = plan.canonical(fnv1a64(&io::encode_csr(&graph)));
        let key = format!("{:016x}", fnv1a64(canonical.as_bytes()));
        let artifact = self
            .cache_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.tigr")));

        let overlay = plan.virtual_k.map(|k| {
            if plan.coalesced {
                VirtualGraph::coalesced(&graph, k)
            } else {
                VirtualGraph::new(&graph, k)
            }
        });
        let rev = if plan.transpose {
            Some(transpose(&graph))
        } else {
            None
        };
        let rev_overlay = match (&rev, plan.virtual_k) {
            (Some(rev), Some(k)) => Some(if plan.coalesced {
                VirtualGraph::coalesced(rev, k)
            } else {
                VirtualGraph::new(rev, k)
            }),
            _ => None,
        };

        let report = PrepareReport {
            cache: if artifact.is_some() {
                CacheStatus::Miss
            } else {
                CacheStatus::Disabled
            },
            key,
            artifact: artifact.clone(),
            transforms_built: 0,
            transposes_built: rev.is_some() as u32,
            overlays_built: overlay.is_some() as u32 + rev_overlay.is_some() as u32,
        };
        let mut prepared = PreparedGraph {
            graph,
            transpose: rev,
            overlay,
            rev_overlay,
            transformed: None,
            report,
            segment: None,
            open: PLACEHOLDER_OPEN,
        };
        prepared.finish_open(OpenMode::Built, self.verify, started);

        if let Some(path) = &artifact {
            ensure_wal_dir(path);
            if let Err(e) = write_artifact(path, &prepared, &canonical) {
                eprintln!(
                    "tigr: failed to write compacted artifact {} ({e})",
                    path.display()
                );
            }
        }
        Ok(prepared)
    }

    /// Re-opens an artifact previously sealed by [`GraphStore::materialize`]
    /// (compaction's MANIFEST redirect path). The embedded spec echo must
    /// match `canonical` — a mismatch (stale manifest, evicted-and-reused
    /// key) is an error the caller downgrades to replaying the full WAL
    /// over the original base.
    pub(crate) fn open_materialized(
        &self,
        artifact: &Path,
        plan: ViewPlan,
        canonical: &str,
    ) -> Result<PreparedGraph> {
        let mut spec = PrepareSpec::generated("materialized", 0).with_transpose(plan.transpose);
        if let Some(k) = plan.virtual_k {
            spec = spec.with_virtual(k, plan.coalesced);
        }
        let mut prepared = load_artifact(
            artifact,
            &spec,
            canonical,
            self.mmap != MmapMode::Off,
            self.verify,
        )?;
        prepared.report = PrepareReport {
            cache: CacheStatus::Hit,
            key: artifact
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_string(),
            artifact: Some(artifact.to_path_buf()),
            transforms_built: 0,
            transposes_built: 0,
            overlays_built: 0,
        };
        ensure_wal_dir(artifact);
        Ok(prepared)
    }
}

/// The WAL directory paired with an artifact path: `<key>.tigr` keeps
/// its mutation log under `<key>.wal/`.
pub fn wal_dir_for(artifact: &Path) -> PathBuf {
    artifact.with_extension("wal")
}

/// Creates the artifact's WAL directory idempotently (`mkdir` is atomic:
/// concurrent racers all succeed). Failure is reported but never fails
/// the open — a read-only cache still serves immutable graphs.
fn ensure_wal_dir(artifact: &Path) {
    let dir = wal_dir_for(artifact);
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("tigr: could not create WAL dir {} ({e})", dir.display());
    }
}

/// Open record used while a [`PreparedGraph`] is under construction,
/// before [`PreparedGraph::finish_open`] installs the real one.
const PLACEHOLDER_OPEN: OpenInfo = OpenInfo {
    mode: OpenMode::Built,
    verify: VerifyMode::Eager,
    open_us: 0,
    mapped_bytes: 0,
    heap_bytes: 0,
};

/// Parses graph bytes using the format implied by `path`'s extension
/// (mirrors `tigr_graph::io::load_path`, but over already-read bytes).
fn parse_graph_bytes(path: &Path, bytes: &[u8]) -> Result<Csr> {
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_lowercase();
    match ext.as_str() {
        "bin" | "tigr" => io::read_binary(bytes),
        "mtx" => io::parse_matrix_market(bytes),
        "gr" => io::parse_dimacs(bytes),
        _ => io::parse_edge_list(bytes),
    }
}

/// Resolves a generator tag (see [`GraphSource::Generated`]).
fn generate_from_tag(tag: &str, seed: u64) -> Result<Csr> {
    let bad = |msg: String| GraphError::InvalidFormat(msg);
    let parts: Vec<&str> = tag.split(':').collect();
    let int = |s: &str, what: &str| -> Result<u64> {
        s.parse::<u64>()
            .map_err(|_| bad(format!("generator tag `{tag}`: invalid {what} `{s}`")))
    };
    match parts.as_slice() {
        ["dataset", name, rest @ ..] => {
            let ds = tigr_graph::datasets::by_name(name)
                .ok_or_else(|| bad(format!("unknown dataset `{name}` in tag `{tag}`")))?;
            let (denom, weighted) = match rest {
                [] => (tigr_graph::datasets::DEFAULT_SCALE_DENOMINATOR, false),
                [d] => (int(d, "denominator")?, false),
                [d, "weighted"] => (int(d, "denominator")?, true),
                _ => return Err(bad(format!("malformed dataset tag `{tag}`"))),
            };
            Ok(if weighted {
                ds.generate_weighted(denom, seed)
            } else {
                ds.generate(denom, seed)
            })
        }
        ["rmat", scale, ef] => {
            let config = generators::RmatConfig::graph500(
                int(scale, "scale")? as u32,
                int(ef, "edge factor")? as usize,
            );
            Ok(generators::rmat(&config, seed))
        }
        ["star", n] => Ok(generators::star_graph(int(n, "node count")? as usize)),
        ["ba", n, m, rest @ ..] => {
            let symmetric = match rest {
                [] => false,
                ["sym"] => true,
                _ => return Err(bad(format!("malformed ba tag `{tag}`"))),
            };
            let config = generators::BarabasiAlbertConfig {
                num_nodes: int(n, "node count")? as usize,
                edges_per_node: int(m, "edges per node")? as usize,
                symmetric,
            };
            Ok(generators::barabasi_albert(&config, seed))
        }
        _ => Err(bad(format!("unknown generator tag `{tag}`"))),
    }
}

/// Loads and validates a cached artifact against `spec`: the embedded
/// canonical string must match, and every view the spec requires must be
/// present. Any failure is an error the caller downgrades to a miss.
///
/// With `mmap` the artifact is opened through [`MappedContainer`] and
/// the CSR/overlay views borrow the mapping in place (on 64-bit
/// little-endian targets; elsewhere the container transparently decodes
/// into owned arrays). Without it the artifact is read and decoded onto
/// the heap as before.
fn load_artifact(
    path: &Path,
    spec: &PrepareSpec,
    canonical: &str,
    mmap: bool,
    verify: VerifyMode,
) -> Result<PreparedGraph> {
    if mmap {
        load_artifact_mapped(path, spec, canonical, verify)
    } else {
        load_artifact_decoded(path, spec, canonical)
    }
}

/// Placeholder report installed by the load paths; the caller overwrites
/// it with the real cache outcome.
fn placeholder_report() -> PrepareReport {
    PrepareReport {
        cache: CacheStatus::Hit,
        key: String::new(),
        artifact: None,
        transforms_built: 0,
        transposes_built: 0,
        overlays_built: 0,
    }
}

/// The zero-copy open path: map the artifact, validate the section table
/// (and, under eager verification, every payload checksum), then borrow
/// the CSR and overlay tables directly from the mapping.
fn load_artifact_mapped(
    path: &Path,
    spec: &PrepareSpec,
    canonical: &str,
    verify: VerifyMode,
) -> Result<PreparedGraph> {
    let started = Instant::now();
    let container = MappedContainer::open(path, verify)?;
    let stale = |what: &str| GraphError::InvalidFormat(format!("artifact {what}"));
    let invalid = GraphError::InvalidFormat;

    let echoed = container
        .section_bytes(SECTION_SPEC)
        .ok_or_else(|| stale("has no spec section"))?;
    if echoed != canonical.as_bytes() {
        return Err(stale("spec echo mismatch (stale or hash collision)"));
    }
    let graph = container
        .csr(SECTION_CSR)?
        .ok_or_else(|| stale("has no CSR section"))?;
    let rev = if spec.transpose {
        Some(
            container
                .csr(SECTION_TRANSPOSE)?
                .ok_or_else(|| stale("lacks required transpose section"))?,
        )
    } else {
        None
    };
    let deep_validate = verify == VerifyMode::Eager;
    let overlay = if spec.virtual_k.is_some() {
        let vg = VirtualGraph::from_container(&container, SECTION_OVERLAY, deep_validate)
            .map_err(invalid)?
            .ok_or_else(|| stale("lacks required overlay section"))?;
        if vg.num_physical_nodes() != graph.num_nodes() {
            return Err(stale("overlay does not match CSR"));
        }
        Some(vg)
    } else {
        None
    };
    let rev_overlay = match (&rev, spec.virtual_k) {
        (Some(rev), Some(_)) => {
            let vg = VirtualGraph::from_container(&container, SECTION_REV_OVERLAY, deep_validate)
                .map_err(invalid)?
                .ok_or_else(|| stale("lacks required reverse-overlay section"))?;
            if vg.num_physical_nodes() != rev.num_nodes() {
                return Err(stale("reverse overlay does not match transpose"));
            }
            Some(vg)
        }
        _ => None,
    };
    let transformed = if spec.transform.is_some() {
        let bytes = container
            .section_bytes(SECTION_TRANSFORM)
            .ok_or_else(|| stale("lacks required transform section"))?;
        Some(TransformedGraph::from_section_bytes(bytes).map_err(invalid)?)
    } else {
        None
    };

    let mode = if container.is_mapped() {
        OpenMode::Mapped
    } else {
        OpenMode::Decoded
    };
    let mut prepared = PreparedGraph {
        graph,
        transpose: rev,
        overlay,
        rev_overlay,
        transformed,
        report: placeholder_report(),
        segment: Some(Arc::clone(container.segment())),
        open: PLACEHOLDER_OPEN,
    };
    prepared.finish_open(mode, verify, started);
    Ok(prepared)
}

/// The classic open path: read the whole artifact and decode every
/// section into owned heap arrays. Always verifies eagerly —
/// [`io::read_container`] hashes every payload as part of parsing.
fn load_artifact_decoded(
    path: &Path,
    spec: &PrepareSpec,
    canonical: &str,
) -> Result<PreparedGraph> {
    let started = Instant::now();
    let sections = io::read_container(fs::File::open(path)?)?;
    let stale = |what: &str| GraphError::InvalidFormat(format!("artifact {what}"));

    let echoed =
        find_section(&sections, SECTION_SPEC).ok_or_else(|| stale("has no spec section"))?;
    if echoed.payload != canonical.as_bytes() {
        return Err(stale("spec echo mismatch (stale or hash collision)"));
    }
    let csr = find_section(&sections, SECTION_CSR).ok_or_else(|| stale("has no CSR section"))?;
    let graph = io::decode_csr(&csr.payload)?;

    let rev = if spec.transpose {
        let s = find_section(&sections, SECTION_TRANSPOSE)
            .ok_or_else(|| stale("lacks required transpose section"))?;
        Some(io::decode_csr(&s.payload)?)
    } else {
        None
    };
    let overlay = if spec.virtual_k.is_some() {
        let s = find_section(&sections, SECTION_OVERLAY)
            .ok_or_else(|| stale("lacks required overlay section"))?;
        let vg = VirtualGraph::from_section_bytes(&s.payload).map_err(GraphError::InvalidFormat)?;
        if vg.num_physical_nodes() != graph.num_nodes() {
            return Err(stale("overlay does not match CSR"));
        }
        Some(vg)
    } else {
        None
    };
    let rev_overlay = match (&rev, spec.virtual_k) {
        (Some(rev), Some(_)) => {
            let s = find_section(&sections, SECTION_REV_OVERLAY)
                .ok_or_else(|| stale("lacks required reverse-overlay section"))?;
            let vg =
                VirtualGraph::from_section_bytes(&s.payload).map_err(GraphError::InvalidFormat)?;
            if vg.num_physical_nodes() != rev.num_nodes() {
                return Err(stale("reverse overlay does not match transpose"));
            }
            Some(vg)
        }
        _ => None,
    };
    let transformed = if spec.transform.is_some() {
        let s = find_section(&sections, SECTION_TRANSFORM)
            .ok_or_else(|| stale("lacks required transform section"))?;
        Some(TransformedGraph::from_section_bytes(&s.payload).map_err(GraphError::InvalidFormat)?)
    } else {
        None
    };

    let mut prepared = PreparedGraph {
        graph,
        transpose: rev,
        overlay,
        rev_overlay,
        transformed,
        report: placeholder_report(),
        segment: None,
        open: PLACEHOLDER_OPEN,
    };
    prepared.finish_open(OpenMode::Decoded, VerifyMode::Eager, started);
    Ok(prepared)
}

/// Monotone counter distinguishing concurrent temp files within one
/// process; the process id alone is not unique across threads racing
/// the same key.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes the artifact atomically (uniquely named temp file + rename) so
/// a concurrent reader never observes a partial container and same-key
/// racers never clobber each other's in-progress temp file.
fn write_artifact(path: &Path, prepared: &PreparedGraph, canonical: &str) -> Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut sections = vec![
        Section::new(SECTION_SPEC, canonical.as_bytes().to_vec()),
        Section::new(SECTION_CSR, io::encode_csr(&prepared.graph)),
    ];
    if let Some(rev) = &prepared.transpose {
        sections.push(Section::new(SECTION_TRANSPOSE, io::encode_csr(rev)));
    }
    if let Some(vg) = &prepared.overlay {
        sections.push(Section::new(SECTION_OVERLAY, vg.to_section_bytes()));
    }
    if let Some(vg) = &prepared.rev_overlay {
        sections.push(Section::new(SECTION_REV_OVERLAY, vg.to_section_bytes()));
    }
    if let Some(t) = &prepared.transformed {
        sections.push(Section::new(SECTION_TRANSFORM, t.to_section_bytes()));
    }
    let tmp = path.with_extension(format!(
        "tmp{}-{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    // Durability, not just atomicity: fsync the temp file before the
    // rename (so the rename never publishes a name for unwritten data)
    // and fsync the directory after it (so the rename itself survives a
    // crash). Without these a power loss can leave a valid-looking path
    // whose artifact bytes were lost with the page cache — exactly the
    // kind of torn artifact the checksum layer would then reject on
    // every subsequent open.
    let file = fs::File::create(&tmp)?;
    io::write_container(&sections, &file)?;
    file.sync_all()?;
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tigr_store_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn full_spec() -> PrepareSpec {
        PrepareSpec::generated("rmat:8:8", 42)
            .with_uniform_weights(1, 64, 7)
            .with_virtual(8, true)
            .with_transpose(true)
    }

    #[test]
    fn disabled_store_builds_everything() {
        let store = GraphStore::disabled();
        let p = store.prepare(&full_spec()).unwrap();
        assert_eq!(p.report().cache, CacheStatus::Disabled);
        assert_eq!(p.report().transposes_built, 1);
        assert_eq!(p.report().overlays_built, 2);
        assert!(p.transpose().is_some());
        assert!(p.overlay().unwrap().is_coalesced());
        assert!(p.rev_overlay().is_some());
        p.overlay().unwrap().validate_against(p.graph()).unwrap();
        p.rev_overlay()
            .unwrap()
            .validate_against(p.transpose().unwrap())
            .unwrap();
    }

    #[test]
    fn miss_then_hit_with_zero_work() {
        let dir = temp_dir("hit");
        let store = GraphStore::new(Some(dir.clone()));
        let spec = full_spec();

        let first = store.prepare(&spec).unwrap();
        assert_eq!(first.report().cache, CacheStatus::Miss);
        assert!(first.report().work_items() > 0);
        assert!(first.report().artifact.as_ref().unwrap().exists());

        let second = store.prepare(&spec).unwrap();
        assert_eq!(second.report().cache, CacheStatus::Hit);
        assert_eq!(second.report().work_items(), 0);
        assert_eq!(second.graph(), first.graph());
        assert_eq!(second.transpose(), first.transpose());
        assert_eq!(second.overlay(), first.overlay());
        assert_eq!(second.rev_overlay(), first.rev_overlay());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spec_mutation_changes_key() {
        let dir = temp_dir("mutate");
        let store = GraphStore::new(Some(dir.clone()));
        let spec = full_spec();
        let base = store.prepare(&spec).unwrap();

        for mutated in [
            PrepareSpec {
                virtual_k: Some(9),
                ..spec.clone()
            },
            PrepareSpec {
                coalesced: false,
                ..spec.clone()
            },
            PrepareSpec {
                transpose: false,
                ..spec.clone()
            },
            spec.clone()
                .with_transform(TransformKind::Udt, Some(4), DumbWeight::Zero),
            PrepareSpec {
                source: GraphSource::Generated {
                    tag: "rmat:8:8".into(),
                    seed: 43,
                },
                ..spec.clone()
            },
        ] {
            let p = store.prepare(&mutated).unwrap();
            assert_eq!(p.report().cache, CacheStatus::Miss, "{mutated:?}");
            assert_ne!(p.report().key, base.report().key, "{mutated:?}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifacts_are_byte_identical_across_writes() {
        let dir_a = temp_dir("det_a");
        let dir_b = temp_dir("det_b");
        let spec = full_spec().with_transform(TransformKind::Udt, None, DumbWeight::Zero);
        let a = GraphStore::new(Some(dir_a.clone())).prepare(&spec).unwrap();
        let b = GraphStore::new(Some(dir_b.clone())).prepare(&spec).unwrap();
        let bytes_a = fs::read(a.report().artifact.as_ref().unwrap()).unwrap();
        let bytes_b = fs::read(b.report().artifact.as_ref().unwrap()).unwrap();
        assert_eq!(bytes_a, bytes_b);
        assert!(!bytes_a.is_empty());
        fs::remove_dir_all(&dir_a).ok();
        fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn corrupt_artifact_is_rebuilt() {
        let dir = temp_dir("corrupt");
        let store = GraphStore::new(Some(dir.clone()));
        let spec = full_spec();
        let first = store.prepare(&spec).unwrap();
        let path = first.report().artifact.clone().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let second = store.prepare(&spec).unwrap();
        assert_eq!(second.report().cache, CacheStatus::Miss);
        assert_eq!(second.graph(), first.graph());
        // The rebuild restored a valid artifact.
        let third = store.prepare(&spec).unwrap();
        assert_eq!(third.report().cache, CacheStatus::Hit);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_source_key_tracks_content() {
        let dir = temp_dir("file");
        let input = dir.join("g.el");
        fs::write(&input, "0 1\n1 2\n").unwrap();
        let store = GraphStore::new(Some(dir.clone()));
        let spec = PrepareSpec::from_file(&input).with_transpose(true);

        let first = store.prepare(&spec).unwrap();
        assert_eq!(first.report().cache, CacheStatus::Miss);
        assert_eq!(
            store.prepare(&spec).unwrap().report().cache,
            CacheStatus::Hit
        );

        // Editing the file invalidates the key.
        fs::write(&input, "0 1\n1 2\n2 0\n").unwrap();
        let third = store.prepare(&spec).unwrap();
        assert_eq!(third.report().cache, CacheStatus::Miss);
        assert_ne!(third.report().key, first.report().key);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transform_spec_round_trips_through_cache() {
        let dir = temp_dir("transform");
        let store = GraphStore::new(Some(dir.clone()));
        let spec = PrepareSpec::generated("star:40", 0).with_transform(
            TransformKind::Udt,
            Some(4),
            DumbWeight::Zero,
        );
        let first = store.prepare(&spec).unwrap();
        assert_eq!(first.report().transforms_built, 1);
        let second = store.prepare(&spec).unwrap();
        assert_eq!(second.report().cache, CacheStatus::Hit);
        let (a, b) = (first.transformed().unwrap(), second.transformed().unwrap());
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.topology(), b.topology());
        assert_eq!(a.num_new_edges(), b.num_new_edges());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_warmup_of_same_key_both_succeed() {
        use std::sync::{Arc, Barrier};

        let dir = temp_dir("race");
        let store = GraphStore::new(Some(dir.clone()));
        let spec = full_spec();
        let barrier = Arc::new(Barrier::new(2));

        let handles: Vec<_> = (0..2)
            .map(|_| {
                let store = store.clone();
                let spec = spec.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    store.prepare(&spec).unwrap()
                })
            })
            .collect();
        let results: Vec<PreparedGraph> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Both racers return coherent, equal prepared graphs.
        assert_eq!(results[0].graph(), results[1].graph());
        assert_eq!(results[0].transpose(), results[1].transpose());
        assert_eq!(results[0].overlay(), results[1].overlay());
        assert_eq!(results[0].rev_overlay(), results[1].rev_overlay());
        assert_eq!(results[0].report().key, results[1].report().key);

        // Whoever renamed last left a valid artifact; no stray temp
        // files survive the race.
        let after = store.prepare(&spec).unwrap();
        assert_eq!(after.report().cache, CacheStatus::Hit);
        assert_eq!(after.graph(), results[0].graph());
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(!name.contains("tmp"), "leftover temp file {name}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cancelled_prepare_aborts_without_artifact() {
        let dir = temp_dir("cancel");
        let store = GraphStore::new(Some(dir.clone()));
        let spec = full_spec();

        let token = CancelToken::new();
        token.cancel();
        match store.prepare_cancellable(&spec, &token) {
            Err(GraphError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // No artifact was written for the aborted derivation.
        let probe = store.prepare(&spec).unwrap();
        assert_eq!(probe.report().cache, CacheStatus::Miss);

        // An inert token leaves behaviour identical to plain prepare.
        let warm = store
            .prepare_cancellable(&spec, &CancelToken::never())
            .unwrap();
        assert_eq!(warm.report().cache, CacheStatus::Hit);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prepared_graph_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The server shares PreparedGraphs across worker threads via
        // Arc<PreparedGraph>; that requires Send + Sync here.
        assert_send_sync::<PreparedGraph>();
        assert_send_sync::<GraphStore>();
        assert_send_sync::<PrepareReport>();
    }

    /// Whether this target supports the zero-copy open path at all
    /// (elsewhere the container transparently decodes).
    fn zero_copy_target() -> bool {
        cfg!(all(
            unix,
            target_pointer_width = "64",
            target_endian = "little"
        ))
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [MmapMode::On, MmapMode::Off, MmapMode::Auto] {
            assert_eq!(MmapMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(MmapMode::parse("sometimes"), None);
        assert_eq!(MmapMode::default(), MmapMode::Auto);
        assert_eq!(OpenMode::Mapped.label(), "mapped");
        assert_eq!(OpenMode::Decoded.label(), "decoded");
        assert_eq!(OpenMode::Built.label(), "built");
    }

    #[test]
    fn mapped_hit_equals_decoded_hit() {
        let dir = temp_dir("mmap_equiv");
        let spec = full_spec().with_transform(TransformKind::Udt, Some(4), DumbWeight::Zero);

        let off = GraphStore::new(Some(dir.clone())).with_mmap(MmapMode::Off);
        let built = off.prepare(&spec).unwrap();
        assert_eq!(built.open_info().mode, OpenMode::Built);
        assert!(built.segment().is_none());

        let decoded = off.prepare(&spec).unwrap();
        assert_eq!(decoded.report().cache, CacheStatus::Hit);
        assert_eq!(decoded.open_info().mode, OpenMode::Decoded);
        assert_eq!(decoded.open_info().mapped_bytes, 0);
        assert!(decoded.segment().is_none());

        let auto = GraphStore::new(Some(dir.clone()));
        let mapped = auto.prepare(&spec).unwrap();
        assert_eq!(mapped.report().cache, CacheStatus::Hit);
        if zero_copy_target() {
            assert_eq!(mapped.open_info().mode, OpenMode::Mapped);
            assert!(mapped.open_info().mapped_bytes > 0);
            assert!(mapped.segment().is_some());
            assert!(mapped.graph().is_mapped());
            assert!(mapped.transpose().unwrap().is_mapped());
            assert!(mapped.overlay().unwrap().is_mapped());
            assert!(mapped.rev_overlay().unwrap().is_mapped());
        }

        // The views are value-identical regardless of where the bytes
        // live.
        assert_eq!(mapped.graph(), decoded.graph());
        assert_eq!(mapped.transpose(), decoded.transpose());
        assert_eq!(mapped.overlay(), decoded.overlay());
        assert_eq!(mapped.rev_overlay(), decoded.rev_overlay());
        assert_eq!(
            mapped.transformed().unwrap().graph(),
            decoded.transformed().unwrap().graph()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_on_reopens_mapped_after_miss() {
        let dir = temp_dir("mmap_on");
        let store = GraphStore::new(Some(dir.clone())).with_mmap(MmapMode::On);
        let p = store.prepare(&full_spec()).unwrap();
        // The miss still reports the build work, but the views come back
        // mapped from the artifact that was just written.
        assert_eq!(p.report().cache, CacheStatus::Miss);
        assert!(p.report().work_items() > 0);
        if zero_copy_target() {
            assert_eq!(p.open_info().mode, OpenMode::Mapped);
            assert!(p.is_mapped());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lazy_verify_hit_matches_eager_hit() {
        let dir = temp_dir("lazy");
        let spec = full_spec();
        let eager = GraphStore::new(Some(dir.clone()));
        let reference = eager.prepare(&spec).unwrap();

        let lazy = GraphStore::new(Some(dir.clone())).with_verify(VerifyMode::Lazy);
        let fast = lazy.prepare(&spec).unwrap();
        assert_eq!(fast.report().cache, CacheStatus::Hit);
        assert_eq!(fast.open_info().verify, VerifyMode::Lazy);
        assert_eq!(fast.graph(), reference.graph());
        assert_eq!(fast.transpose(), reference.transpose());
        assert_eq!(fast.overlay(), reference.overlay());
        assert_eq!(fast.rev_overlay(), reference.rev_overlay());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_dir_created_alongside_artifact_and_restored_on_hit() {
        let dir = temp_dir("waldir");
        let store = GraphStore::new(Some(dir.clone()));
        let spec = PrepareSpec::generated("star:16", 0);
        let p = store.prepare(&spec).unwrap();
        let wal = wal_dir_for(p.report().artifact.as_ref().unwrap());
        assert!(wal.is_dir(), "miss must create the WAL dir");

        // Half-created cache entry: artifact present, WAL dir missing
        // (e.g. a crash between the rename and the mkdir of an older
        // writer). The entry opens cleanly and the dir comes back.
        fs::remove_dir_all(&wal).unwrap();
        let hit = store.prepare(&spec).unwrap();
        assert_eq!(hit.report().cache, CacheStatus::Hit);
        assert!(wal.is_dir(), "hit must restore a missing WAL dir");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn materialize_matches_from_scratch_prepare() {
        // A CSR materialized from memory must be indistinguishable from
        // preparing the same edges from a file: same CSR, same overlay
        // split points, same transpose.
        let dir = temp_dir("materialize");
        let input = dir.join("g.el");
        fs::write(&input, "0 1\n0 2\n0 3\n1 2\n3 0\n").unwrap();
        let store = GraphStore::new(Some(dir.clone()));
        let spec = PrepareSpec::from_file(&input)
            .with_virtual(2, true)
            .with_transpose(true);
        let scratch = store.prepare(&spec).unwrap();

        let plan = ViewPlan::from_prepared(&scratch);
        assert_eq!(
            plan,
            ViewPlan {
                virtual_k: Some(2),
                coalesced: true,
                transpose: true
            }
        );
        let materialized = store.materialize(scratch.graph().clone(), plan).unwrap();
        assert_eq!(materialized.graph(), scratch.graph());
        assert_eq!(materialized.transpose(), scratch.transpose());
        assert_eq!(materialized.overlay(), scratch.overlay());
        assert_eq!(materialized.rev_overlay(), scratch.rev_overlay());

        // The compacted artifact landed under its own content key with
        // a WAL dir beside it.
        let artifact = materialized.report().artifact.clone().unwrap();
        assert!(artifact.exists());
        assert_ne!(materialized.report().key, scratch.report().key);
        assert!(wal_dir_for(&artifact).is_dir());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generator_tags_resolve() {
        assert!(generate_from_tag("rmat:6:4", 1).is_ok());
        assert!(generate_from_tag("star:10", 0).is_ok());
        assert!(generate_from_tag("ba:50:3", 2).is_ok());
        assert!(generate_from_tag("ba:50:3:sym", 2).is_ok());
        assert!(generate_from_tag("nope:1", 0).is_err());
        assert!(generate_from_tag("rmat:x:4", 0).is_err());
        assert!(generate_from_tag("dataset:no-such-dataset", 0).is_err());
    }

    #[test]
    fn dataset_tags_resolve() {
        let name = tigr_graph::datasets::PAPER_DATASETS[0].name;
        assert!(generate_from_tag(&format!("dataset:{name}:2048"), 1).is_ok());
        let g = generate_from_tag(&format!("dataset:{name}:2048:weighted"), 1).unwrap();
        assert!(g.is_weighted());
    }
}
