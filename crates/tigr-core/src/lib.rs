//! Tigr's primary contribution: irregularity-reducing graph
//! transformations.
//!
//! Real-world graphs follow power-law degree distributions, which starve
//! SIMD hardware (paper §2.3). Tigr attacks the problem *at the data*:
//!
//! * **Physical split transformations** ([`split`]) rewrite each node
//!   whose out-degree exceeds a bound `K` into a *family* of bounded-
//!   degree nodes. Three reference topologies — [`split::clique_transform`],
//!   [`split::circular_transform`], [`split::star_transform`] — realize the
//!   design-space analysis of Table 1, and the
//!   **uniform-degree tree** ([`split::udt_transform`], Algorithm 1)
//!   achieves the paper's sweet spot: `O(log_K d)` propagation hops, at
//!   most one residual node, and provable result preservation.
//! * **Dumb weights** ([`DumbWeight`]) make the introduced edges inert:
//!   weight `0` preserves distances (Corollary 2: SSSP/BFS/BC), weight
//!   `∞` preserves path bottlenecks (Corollary 3: SSWP).
//! * **Virtual split transformation** ([`VirtualGraph`]) layers the split
//!   over the *unchanged* physical CSR (Figure 10): computation is
//!   scheduled per virtual node while all virtual nodes of a family share
//!   the physical value slot — implicit value synchronization, so no
//!   extra iterations and push-based correctness for free (Theorem 2).
//! * **Edge-array coalescing** ([`VirtualGraph::coalesced`], §4.4)
//!   assigns a family's edges to its virtual nodes in a strided pattern
//!   so warp lanes touch consecutive memory.
//! * **Executable correctness statements** ([`correctness`]) of
//!   Theorem 1 and Corollaries 1–4, used as test oracles.
//!
//! # Example: virtually transforming a hub
//!
//! ```
//! use tigr_core::VirtualGraph;
//! use tigr_graph::generators::star_graph;
//!
//! let g = star_graph(101);                  // node 0 has out-degree 100
//! let vg = VirtualGraph::new(&g, 10);       // degree bound K = 10
//! assert_eq!(vg.num_virtual_nodes(), 10 + 100); // 10 vnodes for the hub + 100 leaves
//! assert!(vg.max_virtual_degree() <= 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod cancel;
pub mod correctness;
pub mod k_select;
pub mod mutation;
pub mod split;
pub mod store;
mod virtual_graph;

mod dumb_weights;

pub use cancel::CancelToken;
pub use dumb_weights::DumbWeight;
pub use mutation::{
    CompactionStats, DeltaOverlay, GraphSnapshot, MutableGraph, MutationError, MutationOp,
    OverlayView, Wal,
};
pub use split::{
    circular_transform, clique_transform, recursive_star_transform, star_transform, udt_transform,
    TransformedGraph,
};
pub use store::{
    CacheStatus, GraphSource, GraphStore, MmapMode, OpenInfo, OpenMode, PrepareReport, PrepareSpec,
    PreparedGraph, TransformKind, TransformSpec, ViewPlan,
};
pub use virtual_graph::{EdgeCursor, OnTheFlyMapper, VirtualGraph, VirtualNode};
