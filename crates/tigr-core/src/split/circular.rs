//! Circular split transformation (`T_circ`, Figure 5b).

use tigr_graph::{Csr, NodeId};

use crate::dumb_weights::DumbWeight;
use crate::split::{apply_split, EdgeStub, SplitContext, SplitTopology, TransformedGraph};

/// The `T_circ` topology: the original edges are dealt out to `⌈d/K⌉`
/// split nodes arranged in a ring, each pointing at its successor. The
/// original node becomes the first ring member (so incoming edges land
/// deterministically there — the paper assigns them randomly, which is
/// immaterial because the ring reaches every member).
///
/// Tradeoffs (Table 1): the cheapest in space and the strongest
/// irregularity reduction (family degree `K + 1`), but values need up to
/// `⌈d/K⌉ − 1` hops to circle the ring — the slowest propagation of the
/// three reference designs.
///
/// Note that the ring's closing edge points back at the root, so the
/// root gains one (inert, dumb-weighted) incoming edge; Corollary 4's
/// in-degree preservation therefore holds for UDT and star but not for
/// this construction — immaterial for the path/connectivity analyses
/// split transformations target.
#[derive(Clone, Copy, Debug, Default)]
pub struct CircularTopology;

impl SplitTopology for CircularTopology {
    fn name(&self) -> &'static str {
        "circular"
    }

    fn split_node(&self, ctx: &mut SplitContext<'_>, root: NodeId, stubs: &[EdgeStub]) {
        let k = ctx.k();
        let num_members = stubs.len().div_ceil(k);
        debug_assert!(num_members >= 2, "only high-degree nodes are split");

        // Ring members: the root plus num_members - 1 fresh nodes.
        let mut members = Vec::with_capacity(num_members);
        members.push(root);
        for _ in 1..num_members {
            members.push(ctx.alloc_node(root));
        }

        for (i, chunk) in stubs.chunks(k).enumerate() {
            for &stub in chunk {
                ctx.attach_original(members[i], stub);
            }
            // Ring edge to the successor.
            ctx.attach_new(members[i], members[(i + 1) % num_members]);
        }
    }
}

/// Applies `T_circ` with degree bound `k`.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use tigr_core::{circular_transform, DumbWeight};
/// use tigr_graph::generators::star_graph;
///
/// let g = star_graph(13);                    // hub degree 12
/// let t = circular_transform(&g, 4, DumbWeight::Zero);
/// assert_eq!(t.num_split_nodes(), 2);        // ring of 3 = root + 2 new
/// // Family degree is K + 1: K edges plus the ring edge.
/// assert_eq!(t.graph().max_out_degree(), 5);
/// ```
pub fn circular_transform(g: &Csr, k: u32, dumb: DumbWeight) -> TransformedGraph {
    apply_split(&CircularTopology, g, k, dumb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{star_graph, with_uniform_weights};
    use tigr_graph::properties::{bfs_levels, dijkstra};

    #[test]
    fn counts_match_table1() {
        for (d, k) in [(12usize, 4u32), (100, 10), (7, 3)] {
            let g = star_graph(d + 1);
            let t = circular_transform(&g, k, DumbWeight::Zero);
            let b = d.div_ceil(k as usize);
            assert_eq!(t.num_split_nodes(), b - 1, "d={d} k={k}");
            // The paper counts ring edges among B members; with the root in
            // the ring there are exactly B ring edges, B-1 of which lead to
            // *new* nodes plus one closing the cycle back to the root.
            assert_eq!(t.num_new_edges(), b, "d={d} k={k}");
        }
    }

    #[test]
    fn family_degree_is_k_plus_one() {
        let g = star_graph(101);
        let t = circular_transform(&g, 10, DumbWeight::Zero);
        assert_eq!(t.graph().max_out_degree(), 11);
    }

    #[test]
    fn propagation_needs_ring_walk() {
        // d=100, K=10 -> ring of 10; the farthest chunk of targets is 10
        // hops away (9 ring hops + 1 edge).
        let g = star_graph(101);
        let t = circular_transform(&g, 10, DumbWeight::Zero);
        let levels = bfs_levels(t.graph(), NodeId::new(0));
        let max_target_level = (1..101).map(|v| levels[v]).max().unwrap();
        assert_eq!(max_target_level, 10, "T_circ is slow: ⌈d/K⌉-1 ring hops");
    }

    #[test]
    fn zero_dumb_weights_preserve_distances() {
        let g = with_uniform_weights(&star_graph(30), 1, 20, 10);
        let t = circular_transform(&g, 4, DumbWeight::Zero);
        let orig = dijkstra(&g, NodeId::new(0));
        let trans = dijkstra(t.graph(), NodeId::new(0));
        assert_eq!(&trans[..30], &orig[..]);
    }

    #[test]
    fn all_targets_reachable() {
        let g = star_graph(27);
        let t = circular_transform(&g, 5, DumbWeight::Zero);
        let levels = bfs_levels(t.graph(), NodeId::new(0));
        for &level in &levels[1..27] {
            assert_ne!(level, usize::MAX);
        }
    }
}
