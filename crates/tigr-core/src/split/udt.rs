//! Uniform-degree tree transformation (§3.2, Algorithm 1).

use std::collections::VecDeque;

use tigr_graph::{Csr, NodeId};

use crate::dumb_weights::DumbWeight;
use crate::split::{apply_split, EdgeStub, SplitContext, SplitTopology, TransformedGraph};

/// Queue entry of Algorithm 1: either an original outgoing edge awaiting
/// re-attachment, or a previously created split node.
#[derive(Clone, Copy, Debug)]
enum QueueEntry {
    Original(EdgeStub),
    SplitNode(NodeId),
}

/// The UDT topology (Algorithm 1): split nodes are created *on demand* by
/// repeatedly popping `K` queue entries into a fresh node and pushing the
/// node back, until at most `K` entries remain for the root.
///
/// Properties (paper §3.2):
///
/// * **P1** — it is a split transformation (Definition 2).
/// * **P2** — a unique path connects the root (which keeps all incoming
///   edges) to each original outgoing edge, because every queue entry is
///   popped exactly once.
/// * **P3** — tree height, and hence the extra propagation hops, grows as
///   `O(log_K d)`.
/// * At most one node of the family has degree `< K` (no residual-node
///   pile-up, unlike recursive `T_star` — Figure 6).
#[derive(Clone, Copy, Debug, Default)]
pub struct UdtTopology;

impl SplitTopology for UdtTopology {
    fn name(&self) -> &'static str {
        "udt"
    }

    fn split_node(&self, ctx: &mut SplitContext<'_>, root: NodeId, stubs: &[EdgeStub]) {
        let k = ctx.k();
        assert!(
            k >= 2,
            "UDT requires K >= 2: with K = 1 each split node consumes one \
             queue entry and re-enqueues itself, so Algorithm 1 cannot make progress"
        );
        let mut queue: VecDeque<QueueEntry> =
            stubs.iter().map(|&s| QueueEntry::Original(s)).collect();

        // Lines 6-10: while more than K entries remain, a new node adopts
        // K of them.
        while queue.len() > k {
            let vn = ctx.alloc_node(root);
            for _ in 0..k {
                let entry = queue.pop_front().expect("queue holds more than K entries");
                attach(ctx, vn, entry);
            }
            queue.push_back(QueueEntry::SplitNode(vn));
        }

        // Lines 11-13: the root adopts the rest.
        while let Some(entry) = queue.pop_front() {
            attach(ctx, root, entry);
        }
    }
}

fn attach(ctx: &mut SplitContext<'_>, src: NodeId, entry: QueueEntry) {
    match entry {
        QueueEntry::Original(stub) => ctx.attach_original(src, stub),
        QueueEntry::SplitNode(node) => ctx.attach_new(src, node),
    }
}

/// Applies the uniform-degree tree transformation with degree bound `k`,
/// tagging introduced edges per `dumb`.
///
/// # Panics
///
/// Panics if `k < 2`: Algorithm 1's queue shrinks by `K − 1` entries per
/// split node, so `K = 1` cannot make progress (splitting into
/// out-degree-1 nodes would require an unbounded chain anyway).
///
/// # Example
///
/// ```
/// use tigr_core::{udt_transform, DumbWeight};
/// use tigr_graph::generators::star_graph;
///
/// let g = star_graph(18);           // hub with out-degree 17
/// let t = udt_transform(&g, 4, DumbWeight::Zero);
/// // Every node in the transformed graph respects the bound.
/// assert!(t.graph().max_out_degree() <= 4);
/// // Original node ids are preserved.
/// assert_eq!(t.original_nodes(), 18);
/// ```
pub fn udt_transform(g: &Csr, k: u32, dumb: DumbWeight) -> TransformedGraph {
    apply_split(&UdtTopology, g, k, dumb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{star_graph, with_uniform_weights};
    use tigr_graph::{CsrBuilder, INFINITE_WEIGHT};

    /// Out-degree histogram of the hub family in a transformed star.
    fn family_degrees(t: &TransformedGraph) -> Vec<usize> {
        let g = t.graph();
        let mut degs = vec![g.out_degree(NodeId::new(0))];
        for v in t.original_nodes()..g.num_nodes() {
            degs.push(g.out_degree(NodeId::from_index(v)));
        }
        degs
    }

    #[test]
    fn degree_five_example_from_figure_6() {
        // The paper's Figure 6(b): splitting a degree-5 node with K=3
        // yields no node of degree < K except possibly one.
        let g = star_graph(6);
        let t = udt_transform(&g, 3, DumbWeight::Zero);
        // 5 stubs: one new node takes 3, root takes remaining 2 stubs + new node.
        assert_eq!(t.num_split_nodes(), 1);
        let degs = family_degrees(&t);
        assert!(degs.iter().filter(|&&d| d < 3 && d > 0).count() <= 1);
        assert!(t.graph().max_out_degree() <= 3);
    }

    #[test]
    fn all_nodes_respect_bound_k() {
        for k in [2u32, 3, 4, 7, 10] {
            let g = star_graph(101);
            let t = udt_transform(&g, k, DumbWeight::Zero);
            assert!(
                t.graph().max_out_degree() <= k as usize,
                "K={k}: max degree {}",
                t.graph().max_out_degree()
            );
        }
    }

    #[test]
    fn at_most_one_residual_node_per_family() {
        for d in [5usize, 12, 13, 50, 99, 100] {
            let g = star_graph(d + 1);
            let k = 4;
            let t = udt_transform(&g, k, DumbWeight::Zero);
            let degs = family_degrees(&t);
            let residuals = degs.iter().filter(|&&x| x > 0 && x < k as usize).count();
            assert!(residuals <= 1, "d={d}: degrees {degs:?}");
        }
    }

    #[test]
    fn new_node_and_edge_counts_match_recurrence() {
        // Each split node consumes K entries and produces 1: the queue
        // shrinks by K-1 per node until <= K remain.
        for (d, k) in [(10usize, 3u32), (100, 10), (17, 4), (32, 2)] {
            let g = star_graph(d + 1);
            let t = udt_transform(&g, k, DumbWeight::Zero);
            let expected_nodes = {
                let (mut q, mut nodes) = (d, 0usize);
                while q > k as usize {
                    q -= k as usize - 1;
                    nodes += 1;
                }
                nodes
            };
            assert_eq!(t.num_split_nodes(), expected_nodes, "d={d} k={k}");
            // P2: every split node is pointed to exactly once.
            assert_eq!(t.num_new_edges(), expected_nodes, "d={d} k={k}");
        }
    }

    #[test]
    fn tree_height_is_logarithmic() {
        // P3: hops from root to any original target grow as O(log_K d).
        let d = 10_000;
        let k = 10u32;
        let g = star_graph(d + 1);
        let t = udt_transform(&g, k, DumbWeight::Zero);
        let levels = tigr_graph::properties::bfs_levels(t.graph(), NodeId::new(0));
        let max_level = levels
            .iter()
            .filter(|&&l| l != usize::MAX)
            .max()
            .copied()
            .unwrap();
        // log_10(10000) = 4; allow one extra level for the residual chain.
        assert!(max_level <= 6, "height {max_level} too deep");
        assert!(max_level >= 4, "height {max_level} suspiciously shallow");
    }

    #[test]
    fn original_targets_remain_reachable_exactly_once() {
        let g = star_graph(23);
        let t = udt_transform(&g, 3, DumbWeight::Zero);
        // Each original neighbor keeps in-degree 1 within the family.
        let mut indeg = vec![0usize; t.graph().num_nodes()];
        for e in t.graph().edges() {
            indeg[e.dst.index()] += 1;
        }
        for (target, &deg) in indeg.iter().enumerate().take(23).skip(1) {
            assert_eq!(deg, 1, "leaf {target}");
        }
    }

    #[test]
    fn incoming_edges_stay_on_root() {
        // 5 -> 0 -> {1,2,3,4}: after UDT with K=2, edge 5->0 is untouched.
        let mut b = CsrBuilder::new(6);
        b.edge(5, 0);
        for i in 1..5u32 {
            b.edge(0, i);
        }
        let t = udt_transform(&b.build(), 2, DumbWeight::Zero);
        assert_eq!(t.graph().neighbors(NodeId::new(5)), &[NodeId::new(0)]);
    }

    #[test]
    fn dumb_zero_preserves_distances() {
        let g = with_uniform_weights(&star_graph(40), 1, 9, 3);
        let t = udt_transform(&g, 4, DumbWeight::Zero);
        let orig = tigr_graph::properties::dijkstra(&g, NodeId::new(0));
        let trans = tigr_graph::properties::dijkstra(t.graph(), NodeId::new(0));
        assert_eq!(&trans[..40], &orig[..], "Corollary 2");
    }

    #[test]
    fn dumb_infinity_preserves_widest_paths() {
        let g = with_uniform_weights(&star_graph(40), 1, 9, 4);
        let t = udt_transform(&g, 4, DumbWeight::Infinity);
        let orig = tigr_graph::properties::widest_path(&g, NodeId::new(0));
        let trans = tigr_graph::properties::widest_path(t.graph(), NodeId::new(0));
        assert_eq!(&trans[..40], &orig[..], "Corollary 3");
        // Introduced edges really carry infinity.
        let hub_weights = t.graph().neighbor_weights(NodeId::new(0)).unwrap();
        assert!(hub_weights.contains(&INFINITE_WEIGHT));
    }

    #[test]
    fn unweighted_policy_keeps_graph_unweighted() {
        let g = star_graph(30);
        let t = udt_transform(&g, 4, DumbWeight::Unweighted);
        assert!(!t.graph().is_weighted());
    }

    #[test]
    #[should_panic(expected = "UDT requires K >= 2")]
    fn k_one_is_rejected() {
        // K=1 cannot terminate: each split node consumes one entry and
        // re-enqueues itself.
        let g = star_graph(5);
        let _ = udt_transform(&g, 1, DumbWeight::Zero);
    }

    #[test]
    fn transformation_is_idempotent_when_bound_already_met() {
        let g = star_graph(4);
        let t = udt_transform(&g, 10, DumbWeight::Zero);
        assert_eq!(t.num_split_nodes(), 0);
        assert_eq!(t.graph().num_edges(), g.num_edges());
    }
}
