//! Recursive star transformation — the §3.2 stepping stone to UDT.
//!
//! "One straightforward solution to the hub node issue of `T_star` is
//! recursively applying `T_star` to the hub node until its degree drops
//! to K." The paper shows (Figure 6a) why this is *not* the final
//! answer: each recursion level can strand a residual node, so a
//! degree-5 node at K=3 ends with **two** residual nodes where UDT has
//! none. This module implements the design so the comparison is
//! executable.

use tigr_graph::{Csr, NodeId};

use crate::dumb_weights::DumbWeight;
use crate::split::{apply_split, EdgeStub, SplitContext, SplitTopology, TransformedGraph};

/// The recursive-`T_star` topology: boundary nodes adopt `K` original
/// edges each; the hub then points at the boundary nodes, and if that
/// fan-out still exceeds `K`, the hub is split again — building the
/// family as layered stars until every node respects the bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecursiveStarTopology;

impl SplitTopology for RecursiveStarTopology {
    fn name(&self) -> &'static str {
        "recursive-star"
    }

    fn split_node(&self, ctx: &mut SplitContext<'_>, root: NodeId, stubs: &[EdgeStub]) {
        let k = ctx.k();
        // Level 0: boundary nodes adopt the original edges.
        let mut layer: Vec<NodeId> = Vec::with_capacity(stubs.len().div_ceil(k));
        for chunk in stubs.chunks(k) {
            let boundary = ctx.alloc_node(root);
            for &stub in chunk {
                ctx.attach_original(boundary, stub);
            }
            layer.push(boundary);
        }
        // Recursively star-split the hub fan-out until it fits.
        while layer.len() > k {
            let mut next: Vec<NodeId> = Vec::with_capacity(layer.len().div_ceil(k));
            for chunk in layer.chunks(k) {
                let hub = ctx.alloc_node(root);
                for &member in chunk {
                    ctx.attach_new(hub, member);
                }
                next.push(hub);
            }
            layer = next;
        }
        // The root becomes the top-level hub.
        for &member in &layer {
            ctx.attach_new(root, member);
        }
    }
}

/// Applies the recursive star transformation with degree bound `k`.
///
/// Kept for the design-space comparison with [`crate::udt_transform`]:
/// both produce trees of height `O(log_K d)` and degree ≤ K, but the
/// recursive star strands up to one residual node *per level* while UDT
/// strands at most one overall (§3.2, Figure 6).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn recursive_star_transform(g: &Csr, k: u32, dumb: DumbWeight) -> TransformedGraph {
    apply_split(&RecursiveStarTopology, g, k, dumb)
}

/// Number of *residual* nodes (out-degree in `1..K`) among the split
/// nodes of a transformed graph — the quantity Figure 6 compares.
pub fn count_residual_nodes(t: &TransformedGraph) -> usize {
    let g = t.graph();
    let k = t.k() as usize;
    (t.original_nodes()..g.num_nodes())
        .map(NodeId::from_index)
        .filter(|&v| {
            let d = g.out_degree(v);
            d > 0 && d < k
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udt_transform;
    use tigr_graph::generators::{star_graph, with_uniform_weights};
    use tigr_graph::properties::{bfs_levels, dijkstra};

    #[test]
    fn figure_6_comparison_degree_5_k_3() {
        // The paper's exact example: degree 5, K = 3.
        let g = star_graph(6);
        let rec = recursive_star_transform(&g, 3, DumbWeight::Zero);
        let udt = udt_transform(&g, 3, DumbWeight::Zero);
        // Recursive star: boundary nodes of degree 3 and 2 -> one
        // residual boundary node, plus the root holding 2 < K edges.
        // UDT: no residual among split nodes.
        assert!(count_residual_nodes(&rec) >= 1, "Figure 6a shows residuals");
        assert_eq!(count_residual_nodes(&udt), 0, "Figure 6b shows none");
    }

    #[test]
    fn respects_degree_bound_at_all_levels() {
        for d in [50usize, 100, 1000] {
            let g = star_graph(d + 1);
            let t = recursive_star_transform(&g, 4, DumbWeight::Zero);
            assert!(
                t.graph().max_out_degree() <= 4,
                "d={d}: max degree {}",
                t.graph().max_out_degree()
            );
        }
    }

    #[test]
    fn produces_more_residuals_than_udt() {
        // Across a spread of degrees, recursive star never beats UDT on
        // residual count.
        for d in [20usize, 47, 99, 500] {
            let g = star_graph(d + 1);
            let rec = count_residual_nodes(&recursive_star_transform(&g, 4, DumbWeight::Zero));
            let udt = count_residual_nodes(&udt_transform(&g, 4, DumbWeight::Zero));
            assert!(udt <= 1, "UDT guarantees at most one residual, got {udt}");
            assert!(rec >= udt, "d={d}: recursive {rec} vs udt {udt}");
        }
    }

    #[test]
    fn height_is_logarithmic_like_udt() {
        let g = star_graph(10_001);
        let t = recursive_star_transform(&g, 10, DumbWeight::Zero);
        let levels = bfs_levels(t.graph(), NodeId::new(0));
        let max_level = (1..=10_000).map(|v| levels[v]).max().unwrap();
        assert!(max_level <= 6, "height {max_level}");
    }

    #[test]
    fn preserves_distances_with_zero_dumb_weights() {
        let g = with_uniform_weights(&star_graph(40), 1, 9, 17);
        let t = recursive_star_transform(&g, 3, DumbWeight::Zero);
        let orig = dijkstra(&g, NodeId::new(0));
        let trans = dijkstra(t.graph(), NodeId::new(0));
        assert_eq!(&trans[..40], &orig[..]);
    }

    #[test]
    fn is_a_valid_split_transformation() {
        let g = star_graph(100);
        let t = recursive_star_transform(&g, 7, DumbWeight::Zero);
        crate::correctness::verify_split_definition(&g, &t).unwrap();
        crate::correctness::verify_connectivity_preservation(&g, &t).unwrap();
    }
}
