//! Analytic split-transformation properties (Table 1).
//!
//! For a high-degree node of degree `d` and bound `K`, these functions
//! evaluate the paper's closed-form cost columns. The unit tests — and
//! the `table1_properties` benchmark binary — check the formulas against
//! graphs actually produced by the transformations.

use serde::{Deserialize, Serialize};

/// Closed-form properties of splitting one node of degree `d` with bound
/// `K` (one row of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitProperties {
    /// Nodes the split adds.
    pub new_nodes: usize,
    /// Edges the split adds.
    pub new_edges: usize,
    /// Maximum out-degree within the resulting family.
    pub new_degree: usize,
    /// Maximum hops to propagate a value from the node holding the
    /// incoming edges to any original outgoing edge's source within the
    /// family.
    pub max_hops: usize,
}

fn b(d: usize, k: usize) -> usize {
    d.div_ceil(k)
}

/// Table 1 row `T_cliq`: `⌈d/K⌉−1` nodes, `(⌈d/K⌉−1)·⌈d/K⌉` edges, degree
/// `K+⌈d/K⌉−1`, 1 hop.
///
/// # Panics
///
/// Panics unless `d > k ≥ 1` (only high-degree nodes are split).
pub fn clique_properties(d: usize, k: usize) -> SplitProperties {
    check(d, k);
    let b = b(d, k);
    SplitProperties {
        new_nodes: b - 1,
        new_edges: (b - 1) * b,
        new_degree: k + b - 1,
        max_hops: 1,
    }
}

/// Table 1 row `T_circ`: `⌈d/K⌉−1` nodes, `⌈d/K⌉−1` ring edges to new
/// nodes (the paper's count; our construction also closes the ring with
/// one more edge back to the root), degree `K+1`, `⌈d/K⌉−1` hops.
///
/// # Panics
///
/// Panics unless `d > k ≥ 1`.
pub fn circular_properties(d: usize, k: usize) -> SplitProperties {
    check(d, k);
    let b = b(d, k);
    SplitProperties {
        new_nodes: b - 1,
        new_edges: b - 1,
        new_degree: k + 1,
        max_hops: b - 1,
    }
}

/// Table 1 row `T_star`: `⌈d/K⌉` boundary nodes, `⌈d/K⌉` hub edges,
/// degree `max(K+1, ⌈d/K⌉)` (the paper counts the hub's fan-out against
/// the family, plus one for the hub link), 1 hop.
///
/// # Panics
///
/// Panics unless `d > k ≥ 1`.
pub fn star_properties(d: usize, k: usize) -> SplitProperties {
    check(d, k);
    let b = b(d, k);
    SplitProperties {
        new_nodes: b,
        new_edges: b,
        new_degree: (k + 1).max(b),
        max_hops: 1,
    }
}

/// Properties of `T_udt` (§3.2): node/edge counts follow the queue
/// recurrence (each split node removes `K` entries and adds one), the
/// family degree is exactly `K`, and hops equal the uniform-degree tree
/// height `≈ ⌈log_K d⌉`.
///
/// # Panics
///
/// Panics unless `d > k ≥ 1` and `k ≥ 2` (a K=1 tree is a chain whose
/// height is `d`, handled separately by the implementation).
pub fn udt_properties(d: usize, k: usize) -> SplitProperties {
    check(d, k);
    assert!(k >= 2, "closed form requires K >= 2");
    // Queue recurrence: start with d entries; each new node nets -(K-1).
    let mut remaining = d;
    let mut new_nodes = 0usize;
    while remaining > k {
        remaining -= k - 1;
        new_nodes += 1;
    }
    // Tree height: the BFS distance from the root to the deepest
    // re-attached original edge. The FIFO construction yields height
    // ⌈log_K d⌉ up to one level of slack.
    let height = (d as f64).log(k as f64).ceil() as usize;
    SplitProperties {
        new_nodes,
        new_edges: new_nodes,
        new_degree: k,
        max_hops: height,
    }
}

fn check(d: usize, k: usize) {
    assert!(k >= 1, "degree bound must be at least 1");
    assert!(d > k, "only high-degree nodes (d > K) are split");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{circular_transform, clique_transform, star_transform, udt_transform, DumbWeight};
    use tigr_graph::generators::star_graph;
    use tigr_graph::properties::bfs_levels;
    use tigr_graph::NodeId;

    /// Measured (new_nodes, new_edges, family_degree, max_hops) from an
    /// actual transformation of a degree-`d` star hub.
    fn measure(
        transform: impl Fn(&tigr_graph::Csr, u32, DumbWeight) -> crate::TransformedGraph,
        d: usize,
        k: u32,
    ) -> SplitProperties {
        let g = star_graph(d + 1);
        let t = transform(&g, k, DumbWeight::Zero);
        let levels = bfs_levels(t.graph(), NodeId::new(0));
        // Hops within the family = (max level of an original target) - 1,
        // because the final hop leaves the family along an original edge.
        let max_target_level = (1..=d).map(|v| levels[v]).max().unwrap();
        SplitProperties {
            new_nodes: t.num_split_nodes(),
            new_edges: t.num_new_edges(),
            new_degree: t.graph().max_out_degree(),
            max_hops: max_target_level - 1,
        }
    }

    #[test]
    fn clique_formula_matches_construction() {
        for (d, k) in [(40usize, 10u32), (99, 10), (12, 5)] {
            let expect = clique_properties(d, k as usize);
            let got = measure(clique_transform, d, k);
            assert_eq!(got.new_nodes, expect.new_nodes, "d={d} k={k}");
            assert_eq!(got.new_edges, expect.new_edges, "d={d} k={k}");
            assert_eq!(got.new_degree, expect.new_degree, "d={d} k={k}");
            assert_eq!(got.max_hops, expect.max_hops, "d={d} k={k}");
        }
    }

    #[test]
    fn circular_formula_matches_construction() {
        for (d, k) in [(40usize, 10u32), (99, 10), (12, 5)] {
            let expect = circular_properties(d, k as usize);
            let got = measure(circular_transform, d, k);
            assert_eq!(got.new_nodes, expect.new_nodes, "d={d} k={k}");
            // Our ring closes back to the root: one extra edge vs. paper.
            assert_eq!(got.new_edges, expect.new_edges + 1, "d={d} k={k}");
            assert_eq!(got.new_degree, expect.new_degree, "d={d} k={k}");
            assert_eq!(got.max_hops, expect.max_hops, "d={d} k={k}");
        }
    }

    #[test]
    fn star_formula_matches_construction() {
        for (d, k) in [(40usize, 10u32), (99, 10), (12, 5)] {
            let expect = star_properties(d, k as usize);
            let got = measure(star_transform, d, k);
            assert_eq!(got.new_nodes, expect.new_nodes, "d={d} k={k}");
            assert_eq!(got.new_edges, expect.new_edges, "d={d} k={k}");
            // Family degree: hub fan-out ⌈d/K⌉ vs boundary K.
            assert_eq!(
                got.new_degree,
                (d.div_ceil(k as usize)).max(k as usize),
                "d={d} k={k}"
            );
            assert_eq!(got.max_hops, expect.max_hops, "d={d} k={k}");
        }
    }

    #[test]
    fn udt_formula_matches_construction() {
        for (d, k) in [(40usize, 10u32), (99, 10), (1000, 10), (12, 5)] {
            let expect = udt_properties(d, k as usize);
            let got = measure(udt_transform, d, k);
            assert_eq!(got.new_nodes, expect.new_nodes, "d={d} k={k}");
            assert_eq!(got.new_edges, expect.new_edges, "d={d} k={k}");
            assert_eq!(got.new_degree, expect.new_degree, "d={d} k={k}");
            assert!(
                got.max_hops <= expect.max_hops + 1 && got.max_hops + 1 >= expect.max_hops,
                "d={d} k={k}: got {} expected ≈{}",
                got.max_hops,
                expect.max_hops
            );
        }
    }

    #[test]
    fn table1_tradeoff_ordering_holds() {
        // The qualitative Table 1 story at d=1000, K=10.
        let (d, k) = (1000, 10);
        let cliq = clique_properties(d, k);
        let circ = circular_properties(d, k);
        let star = star_properties(d, k);
        let udt = udt_properties(d, k);
        // Space: clique is worst.
        assert!(cliq.new_edges > circ.new_edges * 10);
        assert!(cliq.new_edges > star.new_edges * 10);
        // Irregularity: circ and udt have the tightest degree bound.
        assert!(circ.new_degree <= k + 1);
        assert_eq!(udt.new_degree, k);
        assert!(cliq.new_degree > 10 * udt.new_degree);
        // Propagation: circ is slowest; udt is logarithmic.
        assert!(circ.max_hops > 50);
        assert!(udt.max_hops <= 3);
        assert_eq!(cliq.max_hops, 1);
        assert_eq!(star.max_hops, 1);
    }

    #[test]
    #[should_panic(expected = "only high-degree nodes")]
    fn low_degree_input_rejected() {
        let _ = clique_properties(5, 10);
    }
}
