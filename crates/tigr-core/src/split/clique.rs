//! Clique split transformation (`T_cliq`, Figure 5a).

use tigr_graph::{Csr, NodeId};

use crate::dumb_weights::DumbWeight;
use crate::split::{apply_split, EdgeStub, SplitContext, SplitTopology, TransformedGraph};

/// The `T_cliq` topology: the original edges are dealt out to `⌈d/K⌉`
/// split nodes that form a complete directed clique. The original node is
/// the first clique member, so incoming edges land there (the paper
/// assigns them randomly; any member works since the clique is one hop
/// from everywhere).
///
/// Tradeoffs (Table 1): fastest propagation (1 hop to any member) but a
/// quadratic `(⌈d/K⌉−1)·⌈d/K⌉` new-edge bill and family degree
/// `K + ⌈d/K⌉ − 1` — the highest space cost and the weakest irregularity
/// reduction of the three reference designs.
#[derive(Clone, Copy, Debug, Default)]
pub struct CliqueTopology;

impl SplitTopology for CliqueTopology {
    fn name(&self) -> &'static str {
        "clique"
    }

    fn split_node(&self, ctx: &mut SplitContext<'_>, root: NodeId, stubs: &[EdgeStub]) {
        let k = ctx.k();
        let num_members = stubs.len().div_ceil(k);
        debug_assert!(num_members >= 2, "only high-degree nodes are split");

        let mut members = Vec::with_capacity(num_members);
        members.push(root);
        for _ in 1..num_members {
            members.push(ctx.alloc_node(root));
        }

        for (i, chunk) in stubs.chunks(k).enumerate() {
            for &stub in chunk {
                ctx.attach_original(members[i], stub);
            }
            for (j, &other) in members.iter().enumerate() {
                if i != j {
                    ctx.attach_new(members[i], other);
                }
            }
        }
    }
}

/// Applies `T_cliq` with degree bound `k`.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use tigr_core::{clique_transform, DumbWeight};
/// use tigr_graph::generators::star_graph;
///
/// let g = star_graph(13);                   // hub degree 12
/// let t = clique_transform(&g, 4, DumbWeight::Zero);
/// // 3 clique members: 3·2 = 6 new edges.
/// assert_eq!(t.num_new_edges(), 6);
/// ```
pub fn clique_transform(g: &Csr, k: u32, dumb: DumbWeight) -> TransformedGraph {
    apply_split(&CliqueTopology, g, k, dumb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{star_graph, with_uniform_weights};
    use tigr_graph::properties::{bfs_levels, dijkstra};

    #[test]
    fn counts_match_table1() {
        for (d, k) in [(12usize, 4u32), (100, 10), (9, 2)] {
            let g = star_graph(d + 1);
            let t = clique_transform(&g, k, DumbWeight::Zero);
            let b = d.div_ceil(k as usize);
            assert_eq!(t.num_split_nodes(), b - 1, "d={d} k={k}");
            assert_eq!(t.num_new_edges(), b * (b - 1), "d={d} k={k}");
        }
    }

    #[test]
    fn family_degree_matches_table1() {
        // new degree = K + ⌈d/K⌉ - 1.
        let g = star_graph(101);
        let t = clique_transform(&g, 10, DumbWeight::Zero);
        assert_eq!(t.graph().max_out_degree(), 10 + 10 - 1);
    }

    #[test]
    fn one_hop_propagation() {
        // Any target is reachable in <= 2 hops from the root (root ->
        // member -> target), i.e. 1 hop inside the family.
        let g = star_graph(101);
        let t = clique_transform(&g, 10, DumbWeight::Zero);
        let levels = bfs_levels(t.graph(), NodeId::new(0));
        let max_target_level = (1..101).map(|v| levels[v]).max().unwrap();
        assert_eq!(max_target_level, 2);
    }

    #[test]
    fn space_cost_is_quadratic_in_family_size() {
        let g = star_graph(1001); // d = 1000
        let cliq = clique_transform(&g, 10, DumbWeight::Zero);
        let circ = crate::circular_transform(&g, 10, DumbWeight::Zero);
        // 100 members: clique adds 9900 edges, ring adds 100.
        assert_eq!(cliq.num_new_edges(), 100 * 99);
        assert!(cliq.num_new_edges() > 50 * circ.num_new_edges());
    }

    #[test]
    fn zero_dumb_weights_preserve_distances() {
        let g = with_uniform_weights(&star_graph(30), 1, 20, 11);
        let t = clique_transform(&g, 4, DumbWeight::Zero);
        let orig = dijkstra(&g, NodeId::new(0));
        let trans = dijkstra(t.graph(), NodeId::new(0));
        assert_eq!(&trans[..30], &orig[..]);
    }
}
