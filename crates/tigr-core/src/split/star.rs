//! Star-shaped split transformation (`T_star`, Figure 5c).

use tigr_graph::{Csr, NodeId};

use crate::dumb_weights::DumbWeight;
use crate::split::{apply_split, EdgeStub, SplitContext, SplitTopology, TransformedGraph};

/// The `T_star` topology: the original node becomes a *hub* keeping all
/// incoming edges; `⌈d/K⌉` boundary nodes each adopt up to `K` of the
/// original outgoing edges; the hub points at every boundary node.
///
/// Tradeoffs (Table 1): low space cost (`⌈d/K⌉` new edges) and fast
/// propagation (1 hop), but the hub's degree is `⌈d/K⌉`, which can itself
/// exceed `K` — the residual weakness UDT fixes.
#[derive(Clone, Copy, Debug, Default)]
pub struct StarTopology;

impl SplitTopology for StarTopology {
    fn name(&self) -> &'static str {
        "star"
    }

    fn split_node(&self, ctx: &mut SplitContext<'_>, root: NodeId, stubs: &[EdgeStub]) {
        let k = ctx.k();
        for chunk in stubs.chunks(k) {
            let boundary = ctx.alloc_node(root);
            ctx.attach_new(root, boundary);
            for &stub in chunk {
                ctx.attach_original(boundary, stub);
            }
        }
    }
}

/// Applies `T_star` with degree bound `k`.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use tigr_core::{star_transform, DumbWeight};
/// use tigr_graph::generators::star_graph;
///
/// let g = star_graph(13);                 // hub degree 12
/// let t = star_transform(&g, 4, DumbWeight::Zero);
/// assert_eq!(t.num_split_nodes(), 3);     // ⌈12/4⌉ boundary nodes
/// assert_eq!(t.num_new_edges(), 3);       // hub -> each boundary node
/// ```
pub fn star_transform(g: &Csr, k: u32, dumb: DumbWeight) -> TransformedGraph {
    apply_split(&StarTopology, g, k, dumb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::{star_graph, with_uniform_weights};
    use tigr_graph::properties::{bfs_levels, dijkstra};

    #[test]
    fn node_and_edge_counts_match_table1() {
        for (d, k) in [(12usize, 4u32), (13, 4), (100, 10), (5, 3)] {
            let g = star_graph(d + 1);
            let t = star_transform(&g, k, DumbWeight::Zero);
            let b = d.div_ceil(k as usize);
            assert_eq!(t.num_split_nodes(), b, "d={d} k={k}");
            assert_eq!(t.num_new_edges(), b, "d={d} k={k}");
        }
    }

    #[test]
    fn hub_degree_is_ceil_d_over_k() {
        let g = star_graph(101); // d = 100
        let t = star_transform(&g, 10, DumbWeight::Zero);
        assert_eq!(t.graph().out_degree(NodeId::new(0)), 10);
    }

    #[test]
    fn one_hop_propagation() {
        // Every original target is exactly 2 BFS hops from the hub
        // (hub -> boundary -> target); boundary level is 1.
        let g = star_graph(50);
        let t = star_transform(&g, 7, DumbWeight::Zero);
        let levels = bfs_levels(t.graph(), NodeId::new(0));
        for &level in &levels[1..50] {
            assert_eq!(level, 2);
        }
    }

    #[test]
    fn residual_nodes_appear_as_figure_6_shows() {
        // Figure 6(a): degree 5 with K=3 leaves residual boundary nodes.
        let g = star_graph(6);
        let t = star_transform(&g, 3, DumbWeight::Zero);
        // Two boundary nodes with degrees 3 and 2: one residual.
        let degs: Vec<usize> = (6..t.graph().num_nodes())
            .map(|v| t.graph().out_degree(NodeId::from_index(v)))
            .collect();
        assert_eq!(degs, vec![3, 2]);
    }

    #[test]
    fn zero_dumb_weights_preserve_distances() {
        let g = with_uniform_weights(&star_graph(30), 1, 20, 9);
        let t = star_transform(&g, 4, DumbWeight::Zero);
        let orig = dijkstra(&g, NodeId::new(0));
        let trans = dijkstra(t.graph(), NodeId::new(0));
        assert_eq!(&trans[..30], &orig[..]);
    }

    #[test]
    fn hub_may_still_exceed_k() {
        // The documented weakness: d=100, K=5 -> hub degree 20 > 5.
        let g = star_graph(101);
        let t = star_transform(&g, 5, DumbWeight::Zero);
        assert!(t.graph().out_degree(NodeId::new(0)) > 5);
    }
}
