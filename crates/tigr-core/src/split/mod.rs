//! Physical split transformations (§3).
//!
//! A split transformation rewrites every *high-degree node* — out-degree
//! above the bound `K` (Definition 1) — into a family of bounded-degree
//! nodes, redistributing its outgoing edges (Definition 2). The module
//! provides the three reference connection topologies of Figure 5 plus
//! the uniform-degree tree of §3.2:
//!
//! | transform | new nodes | new edges | hops | paper column |
//! |---|---|---|---|---|
//! | [`clique_transform`]   | `⌈d/K⌉-1` | `(⌈d/K⌉-1)·⌈d/K⌉` | 1 | `T_cliq` |
//! | [`circular_transform`] | `⌈d/K⌉-1` | `⌈d/K⌉-1` | `⌈d/K⌉-1` | `T_circ` |
//! | [`star_transform`]     | `⌈d/K⌉`   | `⌈d/K⌉` | 1 | `T_star` |
//! | [`udt_transform`]      | ≈`(d-K)/(K-1)` | = new nodes | `O(log_K d)` | `T_udt` |
//!
//! All transforms keep the original node ids `0..n` (the family root
//! retains the original id, so incoming edges need no rewriting), append
//! split nodes after `n`, and tag introduced edges with the chosen
//! [`DumbWeight`].

mod circular;
mod clique;
pub mod properties;
mod recursive_star;
mod star;
mod udt;

pub use circular::circular_transform;
pub use clique::clique_transform;
pub use recursive_star::{count_residual_nodes, recursive_star_transform};
pub use star::star_transform;
pub use udt::udt_transform;

use std::fmt;

use tigr_graph::{Csr, CsrBuilder, Edge, NodeId, Weight};

use crate::dumb_weights::DumbWeight;

/// An original outgoing edge of a node being split: its target and
/// weight, detached from its source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeStub {
    /// Edge destination.
    pub target: NodeId,
    /// Original edge weight (1 for unweighted graphs).
    pub weight: Weight,
}

/// Connection-topology strategy used by [`apply_split`].
///
/// Implementations receive each high-degree node together with its
/// detached outgoing edges and rebuild them as a bounded-degree family
/// through the [`SplitContext`].
pub trait SplitTopology {
    /// Short name used in reports ("udt", "star", ...).
    fn name(&self) -> &'static str;

    /// Splits one high-degree node. `root` keeps its original id; all
    /// original `stubs` must be re-attached exactly once.
    fn split_node(&self, ctx: &mut SplitContext<'_>, root: NodeId, stubs: &[EdgeStub]);
}

/// Mutable construction state handed to a [`SplitTopology`].
#[derive(Debug)]
pub struct SplitContext<'a> {
    k: usize,
    edges: &'a mut Vec<(NodeId, NodeId, Weight, bool)>,
    family_root: &'a mut Vec<NodeId>,
    next_node: &'a mut u32,
    dumb_value: Weight,
}

impl SplitContext<'_> {
    /// The degree bound `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Allocates a fresh split node belonging to `root`'s family.
    pub fn alloc_node(&mut self, root: NodeId) -> NodeId {
        let id = NodeId::new(*self.next_node);
        *self.next_node += 1;
        self.family_root.push(root);
        id
    }

    /// Re-attaches an original edge at `src` (weight preserved).
    pub fn attach_original(&mut self, src: NodeId, stub: EdgeStub) {
        self.edges.push((src, stub.target, stub.weight, false));
    }

    /// Adds a transformation-introduced edge (`E_new`), carrying the dumb
    /// weight.
    pub fn attach_new(&mut self, src: NodeId, dst: NodeId) {
        self.edges.push((src, dst, self.dumb_value, true));
    }
}

/// Result of physically applying a split transformation to a graph.
#[derive(Clone)]
pub struct TransformedGraph {
    graph: Csr,
    original_nodes: usize,
    family_root: Vec<NodeId>,
    new_edge_flags: Vec<bool>,
    num_new_edges: usize,
    k: u32,
    topology: &'static str,
}

impl TransformedGraph {
    /// The transformed topology as a CSR.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// Number of nodes in the *original* graph; node ids below this value
    /// retain their original meaning, so algorithm results for original
    /// nodes are simply `values[..original_nodes()]`.
    pub fn original_nodes(&self) -> usize {
        self.original_nodes
    }

    /// Number of split nodes the transformation introduced.
    pub fn num_split_nodes(&self) -> usize {
        self.graph.num_nodes() - self.original_nodes
    }

    /// Number of edges the transformation introduced (`|E_new|`).
    pub fn num_new_edges(&self) -> usize {
        self.num_new_edges
    }

    /// Whether the edge at flat index `e` of [`Self::graph`] was
    /// introduced by the transformation (is in `E_new`, Theorem 1).
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn is_new_edge(&self, e: usize) -> bool {
        self.new_edge_flags[e]
    }

    /// The family root (original node) that `v` belongs to; identity for
    /// original nodes.
    pub fn family_root(&self, v: NodeId) -> NodeId {
        self.family_root[v.index()]
    }

    /// Degree bound the transformation was applied with.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Topology name ("udt", "star", "circular", "clique").
    pub fn topology(&self) -> &'static str {
        self.topology
    }

    /// Size of the transformed graph relative to the original in CSR
    /// bytes — the metric of Table 5 (`100%` = no growth).
    pub fn space_cost_ratio(&self, original: &Csr) -> f64 {
        self.graph.csr_size_bytes() as f64 / original.csr_size_bytes() as f64
    }

    /// Truncates per-node `values` of the transformed graph to the
    /// original node range.
    pub fn project_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        values[..self.original_nodes].to_vec()
    }

    /// Encodes the transform as a `TIGRCSR2` section payload: `k`, a
    /// topology tag, original counts, the embedded transformed CSR
    /// (length-prefixed), the family-root map, and the new-edge flags.
    pub fn to_section_bytes(&self) -> Vec<u8> {
        use bytes::BufMut;
        let csr = tigr_graph::io::encode_csr(&self.graph);
        let total_nodes = self.graph.num_nodes();
        let mut buf =
            Vec::with_capacity(32 + csr.len() + total_nodes * 4 + self.new_edge_flags.len());
        buf.put_u32_le(self.k);
        buf.put_u32_le(topology_tag(self.topology));
        buf.put_u64_le(self.original_nodes as u64);
        buf.put_u64_le(self.num_new_edges as u64);
        buf.put_u64_le(csr.len() as u64);
        buf.put_slice(&csr);
        for &r in &self.family_root {
            buf.put_u32_le(r.raw());
        }
        for &f in &self.new_edge_flags {
            buf.put_u8(f as u8);
        }
        buf
    }

    /// Decodes a transform from a section payload produced by
    /// [`TransformedGraph::to_section_bytes`], validating the embedded
    /// CSR and every auxiliary array before construction.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation on malformed input.
    pub fn from_section_bytes(payload: &[u8]) -> Result<Self, String> {
        use bytes::Buf;
        let mut cur = payload;
        if cur.len() < 32 {
            return Err("truncated transform section".into());
        }
        let k = cur.get_u32_le();
        let tag = cur.get_u32_le();
        let topology = topology_name(tag).ok_or_else(|| format!("unknown topology tag {tag}"))?;
        let original_nodes = cur.get_u64_le() as usize;
        let num_new_edges = cur.get_u64_le() as usize;
        let csr_len = cur.get_u64_le() as usize;
        if (cur.remaining() as u128) < csr_len as u128 {
            return Err("truncated embedded CSR".into());
        }
        let graph = tigr_graph::io::decode_csr(&cur[..csr_len]).map_err(|e| e.to_string())?;
        cur = &cur[csr_len..];

        let total_nodes = graph.num_nodes();
        let num_edges = graph.num_edges();
        let need = total_nodes as u128 * 4 + num_edges as u128;
        if cur.remaining() as u128 != need {
            return Err(format!(
                "transform payload size mismatch: need {need} trailing bytes, have {}",
                cur.remaining()
            ));
        }
        let mut family_root = Vec::with_capacity(total_nodes);
        for _ in 0..total_nodes {
            family_root.push(NodeId::new(cur.get_u32_le()));
        }
        let mut new_edge_flags = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            new_edge_flags.push(cur.get_u8() != 0);
        }
        if original_nodes > total_nodes
            || num_new_edges > num_edges
            || family_root.iter().any(|r| r.index() >= total_nodes)
            || new_edge_flags.iter().filter(|&&f| f).count() != num_new_edges
        {
            return Err("inconsistent transform metadata".into());
        }
        Ok(TransformedGraph {
            graph,
            original_nodes,
            family_root,
            new_edge_flags,
            num_new_edges,
            k,
            topology,
        })
    }
}

fn topology_tag(name: &str) -> u32 {
    match name {
        "udt" => 1,
        "star" => 2,
        "recursive-star" => 3,
        "circular" => 4,
        "clique" => 5,
        _ => 0,
    }
}

fn topology_name(tag: u32) -> Option<&'static str> {
    match tag {
        1 => Some("udt"),
        2 => Some("star"),
        3 => Some("recursive-star"),
        4 => Some("circular"),
        5 => Some("clique"),
        _ => None,
    }
}

impl fmt::Debug for TransformedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransformedGraph")
            .field("topology", &self.topology)
            .field("k", &self.k)
            .field("original_nodes", &self.original_nodes)
            .field("split_nodes", &self.num_split_nodes())
            .field("new_edges", &self.num_new_edges)
            .finish()
    }
}

/// Applies `topology` to every high-degree node of `g` with degree bound
/// `k`, tagging introduced edges per `dumb`.
///
/// Runs in `O(|V| + |E|)` plus the CSR rebuild, matching the paper's
/// linear-time claim for UDT.
///
/// # Panics
///
/// Panics if `k == 0` (Definition 1 requires `K ≥ 1`).
pub fn apply_split(
    topology: &dyn SplitTopology,
    g: &Csr,
    k: u32,
    dumb: DumbWeight,
) -> TransformedGraph {
    assert!(k >= 1, "degree bound K must be at least 1 (Definition 1)");
    let k_usize = k as usize;
    let n = g.num_nodes();

    let mut edges: Vec<(NodeId, NodeId, Weight, bool)> = Vec::with_capacity(g.num_edges() + n / 4);
    let mut family_root: Vec<NodeId> = g.nodes().collect();
    let mut next_node = n as u32;
    let mut stubs: Vec<EdgeStub> = Vec::new();

    for v in g.nodes() {
        let degree = g.out_degree(v);
        if degree <= k_usize {
            for (off, &target) in g.neighbors(v).iter().enumerate() {
                let e = g.edge_start(v) + off;
                edges.push((v, target, g.weight(e), false));
            }
        } else {
            stubs.clear();
            stubs.extend(
                g.neighbors(v)
                    .iter()
                    .enumerate()
                    .map(|(off, &target)| EdgeStub {
                        target,
                        weight: g.weight(g.edge_start(v) + off),
                    }),
            );
            let mut ctx = SplitContext {
                k: k_usize,
                edges: &mut edges,
                family_root: &mut family_root,
                next_node: &mut next_node,
                dumb_value: dumb.value(),
            };
            topology.split_node(&mut ctx, v, &stubs);
        }
    }

    let num_new_edges = edges.iter().filter(|e| e.3).count();
    let total_nodes = next_node as usize;
    let keep_weights = dumb.keeps_weights() && (g.is_weighted() || num_new_edges > 0);

    // Mirror the builder's stable group-by-source so the new-edge flags
    // line up with the CSR's flat edge order.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by_key(|&i| edges[i].0);
    let new_edge_flags: Vec<bool> = order.iter().map(|&i| edges[i].3).collect();

    let mut builder = CsrBuilder::new(total_nodes).with_edge_capacity(edges.len());
    builder.sort_neighbors(false); // preserve the topology's edge order
    builder.force_weighted(keep_weights);
    for &(src, dst, w, _) in &edges {
        builder.add(Edge::new(src, dst, if keep_weights { w } else { 1 }));
    }

    TransformedGraph {
        graph: builder.build(),
        original_nodes: n,
        family_root,
        new_edge_flags,
        num_new_edges,
        k,
        topology: topology.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::star_graph;

    struct NoopTopology;
    impl SplitTopology for NoopTopology {
        fn name(&self) -> &'static str {
            "noop"
        }
        fn split_node(&self, ctx: &mut SplitContext<'_>, root: NodeId, stubs: &[EdgeStub]) {
            // Pathological "split" that re-attaches everything to the root.
            for &s in stubs {
                ctx.attach_original(root, s);
            }
        }
    }

    #[test]
    fn low_degree_graphs_pass_through() {
        let g = tigr_graph::generators::ring_lattice(10, 2);
        let t = apply_split(&NoopTopology, &g, 5, DumbWeight::Unweighted);
        assert_eq!(t.graph().num_nodes(), 10);
        assert_eq!(t.graph().num_edges(), 20);
        assert_eq!(t.num_split_nodes(), 0);
        assert_eq!(t.num_new_edges(), 0);
        assert_eq!(t.topology(), "noop");
        assert!(!t.graph().is_weighted());
    }

    #[test]
    fn family_roots_identity_for_originals() {
        let g = star_graph(5);
        let t = apply_split(&NoopTopology, &g, 100, DumbWeight::Zero);
        for v in g.nodes() {
            assert_eq!(t.family_root(v), v);
        }
    }

    #[test]
    fn context_allocates_sequential_ids() {
        struct OneNode;
        impl SplitTopology for OneNode {
            fn name(&self) -> &'static str {
                "one"
            }
            fn split_node(&self, ctx: &mut SplitContext<'_>, root: NodeId, stubs: &[EdgeStub]) {
                let s = ctx.alloc_node(root);
                ctx.attach_new(root, s);
                for &stub in stubs {
                    ctx.attach_original(s, stub);
                }
            }
        }
        let g = star_graph(6); // hub degree 5
        let t = apply_split(&OneNode, &g, 2, DumbWeight::Zero);
        assert_eq!(t.original_nodes(), 6);
        assert_eq!(t.num_split_nodes(), 1);
        assert_eq!(t.family_root(NodeId::new(6)), NodeId::new(0));
        assert_eq!(t.num_new_edges(), 1);
        // New edge carries the dumb weight 0.
        let w = t.graph().neighbor_weights(NodeId::new(0)).unwrap();
        assert_eq!(w, &[0]);
    }

    #[test]
    fn project_values_truncates() {
        let g = star_graph(4);
        let t = apply_split(&NoopTopology, &g, 1000, DumbWeight::Zero);
        let vals = vec![9u32; t.graph().num_nodes()];
        assert_eq!(t.project_values(&vals).len(), 4);
    }

    #[test]
    fn section_bytes_round_trip() {
        let g = star_graph(20); // hub degree 19
        let t = udt_transform(&g, 4, DumbWeight::Zero);
        let bytes = t.to_section_bytes();
        let back = TransformedGraph::from_section_bytes(&bytes).unwrap();
        assert_eq!(back.graph(), t.graph());
        assert_eq!(back.original_nodes(), t.original_nodes());
        assert_eq!(back.num_new_edges(), t.num_new_edges());
        assert_eq!(back.k(), t.k());
        assert_eq!(back.topology(), t.topology());
        for v in back.graph().nodes() {
            assert_eq!(back.family_root(v), t.family_root(v));
        }
        for e in 0..back.graph().num_edges() {
            assert_eq!(back.is_new_edge(e), t.is_new_edge(e));
        }
    }

    #[test]
    fn section_bytes_reject_corruption() {
        let g = star_graph(12);
        let t = udt_transform(&g, 3, DumbWeight::Zero);
        let bytes = t.to_section_bytes();
        assert!(TransformedGraph::from_section_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_tag = bytes.clone();
        bad_tag[4] = 99;
        assert!(TransformedGraph::from_section_bytes(&bad_tag).is_err());
        // Flipping a new-edge flag breaks the num_new_edges invariant.
        let mut bad_flag = bytes.clone();
        let last = bad_flag.len() - 1;
        bad_flag[last] ^= 1;
        assert!(TransformedGraph::from_section_bytes(&bad_flag).is_err());
    }

    #[test]
    #[should_panic(expected = "degree bound K must be at least 1")]
    fn k_zero_rejected() {
        let g = star_graph(3);
        let _ = apply_split(&NoopTopology, &g, 0, DumbWeight::Zero);
    }
}
