//! Cooperative cancellation for long-running derivations and engine
//! runs.
//!
//! A [`CancelToken`] is a cheaply cloneable handle that execution loops
//! poll at iteration boundaries: the engine's BSP drivers check it once
//! per iteration, and [`crate::GraphStore`] checks it between derivation
//! steps. Cancellation is *cooperative* — a run never stops mid-sweep,
//! so the values array always holds a consistent monotone prefix of the
//! fixpoint computation, never a torn write.
//!
//! Tokens carry two triggers that are checked together:
//!
//! * an explicit flag, set by [`CancelToken::cancel`] (a client
//!   disconnecting, a server draining its queue);
//! * an optional deadline, armed by [`CancelToken::with_deadline`] (a
//!   per-request latency budget, `tigr run --deadline-ms`).
//!
//! The default token ([`CancelToken::never`]) has neither and costs one
//! branch per check, so un-cancellable call sites pay essentially
//! nothing.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle polled at iteration boundaries.
///
/// Clones share the same state: cancelling any clone cancels them all.
///
/// # Example
///
/// ```
/// use tigr_core::CancelToken;
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert!(token.is_cancelled());
///
/// // The default token can never fire.
/// assert!(!CancelToken::never().is_cancelled());
/// ```
#[derive(Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// A token that can only be cancelled explicitly.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// A token that can never fire; checks compile to a single branch.
    pub fn never() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A token that fires once `budget` has elapsed (or when cancelled
    /// explicitly, whichever comes first).
    pub fn with_deadline(budget: Duration) -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + budget),
            })),
        }
    }

    /// Sets the explicit flag; every clone observes it.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.flag.store(true, Ordering::Release);
        }
    }

    /// Whether the token has fired (explicit cancel or elapsed
    /// deadline). The check loops poll.
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.flag.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Whether the token fired *because its deadline elapsed* (rather
    /// than an explicit [`CancelToken::cancel`]): lets callers report
    /// "deadline exceeded" distinctly from "cancelled".
    pub fn deadline_exceeded(&self) -> bool {
        self.inner
            .as_ref()
            .and_then(|i| i.deadline)
            .is_some_and(|d| Instant::now() >= d)
    }

    /// Time left before the deadline fires; `None` when no deadline is
    /// armed, `Some(0)` once it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .as_ref()
            .and_then(|i| i.deadline)
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("armed", &self.inner.is_some())
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_token_is_inert() {
        let t = CancelToken::never();
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_exceeded());
        assert_eq!(t.remaining(), None);
        assert!(!CancelToken::default().is_cancelled());
    }

    #[test]
    fn explicit_cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(!clone.deadline_exceeded(), "no deadline was armed");
    }

    #[test]
    fn deadline_fires_and_is_distinguishable() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
        assert!(t.deadline_exceeded());
        assert_eq!(t.remaining(), Some(Duration::ZERO));

        let slow = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!slow.is_cancelled());
        assert!(!slow.deadline_exceeded());
        assert!(slow.remaining().unwrap() > Duration::from_secs(3000));
        slow.cancel();
        assert!(slow.is_cancelled());
        assert!(!slow.deadline_exceeded(), "cancelled, but deadline unmet");
    }

    #[test]
    fn token_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CancelToken>();
    }
}
