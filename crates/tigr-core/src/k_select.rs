//! Degree-bound selection heuristics (§5, "Selection of K").

use tigr_graph::Csr;

/// The virtual degree bound the paper settles on: `K = 10`, chosen
/// empirically for "overall best performance across settings"; tuning it
/// further brings only marginal improvements (§5, §6.4).
pub const VIRTUAL_K: u32 = 10;

/// Picks the *physical* (UDT) degree bound from the graph's maximum
/// degree, following the paper's "simple heuristic that pre-defines a
/// mapping between K and the maximum degree of a graph":
///
/// | max degree | K |
/// |---|---|
/// | < 2 000  | 100 |
/// | < 10 000 | 500 |
/// | < 100 000 | 1 000 |
/// | ≥ 100 000 | 10 000 |
///
/// These thresholds reproduce the Table 3 choices (Pokec → 500,
/// LiveJournal/Hollywood/Orkut → 1 000, Sinaweibo/Twitter → 10 000).
pub fn physical_k_for_max_degree(max_degree: usize) -> u32 {
    match max_degree {
        0..=1_999 => 100,
        2_000..=9_999 => 500,
        10_000..=99_999 => 1_000,
        _ => 10_000,
    }
}

/// Convenience wrapper measuring the graph first.
pub fn physical_k(g: &Csr) -> u32 {
    physical_k_for_max_degree(g.max_out_degree())
}

/// Scales a paper-sized degree bound down to an analog graph: bounds are
/// proportional to the maximum degree, which shrinks roughly with the
/// scale denominator. Clamped below at 16 so families stay non-trivial.
pub fn scaled_physical_k(paper_k: u32, scale_denominator: u64) -> u32 {
    ((paper_k as u64 / scale_denominator.max(1)).max(16)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_graph::generators::star_graph;

    #[test]
    fn thresholds_reproduce_table_3() {
        assert_eq!(physical_k_for_max_degree(8_800), 500); // pokec
        assert_eq!(physical_k_for_max_degree(15_000), 1_000); // livejournal
        assert_eq!(physical_k_for_max_degree(11_000), 1_000); // hollywood
        assert_eq!(physical_k_for_max_degree(33_000), 1_000); // orkut
        assert_eq!(physical_k_for_max_degree(278_000), 10_000); // sinaweibo
        assert_eq!(physical_k_for_max_degree(698_000), 10_000); // twitter2010
    }

    #[test]
    fn small_graphs_get_small_k() {
        assert_eq!(physical_k_for_max_degree(100), 100);
        let g = star_graph(500);
        assert_eq!(physical_k(&g), 100);
    }

    #[test]
    fn virtual_k_is_ten() {
        assert_eq!(VIRTUAL_K, 10);
    }

    #[test]
    fn scaling_clamps_at_16() {
        assert_eq!(scaled_physical_k(1_000, 64), 16);
        assert_eq!(scaled_physical_k(10_000, 64), 156);
        assert_eq!(scaled_physical_k(500, 1), 500);
        assert_eq!(scaled_physical_k(500, 0), 500);
    }
}
