//! Dumb-weight policies for transformation-introduced edges (§3.3).

use serde::{Deserialize, Serialize};

use tigr_graph::{Weight, INFINITE_WEIGHT};

/// Weight assigned to the edges a physical split transformation
/// introduces (`E_new` in Theorem 1), chosen so the new edges "contribute
/// nothing to the calculation".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DumbWeight {
    /// Weight `0`: preserves total path weight, hence distances
    /// (Corollary 2). Correct for SSSP, BFS, and BC.
    #[default]
    Zero,
    /// Weight `∞`: preserves the minimum edge weight along paths
    /// (Corollary 3). Correct for SSWP.
    Infinity,
    /// Drop weights entirely: the output graph is unweighted. Correct for
    /// purely topological analyses such as CC (Corollary 1).
    Unweighted,
}

impl DumbWeight {
    /// The concrete weight value this policy assigns to new edges.
    ///
    /// For [`DumbWeight::Unweighted`] the value is irrelevant (weights are
    /// dropped); `1` is returned for consistency.
    pub fn value(self) -> Weight {
        match self {
            DumbWeight::Zero => 0,
            DumbWeight::Infinity => INFINITE_WEIGHT,
            DumbWeight::Unweighted => 1,
        }
    }

    /// Whether the transformed graph should carry a weight array.
    pub fn keeps_weights(self) -> bool {
        !matches!(self, DumbWeight::Unweighted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_match_corollaries() {
        assert_eq!(DumbWeight::Zero.value(), 0);
        assert_eq!(DumbWeight::Infinity.value(), INFINITE_WEIGHT);
        assert_eq!(DumbWeight::Unweighted.value(), 1);
    }

    #[test]
    fn unweighted_drops_weights() {
        assert!(DumbWeight::Zero.keeps_weights());
        assert!(DumbWeight::Infinity.keeps_weights());
        assert!(!DumbWeight::Unweighted.keeps_weights());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(DumbWeight::default(), DumbWeight::Zero);
    }
}
