//! The source-keyed LRU result cache.
//!
//! Keys cover everything that determines a result: graph name, the
//! analytic, the source node, and a fingerprint of the execution plan
//! the server ran it with. Values are `Arc`-shared so a hit hands the
//! caller the cached array without copying. Hit / miss / eviction
//! counters feed the `stats` protocol verb.
//!
//! Cancelled (deadline-expired) runs are **never** inserted — the
//! server only caches results whose run converged, so a cached entry is
//! always a complete answer (see `tests/serve_integration.rs` for the
//! regression that pins this down).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::protocol::Algo;

/// Everything that determines a cached result.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Registered graph name.
    pub graph: String,
    /// Analytic.
    pub algo: Algo,
    /// Source node (`None` for the sourceless analytics).
    pub source: Option<u32>,
    /// Algo-specific bound (`k` / `radius` / `rounds`; `None` for
    /// unlimited analytics) — part of the answer, so part of the key.
    pub limit: Option<u32>,
    /// Execution-plan fingerprint (backend × direction), so results
    /// from different plans never alias.
    pub plan: &'static str,
    /// Overlay generation the query was pinned to (`0` for static
    /// graphs) — a mutation bumps the epoch, so stale results are
    /// unreachable rather than invalidated.
    pub epoch: u64,
}

/// A complete cached answer.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// Final per-node values (PR ranks as `f32` bit patterns).
    pub values: Arc<Vec<u32>>,
    /// Iterations the original run took.
    pub iterations: u64,
    /// Wire checksum of `values`.
    pub checksum: u64,
}

struct Entry {
    value: CachedResult,
    /// Monotone access stamp; the smallest stamp is the LRU victim.
    stamp: u64,
}

/// Counter snapshot for the stats verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a complete entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheCounters {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded LRU map from [`CacheKey`] to [`CachedResult`].
///
/// Eviction scans for the minimum stamp — O(capacity), which at the
/// configured sizes (hundreds of entries) is noise next to running a
/// graph analytic, and keeps the structure a single `HashMap`.
pub struct ResultCache {
    inner: Mutex<Lru>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct Lru {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
    capacity: usize,
}

impl ResultCache {
    /// A cache holding at most `capacity` results; `0` disables caching
    /// entirely (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                clock: 0,
                capacity,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedResult> {
        let mut lru = self.inner.lock().unwrap();
        lru.clock += 1;
        let stamp = lru.clock;
        match lru.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = stamp;
                let value = entry.value.clone();
                drop(lru);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(lru);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `value` under `key`, evicting the least-recently-used
    /// entry if the cache is at capacity.
    pub fn insert(&self, key: CacheKey, value: CachedResult) {
        let mut lru = self.inner.lock().unwrap();
        if lru.capacity == 0 {
            return;
        }
        lru.clock += 1;
        let stamp = lru.clock;
        if !lru.map.contains_key(&key) && lru.map.len() >= lru.capacity {
            if let Some(victim) = lru
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                lru.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        lru.map.insert(key, Entry { value, stamp });
    }

    /// Current counter values.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().map.len() as u64,
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("ResultCache")
            .field("entries", &c.entries)
            .field("hits", &c.hits)
            .field("misses", &c.misses)
            .field("evictions", &c.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(graph: &str, source: u32) -> CacheKey {
        CacheKey {
            graph: graph.into(),
            algo: Algo::Bfs,
            source: Some(source),
            limit: None,
            plan: "sequential:push",
            epoch: 0,
        }
    }

    fn result(tag: u32) -> CachedResult {
        CachedResult {
            values: Arc::new(vec![tag; 4]),
            iterations: u64::from(tag),
            checksum: u64::from(tag) * 7,
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(4);
        assert!(cache.get(&key("g", 0)).is_none());
        cache.insert(key("g", 0), result(1));
        let hit = cache.get(&key("g", 0)).unwrap();
        assert_eq!(*hit.values, vec![1; 4]);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.evictions, c.entries), (1, 1, 0, 1));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(key("g", 0), result(0));
        cache.insert(key("g", 1), result(1));
        // Touch 0 so 1 becomes the LRU victim.
        cache.get(&key("g", 0)).unwrap();
        cache.insert(key("g", 2), result(2));
        assert!(cache.get(&key("g", 0)).is_some());
        assert!(cache.get(&key("g", 1)).is_none(), "victim survived");
        assert!(cache.get(&key("g", 2)).is_some());
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn distinct_key_dimensions_do_not_alias() {
        let cache = ResultCache::new(8);
        cache.insert(key("g", 0), result(1));
        assert!(cache.get(&key("h", 0)).is_none(), "graph name aliased");
        let mut pr = key("g", 0);
        pr.algo = Algo::Pr;
        assert!(cache.get(&pr).is_none(), "algo aliased");
        let mut other_plan = key("g", 0);
        other_plan.plan = "cpupool:push";
        assert!(cache.get(&other_plan).is_none(), "plan aliased");
        let mut limited = key("g", 0);
        limited.algo = Algo::Khop;
        cache.insert(limited.clone(), result(2));
        let mut other_limit = limited.clone();
        other_limit.limit = Some(3);
        assert!(cache.get(&other_limit).is_none(), "limit aliased");
        let mut other_epoch = key("g", 0);
        other_epoch.epoch = 1;
        assert!(cache.get(&other_epoch).is_none(), "epoch aliased");
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = ResultCache::new(0);
        cache.insert(key("g", 0), result(1));
        assert!(cache.get(&key("g", 0)).is_none());
        assert_eq!(cache.counters().entries, 0);
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let cache = ResultCache::new(2);
        cache.insert(key("g", 0), result(0));
        cache.insert(key("g", 1), result(1));
        cache.insert(key("g", 0), result(9));
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(*cache.get(&key("g", 0)).unwrap().values, vec![9; 4]);
    }
}
