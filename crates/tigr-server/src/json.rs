//! A minimal JSON reader/writer for the wire protocol.
//!
//! The workspace's `serde` resolves to a no-op shim (no registry
//! access), so the protocol layer carries its own parser: a
//! recursive-descent reader over bytes and a writer that escapes
//! strings per RFC 8259. Only what the protocol needs is supported —
//! notably numbers round-trip through `f64`, which is exact for every
//! value the protocol sends (`u32` node values, bit patterns, counters
//! below 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integral values print without a fraction.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps emitted key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience: the value under `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Num(f64::from(n))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; the protocol never sends
                    // them, but degrade safely rather than emit garbage.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept, recombine.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let mut cp = 0u32;
        for _ in 0..4 {
            let b = self.bytes[self.pos];
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let v = obj([
            ("op", "query".into()),
            ("source", Json::Num(42.0)),
            ("values", Json::Arr(vec![0u32.into(), u32::MAX.into()])),
            ("ok", true.into()),
            ("none", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn u32_max_is_exact() {
        let text = Json::from(u32::MAX).to_string();
        assert_eq!(text, "4294967295");
        assert_eq!(parse(&text).unwrap().as_u64(), Some(u64::from(u32::MAX)));
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}\u{1F600}".into());
        let text = v.to_string();
        assert!(text.contains("\\\"") && text.contains("\\n") && text.contains("\\u0001"));
        assert_eq!(parse(&text).unwrap(), v);
        // Surrogate-pair escapes decode too.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "nul",
            "\"\\u12\"",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn numbers_parse_in_all_forms() {
        assert_eq!(parse("-0.5e2").unwrap().as_f64(), Some(-50.0));
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
