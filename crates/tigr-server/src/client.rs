//! Client for the serving protocol: in-process (direct calls into a
//! shared [`ServerCore`], no socket) or over TCP / Unix sockets.
//!
//! One client is one logical connection: requests are answered in
//! order. For concurrent load, open one client per thread — that is
//! what the `ablation_serve` benchmark and the integration tests do.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;

use crate::protocol::{
    decode_response, encode_request, CompactResult, MutateResult, MutationOp, ProtocolError,
    QueryRequest, QueryResult, Request, Response,
};
use crate::server::ServerCore;
use crate::stats::StatsSnapshot;

/// A client-side failure: transport I/O, or a typed protocol error
/// returned by the server.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed mid-request.
    Io(std::io::Error),
    /// The server answered with a typed error (`queue-full`,
    /// `deadline-exceeded`, ...), or sent something undecodable.
    Protocol(ProtocolError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

enum Transport {
    Local(Arc<ServerCore>),
    Tcp {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    },
    Unix {
        reader: BufReader<UnixStream>,
        writer: UnixStream,
    },
}

/// A protocol client over any supported transport.
pub struct Client {
    transport: Transport,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.transport {
            Transport::Local(_) => "local",
            Transport::Tcp { .. } => "tcp",
            Transport::Unix { .. } => "unix",
        };
        f.debug_struct("Client").field("transport", &kind).finish()
    }
}

impl Client {
    /// An in-process client: requests go straight through the core's
    /// admission queue with no serialization. Same semantics as the
    /// socket transports (including `queue-full` rejections).
    pub fn local(core: Arc<ServerCore>) -> Self {
        Client {
            transport: Transport::Local(core),
        }
    }

    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            transport: Transport::Tcp { reader, writer },
        })
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let writer = UnixStream::connect(path)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            transport: Transport::Unix { reader, writer },
        })
    }

    /// Sends one request and waits for its response. Server-side typed
    /// errors come back as `Ok(Response::Error(..))` — use the
    /// convenience wrappers to fold them into [`ClientError`].
    ///
    /// # Errors
    ///
    /// Transport failures and undecodable responses.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        match &mut self.transport {
            Transport::Local(core) => Ok(core.submit(request.clone())),
            Transport::Tcp { reader, writer } => Self::roundtrip(request, reader, writer),
            Transport::Unix { reader, writer } => Self::roundtrip(request, reader, writer),
        }
    }

    fn roundtrip(
        request: &Request,
        reader: &mut impl BufRead,
        writer: &mut impl Write,
    ) -> Result<Response, ClientError> {
        let line = encode_request(request);
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut reply = String::new();
        if reader.read_line(&mut reply)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(decode_response(&reply)?)
    }

    /// Runs one query, folding typed rejections into the error.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] carries the server's typed rejection
    /// (`queue-full`, `deadline-exceeded`, ...).
    pub fn query(&mut self, query: QueryRequest) -> Result<QueryResult, ClientError> {
        match self.request(&Request::Query(query))? {
            Response::Query(result) => Ok(result),
            Response::Error(error) => Err(ClientError::Protocol(error)),
            other => Err(ClientError::Protocol(ProtocolError::new(
                crate::protocol::ErrorCode::BadRequest,
                format!("unexpected response {other:?}"),
            ))),
        }
    }

    /// Applies one atomic mutation batch to a mutable graph, folding
    /// typed rejections (`immutable-graph`, `bad-request`, ...) into
    /// the error.
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn mutate(
        &mut self,
        graph: impl Into<String>,
        ops: Vec<MutationOp>,
    ) -> Result<MutateResult, ClientError> {
        match self.request(&Request::Mutate {
            graph: graph.into(),
            ops,
        })? {
            Response::Mutate(result) => Ok(result),
            Response::Error(error) => Err(ClientError::Protocol(error)),
            other => Err(ClientError::Protocol(ProtocolError::new(
                crate::protocol::ErrorCode::BadRequest,
                format!("unexpected response {other:?}"),
            ))),
        }
    }

    /// Forces a synchronous compaction of a mutable graph.
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn compact(&mut self, graph: impl Into<String>) -> Result<CompactResult, ClientError> {
        match self.request(&Request::Compact {
            graph: graph.into(),
        })? {
            Response::Compact(result) => Ok(result),
            Response::Error(error) => Err(ClientError::Protocol(error)),
            other => Err(ClientError::Protocol(ProtocolError::new(
                crate::protocol::ErrorCode::BadRequest,
                format!("unexpected response {other:?}"),
            ))),
        }
    }

    /// Fetches the server stats snapshot.
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(snapshot) => Ok(*snapshot),
            Response::Error(error) => Err(ClientError::Protocol(error)),
            other => Err(ClientError::Protocol(ProtocolError::new(
                crate::protocol::ErrorCode::BadRequest,
                format!("unexpected response {other:?}"),
            ))),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// See [`Client::query`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(error) => Err(ClientError::Protocol(error)),
            other => Err(ClientError::Protocol(ProtocolError::new(
                crate::protocol::ErrorCode::BadRequest,
                format!("unexpected response {other:?}"),
            ))),
        }
    }
}
