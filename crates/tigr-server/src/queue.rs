//! The bounded admission queue.
//!
//! Producers never block: [`Bounded::try_push`] either admits the job
//! or returns it with a typed rejection — that is the server's
//! backpressure signal, surfaced to clients as a `queue-full` protocol
//! error. Workers block on [`Bounded::pop`] until a job arrives or the
//! queue is closed and drained.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue holds `capacity` jobs; the item comes back to the
    /// caller so it can be failed without cloning.
    Full(T),
    /// The queue was closed by shutdown.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// A [`Bounded::pop_batch`] caller is currently forming a batch;
    /// other batch formers hold off so the burst fuses into one batch
    /// instead of shredding across every idle consumer.
    forming: bool,
}

/// A bounded MPMC queue: non-blocking producers, blocking consumers.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Creates a queue admitting at most `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                forming: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (not including ones being executed).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item`, or returns it with the typed reason it was
    /// refused. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        // Waiters are heterogeneous — [`Bounded::pop`] blockers and
        // lingering [`Bounded::pop_batch`] batch formers share the
        // condvar — so a single wake could land on a former whose
        // compatibility check rejects the new item and be lost.
        self.ready.notify_all();
        Ok(())
    }

    /// Blocks until a job is available and returns it, or returns
    /// `None` once the queue is closed and empty.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Blocks like [`Bounded::pop`] until a job is available, then
    /// takes it *together with* up to `max - 1` further queued jobs
    /// compatible with it (per `compat(head, candidate)`), preserving
    /// relative order; non-matching jobs keep their positions. With a
    /// non-zero `wait`, lingers for late-arriving compatible jobs —
    /// but only while *other* jobs remain queued behind the batch: the
    /// batch ships early the moment it reaches `max` or the queue
    /// drains, so an idle server never holds a ready batch open just
    /// to burn its linger budget. Returns the batch together with the
    /// formation wait (time from taking the head to shipping the
    /// batch), or `None` once the queue is closed and empty.
    ///
    /// Formation is **serialized**: only one `pop_batch` caller forms
    /// a batch at a time, and the others hold off from taking a head
    /// until it returns. Without this, N idle consumers each grab one
    /// job from a burst of N compatible arrivals and the batch former
    /// fuses nothing — formation shreds exactly when fusing matters
    /// most. Execution stays parallel: the forming window is bounded
    /// by `wait`, while consumers run the batches they formed outside
    /// the queue. Plain [`Bounded::pop`] ignores the formation gate;
    /// don't mix it with `pop_batch` on the same queue.
    pub fn pop_batch(
        &self,
        max: usize,
        wait: Duration,
        mut compat: impl FnMut(&T, &T) -> bool,
    ) -> Option<(Vec<T>, Duration)> {
        let max = max.max(1);
        let mut inner = self.inner.lock().unwrap();
        let head = loop {
            if !inner.forming {
                if let Some(item) = inner.items.pop_front() {
                    inner.forming = true;
                    break item;
                }
                if inner.closed {
                    return None;
                }
            }
            inner = self.ready.wait(inner).unwrap();
        };
        let formed = Instant::now();
        let mut out = vec![head];
        let deadline = formed + wait;
        loop {
            let mut i = 0;
            while i < inner.items.len() && out.len() < max {
                if compat(&out[0], &inner.items[i]) {
                    out.extend(inner.items.remove(i));
                } else {
                    i += 1;
                }
            }
            let now = Instant::now();
            if out.len() >= max || inner.items.is_empty() || inner.closed || now >= deadline {
                inner.forming = false;
                drop(inner);
                // Wake the formers held off by the formation gate (and
                // any pop blockers) so the next batch starts forming.
                self.ready.notify_all();
                return Some((out, now.duration_since(formed)));
            }
            inner = self.ready.wait_timeout(inner, deadline - now).unwrap().0;
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and consumers drain what remains then observe `None`. Returns
    /// the jobs still queued so the caller can fail them individually
    /// (the server replies `shutdown` to each).
    pub fn close(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        let drained = inner.items.drain(..).collect();
        drop(inner);
        self.ready.notify_all();
        drained
    }
}

impl<T> std::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bounded")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_beyond_capacity_is_typed_rejection() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_and_wakes_consumers() {
        let q = Arc::new(Bounded::new(4));
        q.try_push(7).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                // First pop gets the queued item; second observes close.
                let a = q.pop();
                let b = q.pop();
                (a, b)
            })
        };
        // Give the consumer a chance to drain and block.
        while !q.is_empty() {
            thread::yield_now();
        }
        let leftovers = q.close();
        assert!(leftovers.is_empty());
        assert_eq!(consumer.join().unwrap(), (Some(7), None));
        assert_eq!(q.try_push(9), Err(PushError::Closed(9)));
    }

    #[test]
    fn close_returns_unserved_jobs() {
        let q = Bounded::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.close(), vec!["a", "b"]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_takes_head_plus_compatible_in_order() {
        let q = Bounded::new(16);
        for v in [1, 2, 3, 4, 5, 6] {
            q.try_push(v).unwrap();
        }
        // Head is 1 (odd); same-parity followers fuse, up to `max`.
        let (odds, _) = q
            .pop_batch(3, Duration::ZERO, |a, b| a % 2 == b % 2)
            .unwrap();
        assert_eq!(odds, vec![1, 3, 5]);
        // Non-matching jobs keep their relative order for the next
        // consumer, which fuses them in turn.
        let (evens, _) = q
            .pop_batch(8, Duration::ZERO, |a, b| a % 2 == b % 2)
            .unwrap();
        assert_eq!(evens, vec![2, 4, 6]);
    }

    #[test]
    fn pop_batch_max_one_is_plain_pop() {
        let q = Bounded::new(4);
        q.try_push(9).unwrap();
        q.try_push(8).unwrap();
        // max 1 never fuses and never lingers, whatever `wait` says.
        let t = Instant::now();
        let (batch, waited) = q
            .pop_batch(1, Duration::from_secs(60), |_, _| true)
            .unwrap();
        assert_eq!(batch, vec![9]);
        assert!(t.elapsed() < Duration::from_secs(1));
        assert!(waited < Duration::from_secs(1));
        assert_eq!(q.pop(), Some(8));
    }

    #[test]
    fn pop_batch_returns_once_the_queue_drains() {
        // Once everything compatible is taken and nothing else is
        // queued, the batch ships immediately — the linger budget is
        // for fusing against a backlog, not for idling a ready batch.
        let q = Bounded::new(16);
        q.try_push(1u32).unwrap();
        q.try_push(3u32).unwrap();
        let t = Instant::now();
        let (batch, waited) = q
            .pop_batch(8, Duration::from_secs(60), |_, _| true)
            .unwrap();
        assert_eq!(batch, vec![1, 3]);
        assert!(t.elapsed() < Duration::from_secs(5));
        assert!(waited < Duration::from_secs(5));
    }

    #[test]
    fn pop_batch_lingers_for_late_compatible_arrivals() {
        let q = Arc::new(Bounded::new(16));
        q.try_push(1u32).unwrap();
        // An incompatible survivor keeps the batch open: with a backlog
        // behind it, the former spends its linger budget waiting for a
        // late same-parity arrival instead of shipping a singleton.
        q.try_push(4u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(5));
                q.try_push(7u32).unwrap();
            })
        };
        let got = q.pop_batch(2, Duration::from_secs(5), |a, b| a % 2 == b % 2);
        producer.join().unwrap();
        let (batch, waited) = got.unwrap();
        assert_eq!(batch, vec![1, 7]);
        assert!(waited < Duration::from_secs(5));
        // The incompatible job is still queued for the next consumer.
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn pop_batch_formation_is_serialized() {
        // A lingering former owns the queue head: a second former must
        // not steal the arrival the first one is waiting for.
        let q = Arc::new(Bounded::new(16));
        q.try_push(1u32).unwrap();
        q.try_push(4u32).unwrap(); // incompatible: keeps the first former lingering
        let compat = |a: &u32, b: &u32| a % 2 == b % 2;
        let first = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop_batch(2, Duration::from_secs(5), compat))
        };
        thread::sleep(Duration::from_millis(20));
        let second = {
            let q = Arc::clone(&q);
            // Without the formation gate this would grab the queued
            // incompatible job — or worse, the late arrival the first
            // former is waiting for — shredding the first batch.
            thread::spawn(move || q.pop_batch(2, Duration::from_secs(5), compat))
        };
        thread::sleep(Duration::from_millis(20));
        q.try_push(3u32).unwrap();
        let (batch, waited) = first.join().unwrap().unwrap();
        assert_eq!(batch, vec![1, 3]);
        assert!(waited >= Duration::from_millis(10));
        // The held-off second former then takes what remains and ships
        // straight away — the queue is drained after its head.
        let (batch, _) = second.join().unwrap().unwrap();
        assert_eq!(batch, vec![4]);
        assert!(q.close().is_empty());
    }

    #[test]
    fn pop_batch_returns_on_close() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(4));
        let former = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop_batch(2, Duration::from_secs(60), |_, _| true))
        };
        thread::sleep(Duration::from_millis(5));
        // No head ever arrives: the blocked former observes the close.
        assert!(q.close().is_empty());
        assert_eq!(former.join().unwrap(), None);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(Bounded::new(1024));
        let mut handles = Vec::new();
        for t in 0..8 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    q.try_push(t * 100 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = q.close();
        seen.sort_unstable();
        assert_eq!(seen, (0..800).collect::<Vec<_>>());
    }
}
