//! The bounded admission queue.
//!
//! Producers never block: [`Bounded::try_push`] either admits the job
//! or returns it with a typed rejection — that is the server's
//! backpressure signal, surfaced to clients as a `queue-full` protocol
//! error. Workers block on [`Bounded::pop`] until a job arrives or the
//! queue is closed and drained.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue holds `capacity` jobs; the item comes back to the
    /// caller so it can be failed without cloning.
    Full(T),
    /// The queue was closed by shutdown.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: non-blocking producers, blocking consumers.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Creates a queue admitting at most `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (not including ones being executed).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item`, or returns it with the typed reason it was
    /// refused. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available and returns it, or returns
    /// `None` once the queue is closed and empty.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and consumers drain what remains then observe `None`. Returns
    /// the jobs still queued so the caller can fail them individually
    /// (the server replies `shutdown` to each).
    pub fn close(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        let drained = inner.items.drain(..).collect();
        drop(inner);
        self.ready.notify_all();
        drained
    }
}

impl<T> std::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bounded")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_beyond_capacity_is_typed_rejection() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_and_wakes_consumers() {
        let q = Arc::new(Bounded::new(4));
        q.try_push(7).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                // First pop gets the queued item; second observes close.
                let a = q.pop();
                let b = q.pop();
                (a, b)
            })
        };
        // Give the consumer a chance to drain and block.
        while !q.is_empty() {
            thread::yield_now();
        }
        let leftovers = q.close();
        assert!(leftovers.is_empty());
        assert_eq!(consumer.join().unwrap(), (Some(7), None));
        assert_eq!(q.try_push(9), Err(PushError::Closed(9)));
    }

    #[test]
    fn close_returns_unserved_jobs() {
        let q = Bounded::new(8);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.close(), vec!["a", "b"]);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(Bounded::new(1024));
        let mut handles = Vec::new();
        for t in 0..8 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    q.try_push(t * 100 + i).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut seen = q.close();
        seen.sort_unstable();
        assert_eq!(seen, (0..800).collect::<Vec<_>>());
    }
}
