//! The serving core and its socket front-ends.
//!
//! Request flow: **admission → plan → backend → cache** —
//!
//! 1. *Admission*: [`ServerCore::submit`] validates the query, arms a
//!    [`CancelToken`] with the request (or server-default) deadline,
//!    and offers the job to the bounded [`Bounded`] queue. A full queue
//!    is a typed `queue-full` rejection, never a block — that is the
//!    backpressure contract.
//! 2. *Plan*: a batch executor pops one job and drains compatible
//!    queued jobs (same graph × same algorithm, up to `batch_max`)
//!    into one fused batch; every monotone query — batched or
//!    singleton — carries its own cancel token into a lane. With
//!    `kernel_threads = 1` the batch executes the deterministic
//!    `Sequential` push schedule; with more, it runs on the parallel
//!    `CpuPool` backend with per-iteration push/pull direction
//!    selection (values identical, iteration counts may differ).
//! 3. *Backend*: the engine advances all lanes of the batch in
//!    lockstep over the shared [`PreparedGraph`] (see
//!    [`tigr_engine::batch`]); tokens are polled at iteration
//!    boundaries, so an expired deadline surfaces as a consistent
//!    monotone prefix that the server then *discards* — that client
//!    gets `deadline-exceeded`, never partial values, and its
//!    batchmates are unaffected.
//! 4. *Cache*: converged results are published to the source-keyed LRU;
//!    hits skip straight from admission to reply.
//!
//! The socket front-ends ([`Server::bind_tcp`] / [`Server::bind_unix`])
//! speak the line-delimited JSON protocol of [`crate::protocol`]; each
//! connection gets a reader thread, and requests on one connection are
//! answered in order.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tigr_core::{
    CancelToken, GraphSnapshot, MutableGraph, MutationError, MutationOp, PreparedGraph,
};
use tigr_engine::{
    operators, run_monotone_view, BackendKind, BatchArena, BatchLane, BatchProgram, CpuOptions,
    Direction, Engine, EngineError, MonotoneProgram, Pipeline,
};
use tigr_graph::NodeId;

use crate::cache::{CacheKey, CachedResult, ResultCache};
use crate::protocol::{
    checksum, decode_request, encode_response, Algo, CompactResult, ErrorCode, MutateResult,
    QueryRequest, QueryResult, Request, Response,
};
use crate::queue::{Bounded, PushError};
use crate::stats::{GraphOpenStat, MutationGauges, StatsRecorder};

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Total thread budget for query execution. With `executors = 0`
    /// this is divided by `kernel_threads` to derive the executor
    /// count, so raising `kernel_threads` trades executor concurrency
    /// for per-batch parallelism inside a fixed budget.
    pub workers: usize,
    /// Batch executors pulling from the admission queue (`0` = derive
    /// from `workers / kernel_threads`, min 1). Each executor owns its
    /// own [`BatchArena`] and, when `kernel_threads > 1`, its own
    /// kernel thread pool.
    pub executors: usize,
    /// Kernel threads per executor. `1` (the default) runs the
    /// deterministic sequential push schedule — byte-identical to
    /// `tigr run`. `> 1` runs batches on the parallel `CpuPool`
    /// backend with per-iteration push/pull direction selection;
    /// values still match the sequential path exactly, but iteration
    /// counts may differ (see `tigr_engine::batch`).
    pub kernel_threads: usize,
    /// Bounded admission-queue capacity; pushes beyond it are rejected
    /// with `queue-full`.
    pub queue_capacity: usize,
    /// Result-cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Deadline applied to queries that don't carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Widest fused batch an executor may form (1 disables batching).
    pub batch_max: usize,
    /// How long an executor lingers on the queue collecting compatible
    /// jobs before executing a non-full batch, in microseconds. Zero
    /// means batches form only from jobs already queued.
    pub batch_wait_us: u64,
    /// Delta-edge count at which a mutate batch triggers a background
    /// compaction of that mutable graph (`0` disables automatic
    /// compaction; the `compact` verb still forces one synchronously).
    pub compact_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            executors: 0,
            kernel_threads: 1,
            queue_capacity: 128,
            cache_capacity: 256,
            default_deadline_ms: None,
            batch_max: 8,
            batch_wait_us: 0,
            compact_threshold: 0,
        }
    }
}

impl ServerConfig {
    /// Batch executors actually spawned: `executors` when non-zero,
    /// otherwise `workers / kernel_threads` (min 1) so the total
    /// thread budget stays near `workers`.
    pub fn executor_count(&self) -> usize {
        if self.executors > 0 {
            self.executors
        } else {
            (self.workers / self.kernel_threads.max(1)).max(1)
        }
    }

    /// The cache-key plan fingerprint for this configuration. Results
    /// from the two execution plans are value-identical but carry
    /// different iteration counts, so they never share cache entries.
    pub fn plan_fingerprint(&self) -> &'static str {
        if self.kernel_threads > 1 {
            "cpupool:auto"
        } else {
            "sequential:push"
        }
    }
}

/// One registry entry: a frozen prepared graph, or a mutable graph
/// whose WAL + delta overlay accept online mutations.
#[derive(Clone)]
enum GraphEntry {
    Static(Arc<PreparedGraph>),
    Mutable(Arc<MutableGraph>),
}

/// One admitted query waiting for a worker.
struct Job {
    request: QueryRequest,
    token: CancelToken,
    /// Whether `token` carries a deadline. Deadline-free duplicates may
    /// share a batch lane; a deadline-carrying job always gets a
    /// private lane so its cancellation poisons nobody else's answer.
    has_deadline: bool,
    received: Instant,
    slot: Arc<ReplySlot>,
    /// The snapshot this query pinned at admission (mutable graphs
    /// only). Holding the `Arc` is the isolation mechanism: mutations
    /// and compaction swaps that land after admission cannot touch the
    /// epoch this query reads.
    pinned: Option<Arc<GraphSnapshot>>,
}

impl Job {
    /// Cache-key epoch: the pinned overlay generation, `0` for static
    /// graphs. Also the batch-compatibility key — jobs only fuse when
    /// they observe the same epoch.
    fn epoch(&self) -> u64 {
        self.pinned.as_ref().map_or(0, |s| s.epoch())
    }

    /// Whether this job pinned a snapshot with live delta edges, which
    /// excludes it from the fused-batch path (the base CSR alone is the
    /// wrong graph).
    fn is_dirty(&self) -> bool {
        self.pinned.as_ref().is_some_and(|s| !s.is_clean())
    }
}

/// A one-shot rendezvous between the submitting thread and the worker.
struct ReplySlot {
    cell: Mutex<Option<Response>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<Self> {
        Arc::new(ReplySlot {
            cell: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn set(&self, response: Response) {
        *self.cell.lock().unwrap() = Some(response);
        self.ready.notify_all();
    }

    fn wait(&self) -> Response {
        let mut cell = self.cell.lock().unwrap();
        loop {
            if let Some(response) = cell.take() {
                return response;
            }
            cell = self.ready.wait(cell).unwrap();
        }
    }
}

/// The serving core: graph registry, admission queue, worker pool,
/// result cache, and stats. Socket front-ends and the in-process
/// [`crate::Client`] both drive it through [`ServerCore::submit`].
pub struct ServerCore {
    config: ServerConfig,
    graphs: Mutex<HashMap<String, GraphEntry>>,
    queue: Bounded<Job>,
    cache: ResultCache,
    stats: StatsRecorder,
    workers: Mutex<Vec<JoinHandle<()>>>,
    closed: AtomicBool,
}

impl ServerCore {
    /// Creates the core and spawns its worker pool.
    pub fn new(config: ServerConfig) -> Arc<Self> {
        let core = Arc::new(ServerCore {
            config,
            graphs: Mutex::new(HashMap::new()),
            queue: Bounded::new(config.queue_capacity),
            cache: ResultCache::new(config.cache_capacity),
            stats: StatsRecorder::default(),
            workers: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        });
        let mut workers = core.workers.lock().unwrap();
        for i in 0..config.executor_count() {
            let core = Arc::clone(&core);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tigr-serve-{i}"))
                    .spawn(move || core.worker_loop())
                    .expect("spawn worker"),
            );
        }
        drop(workers);
        core
    }

    /// The configuration the core was built with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Registers `prepared` under `name` as a read-only graph,
    /// replacing any previous graph of that name. Queries refer to
    /// graphs by this name; `mutate` against it answers
    /// `immutable-graph`.
    pub fn add_graph(&self, name: impl Into<String>, prepared: Arc<PreparedGraph>) {
        self.graphs
            .lock()
            .unwrap()
            .insert(name.into(), GraphEntry::Static(prepared));
    }

    /// Registers a mutable graph under `name`: `mutate` batches append
    /// to its WAL and delta overlay, queries pin snapshots of it, and
    /// `compact` (or the configured `compact_threshold`) folds the
    /// overlay into a fresh base artifact.
    pub fn add_mutable_graph(&self, name: impl Into<String>, graph: Arc<MutableGraph>) {
        self.graphs
            .lock()
            .unwrap()
            .insert(name.into(), GraphEntry::Mutable(graph));
    }

    /// The mutable graph registered under `name`, if any.
    pub fn mutable_graph(&self, name: &str) -> Option<Arc<MutableGraph>> {
        match self.graphs.lock().unwrap().get(name) {
            Some(GraphEntry::Mutable(m)) => Some(Arc::clone(m)),
            _ => None,
        }
    }

    /// Names of the registered graphs, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.graphs.lock().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Per-graph open records for the `stats` verb, sorted by name: how
    /// each registered graph's views were opened (mapped / decoded /
    /// built), at what verification level, how long the open took, and
    /// where its bytes live.
    fn graph_open_stats(&self) -> Vec<GraphOpenStat> {
        let mut stats: Vec<GraphOpenStat> = self
            .graphs
            .lock()
            .unwrap()
            .iter()
            .map(|(name, entry)| {
                let base;
                let prepared = match entry {
                    GraphEntry::Static(p) => p,
                    GraphEntry::Mutable(m) => {
                        base = Arc::clone(m.snapshot().base());
                        &base
                    }
                };
                let open = prepared.open_info();
                GraphOpenStat {
                    name: name.clone(),
                    open: open.mode.label().to_owned(),
                    verify: open.verify.label().to_owned(),
                    open_us: open.open_us,
                    mapped_bytes: open.mapped_bytes as u64,
                    heap_bytes: open.heap_bytes as u64,
                }
            })
            .collect();
        stats.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }

    /// Aggregates the live WAL / delta / compaction gauges over every
    /// mutable graph: sums for the additive counters, maxima for the
    /// overlay generation and the last-compaction clock.
    fn mutation_gauges(&self) -> MutationGauges {
        let mut g = MutationGauges::default();
        for entry in self.graphs.lock().unwrap().values() {
            if let GraphEntry::Mutable(m) = entry {
                g.wal_len += m.wal_len();
                g.delta_edges += m.delta_edges() as u64;
                g.overlay_generation = g.overlay_generation.max(m.epoch());
                g.compactions += m.compactions();
                g.last_compaction_ms = g.last_compaction_ms.max(m.last_compaction_ms());
            }
        }
        g
    }

    /// Handles one request synchronously: `stats`, `ping`, `mutate`,
    /// and `compact` answer inline; queries go through admission and
    /// block until a worker replies. Safe to call from many threads at
    /// once.
    pub fn submit(&self, request: Request) -> Response {
        match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(Box::new(self.stats.snapshot(
                self.queue.len() as u64,
                self.config.executor_count() as u64,
                self.cache.counters(),
                self.graph_open_stats(),
                self.mutation_gauges(),
            ))),
            Request::Query(query) => self.submit_query(query),
            Request::Mutate { graph, ops } => self.submit_mutate(&graph, &ops),
            Request::Compact { graph } => self.submit_compact(&graph),
        }
    }

    /// Applies one mutation batch to a mutable graph. Runs inline on
    /// the submitting thread — the WAL fsync and overlay update are
    /// serialized per graph anyway, and bypassing the queue keeps
    /// admission capacity for queries.
    fn submit_mutate(&self, graph: &str, ops: &[MutationOp]) -> Response {
        let mutable = match self.graphs.lock().unwrap().get(graph) {
            None => {
                return Response::error(
                    ErrorCode::UnknownGraph,
                    format!("no graph registered as {graph:?}"),
                );
            }
            Some(GraphEntry::Static(_)) => {
                return Response::error(
                    ErrorCode::ImmutableGraph,
                    format!("graph {graph:?} is registered read-only; register it as mutable to accept mutations"),
                );
            }
            Some(GraphEntry::Mutable(m)) => Arc::clone(m),
        };
        match mutable.apply(ops) {
            Ok(summary) => {
                self.stats
                    .record_mutation(summary.applied as u64, summary.skipped as u64);
                if self.config.compact_threshold > 0 {
                    mutable.maybe_spawn_compaction(self.config.compact_threshold);
                }
                Response::Mutate(MutateResult {
                    graph: graph.to_owned(),
                    applied: summary.applied as u64,
                    skipped: summary.skipped as u64,
                    wal_len: summary.wal_len,
                    epoch: summary.epoch,
                })
            }
            Err(e) => mutation_error(e),
        }
    }

    /// Forces a synchronous compaction of a mutable graph.
    fn submit_compact(&self, graph: &str) -> Response {
        let mutable = match self.graphs.lock().unwrap().get(graph) {
            None => {
                return Response::error(
                    ErrorCode::UnknownGraph,
                    format!("no graph registered as {graph:?}"),
                );
            }
            Some(GraphEntry::Static(_)) => {
                return Response::error(
                    ErrorCode::ImmutableGraph,
                    format!("graph {graph:?} is registered read-only; nothing to compact"),
                );
            }
            Some(GraphEntry::Mutable(m)) => Arc::clone(m),
        };
        match mutable.compact() {
            Ok(stats) => Response::Compact(CompactResult {
                graph: graph.to_owned(),
                wall_ms: stats.wall_ms,
                delta_edges_before: stats.delta_edges_before as u64,
                delta_edges_after: stats.delta_edges_after as u64,
                epoch: stats.epoch,
            }),
            Err(e) => mutation_error(e),
        }
    }

    fn submit_query(&self, query: QueryRequest) -> Response {
        self.stats.record_received();
        // Validate against the registry before spending a queue slot.
        // Mutable graphs pin their snapshot here, at admission: the
        // epoch this query observes is fixed before it ever queues.
        let entry = match self.graphs.lock().unwrap().get(&query.graph) {
            Some(e) => e.clone(),
            None => {
                self.stats.record_failed();
                return Response::error(
                    ErrorCode::UnknownGraph,
                    format!("no graph registered as {:?}", query.graph),
                );
            }
        };
        let (num_nodes, pinned) = match &entry {
            GraphEntry::Static(p) => (p.graph().num_nodes(), None),
            GraphEntry::Mutable(m) => {
                let snapshot = m.snapshot();
                (snapshot.num_nodes(), Some(snapshot))
            }
        };
        // Enforce source arity here, not just in the wire decoder, so
        // in-process clients get the same typed rejection as sockets.
        if query.algo.needs_source() && query.source.is_none() {
            self.stats.record_failed();
            return Response::error(
                ErrorCode::BadRequest,
                format!("{} requires a source", query.algo.label()),
            );
        }
        if !query.algo.needs_source() && query.source.is_some() {
            self.stats.record_failed();
            return Response::error(
                ErrorCode::BadRequest,
                format!("{} takes no source", query.algo.label()),
            );
        }
        // Limit arity likewise: the wire decoder already rejects these,
        // but in-process clients deserve the same typed answer.
        if query.algo.needs_limit() && query.limit.is_none() {
            self.stats.record_failed();
            return Response::error(
                ErrorCode::BadRequest,
                format!(
                    "{} requires a limit ({})",
                    query.algo.label(),
                    query.algo.limit_name().unwrap_or("limit"),
                ),
            );
        }
        if !query.algo.needs_limit() && query.limit.is_some() {
            self.stats.record_failed();
            return Response::error(
                ErrorCode::BadRequest,
                format!("{} takes no limit", query.algo.label()),
            );
        }
        if let Some(source) = query.source {
            if source as usize >= num_nodes {
                self.stats.record_failed();
                return Response::error(
                    ErrorCode::BadRequest,
                    format!("source {source} out of range (graph has {num_nodes} nodes)"),
                );
            }
        }
        let deadline_ms = query.deadline_ms.or(self.config.default_deadline_ms);
        let token = match deadline_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::never(),
        };
        let slot = ReplySlot::new();
        let job = Job {
            request: query,
            token,
            has_deadline: deadline_ms.is_some(),
            received: Instant::now(),
            slot: Arc::clone(&slot),
            pinned,
        };
        match self.queue.try_push(job) {
            Ok(()) => slot.wait(),
            Err(PushError::Full(_)) => {
                self.stats.record_rejected();
                Response::error(
                    ErrorCode::QueueFull,
                    format!("admission queue at capacity ({})", self.queue.capacity()),
                )
            }
            Err(PushError::Closed(_)) => {
                self.stats.record_rejected();
                Response::error(ErrorCode::Shutdown, "server is shutting down")
            }
        }
    }

    fn worker_loop(&self) {
        // Per-executor reusable lane storage: value arrays, frontier
        // builders, and worklists survive across queries and batches,
        // so the steady-state path performs no per-query allocation.
        // The retain cap bounds what an unusually wide batch leaves
        // behind: after it, the arena shrinks back to at most
        // `2 * batch_max` lanes instead of pinning the peak footprint
        // for the life of the executor.
        let mut arena = BatchArena::with_retain_cap(2 * self.config.batch_max.max(1));
        let wait = Duration::from_micros(self.config.batch_wait_us);
        // The whole batch forms inside one queue operation: the head
        // job plus every queued job compatible with it (same graph
        // name × same algorithm), lingering up to `batch_wait_us` for
        // stragglers. Atomicity matters — popping the head and
        // draining followers as two separate steps lets concurrent
        // workers shred a burst of compatible queries into singleton
        // batches. Incompatible jobs stay queued for other workers.
        while let Some((batch, formed_in)) =
            self.queue.pop_batch(self.config.batch_max, wait, |a, b| {
                a.request.algo.batchable()
                    && a.request.algo == b.request.algo
                    && a.request.graph == b.request.graph
                    && a.epoch() == b.epoch()
            })
        {
            self.stats
                .record_formation_wait(formed_in.as_micros() as u64);
            if !batch[0].request.algo.batchable() || batch[0].is_dirty() {
                // Non-monotone or post-processed analytics (PR, BC,
                // paths, lp, tc) cannot share a fused sweep; they keep
                // the solo executor. The compat check above never fuses
                // anything with them. (khop batches: its fixpoint is
                // k-independent, so mixed-k jobs fuse and mask per job.)
                // Jobs pinned to a dirty snapshot also go solo: their
                // graph is base + delta, which the fused engine (keyed
                // to the base CSR alone) cannot see. They fuse with
                // each other at the queue level (same epoch), but
                // execute one by one through the overlay view.
                for job in batch {
                    let slot = Arc::clone(&job.slot);
                    let outcome = catch_unwind(AssertUnwindSafe(|| self.execute(job)));
                    let response = outcome.unwrap_or_else(|_| {
                        self.stats.record_failed();
                        Response::error(ErrorCode::Internal, "query execution panicked")
                    });
                    slot.set(response);
                }
                continue;
            }
            self.execute_batch(batch, &mut arena);
        }
    }

    /// Executes one compatible batch of monotone queries as a single
    /// fused multi-source run and demultiplexes per-lane results to the
    /// waiting clients. Answers are byte-equal to the solo path: same
    /// values, iteration counts, and checksums.
    ///
    /// Per-job admission checks (expired-while-queued, cache hits) run
    /// before lanes form. Deadline-free jobs with identical sources
    /// coalesce onto one shared lane; a job carrying a deadline gets a
    /// private lane so its cancellation fails only its own reply.
    fn execute_batch(&self, jobs: Vec<Job>, arena: &mut BatchArena) {
        let algo = jobs[0].request.algo;
        let graph_name = jobs[0].request.graph.clone();
        let mut pending: Vec<Job> = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.token.is_cancelled() {
                self.stats.record_failed();
                job.slot.set(Response::error(
                    ErrorCode::DeadlineExceeded,
                    "deadline expired while queued",
                ));
                continue;
            }
            if job.request.cache {
                let key = CacheKey {
                    graph: graph_name.clone(),
                    algo,
                    source: job.request.source,
                    limit: job.request.limit,
                    plan: self.config.plan_fingerprint(),
                    epoch: job.epoch(),
                };
                if let Some(hit) = self.cache.get(&key) {
                    let wall_us = job.received.elapsed().as_micros() as u64;
                    self.stats.record_completed(algo, wall_us);
                    job.slot.set(Response::Query(QueryResult {
                        algo,
                        graph: graph_name.clone(),
                        source: job.request.source,
                        nodes: hit.values.len() as u64,
                        iterations: hit.iterations,
                        checksum: hit.checksum,
                        cached: true,
                        wall_us,
                        values: job
                            .request
                            .include_values
                            .then(|| hit.values.as_ref().clone()),
                    }));
                    continue;
                }
            }
            pending.push(job);
        }
        if pending.is_empty() {
            return;
        }
        // Jobs pinned to a (clean) snapshot run over its base — the
        // pin, not the registry, is authoritative, so a compaction
        // swapping the registry entry mid-flight changes nothing here.
        let pinned_base = pending[0].pinned.as_ref().map(|s| Arc::clone(s.base()));
        let prepared = match pinned_base {
            Some(base) => base,
            None => match self.graphs.lock().unwrap().get(&graph_name) {
                Some(GraphEntry::Static(p)) => Arc::clone(p),
                Some(GraphEntry::Mutable(m)) => Arc::clone(m.snapshot().base()),
                None => {
                    for job in pending {
                        self.stats.record_failed();
                        job.slot.set(Response::error(
                            ErrorCode::UnknownGraph,
                            format!("graph {graph_name:?} was unregistered"),
                        ));
                    }
                    return;
                }
            },
        };
        let prog = match algo {
            Algo::Bfs => tigr_engine::MonotoneProgram::BFS,
            Algo::Sssp => tigr_engine::MonotoneProgram::SSSP,
            Algo::Sswp => tigr_engine::MonotoneProgram::SSWP,
            Algo::Cc => tigr_engine::MonotoneProgram::CC,
            // The k-hop fixpoint is k-independent (true hop counts);
            // each job masks its own k after projection, so mixed-k
            // jobs share lanes like any other monotone batch.
            Algo::Khop => tigr_engine::MonotoneProgram::KHOP,
            other => unreachable!("{other:?} never enters the batch path"),
        };
        let mut lanes: Vec<BatchLane> = Vec::new();
        let mut lane_jobs: Vec<Vec<Job>> = Vec::new();
        let mut shared: HashMap<Option<u32>, usize> = HashMap::new();
        for job in pending {
            let source = job.request.source.map(NodeId::new);
            if job.has_deadline {
                lanes.push(BatchLane::with_cancel(source, job.token.clone()));
                lane_jobs.push(vec![job]);
            } else if let Some(&lane) = shared.get(&job.request.source) {
                lane_jobs[lane].push(job);
            } else {
                shared.insert(job.request.source, lanes.len());
                lanes.push(BatchLane::new(source));
                lane_jobs.push(vec![job]);
            }
        }
        self.stats
            .record_batch(lane_jobs.iter().map(Vec::len).sum::<usize>() as u64);
        let batch = BatchProgram { prog, lanes };
        let threads = self.config.kernel_threads.max(1);
        let engine = if threads > 1 {
            // Parallel direction-aware executor: one CpuPool sweep
            // relaxes every live lane, switching push/pull per
            // iteration on aggregate frontier density.
            Engine::default()
                .with_backend(BackendKind::CpuPool)
                .with_direction(Direction::Auto)
                .with_cpu_options(CpuOptions {
                    threads,
                    ..CpuOptions::default()
                })
                .with_device_memory(u64::MAX)
        } else {
            Engine::default()
                .with_backend(BackendKind::Sequential)
                .with_device_memory(u64::MAX)
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            engine.run_prepared_batch(&prepared, &batch, arena)
        }));
        let out = match outcome {
            Ok(Ok(out)) => out,
            Ok(Err(e)) => {
                for job in lane_jobs.into_iter().flatten() {
                    self.stats.record_failed();
                    job.slot.set(match &e {
                        EngineError::InvalidPlan(p) => {
                            Response::error(ErrorCode::InvalidPlan, p.to_string())
                        }
                        other => Response::error(ErrorCode::Internal, other.to_string()),
                    });
                }
                return;
            }
            Err(_) => {
                for job in lane_jobs.into_iter().flatten() {
                    self.stats.record_failed();
                    job.slot.set(Response::error(
                        ErrorCode::Internal,
                        "query execution panicked",
                    ));
                }
                return;
            }
        };
        for (lane_out, jobs) in out.lanes.into_iter().zip(lane_jobs) {
            if lane_out.cancelled {
                // The poisoned lane is discarded and never cached; its
                // batchmates are unaffected.
                for job in jobs {
                    self.stats.record_failed();
                    job.slot.set(Response::error(
                        ErrorCode::DeadlineExceeded,
                        "deadline expired during execution; partial state discarded",
                    ));
                }
                continue;
            }
            let iterations = lane_out.directions.len() as u64;
            let base = match prepared.transformed() {
                Some(t) => t.project_values(&lane_out.values),
                None => lane_out.values,
            };
            let base_sum = checksum(&base);
            let base = Arc::new(base);
            // Per-k variants of this lane's answer (khop only): the
            // fused run computed unbounded hop counts, so jobs with
            // different k share a lane and each mask is applied here,
            // after projection (masking and projection commute
            // pointwise).
            let mut variants: Vec<(u32, Arc<Vec<u32>>, u64)> = Vec::new();
            for job in jobs {
                let (values, sum) = if algo == Algo::Khop {
                    let k = job.request.limit.expect("khop admission requires a limit");
                    match variants.iter().find(|(limit, ..)| *limit == k) {
                        Some((_, v, s)) => (Arc::clone(v), *s),
                        None => {
                            let mut v = base.as_ref().clone();
                            operators::mask_above(&mut v, k);
                            let s = checksum(&v);
                            let v = Arc::new(v);
                            variants.push((k, Arc::clone(&v), s));
                            (v, s)
                        }
                    }
                } else {
                    (Arc::clone(&base), base_sum)
                };
                if job.request.cache {
                    self.cache.insert(
                        CacheKey {
                            graph: graph_name.clone(),
                            algo,
                            source: job.request.source,
                            limit: job.request.limit,
                            plan: self.config.plan_fingerprint(),
                            epoch: job.epoch(),
                        },
                        CachedResult {
                            values: Arc::clone(&values),
                            iterations,
                            checksum: sum,
                        },
                    );
                }
                let wall_us = job.received.elapsed().as_micros() as u64;
                self.stats.record_completed(algo, wall_us);
                job.slot.set(Response::Query(QueryResult {
                    algo,
                    graph: graph_name.clone(),
                    source: job.request.source,
                    nodes: values.len() as u64,
                    iterations,
                    checksum: sum,
                    cached: false,
                    wall_us,
                    values: job.request.include_values.then(|| values.as_ref().clone()),
                }));
            }
        }
    }

    fn execute(&self, job: Job) -> Response {
        let query = &job.request;
        if job.token.is_cancelled() {
            self.stats.record_failed();
            return Response::error(ErrorCode::DeadlineExceeded, "deadline expired while queued");
        }
        let key = CacheKey {
            graph: query.graph.clone(),
            algo: query.algo,
            source: query.source,
            limit: query.limit,
            plan: self.config.plan_fingerprint(),
            epoch: job.epoch(),
        };
        if query.cache {
            if let Some(hit) = self.cache.get(&key) {
                let wall_us = job.received.elapsed().as_micros() as u64;
                self.stats.record_completed(query.algo, wall_us);
                return Response::Query(QueryResult {
                    algo: query.algo,
                    graph: query.graph.clone(),
                    source: query.source,
                    nodes: hit.values.len() as u64,
                    iterations: hit.iterations,
                    checksum: hit.checksum,
                    cached: true,
                    wall_us,
                    values: query.include_values.then(|| hit.values.as_ref().clone()),
                });
            }
        }
        // A dirty pinned snapshot is base + delta: monotone verbs
        // stream the overlay view directly (zero-copy); everything else
        // lazily materializes the merged graph, cached on the snapshot.
        if let Some(snapshot) = job.pinned.as_ref().filter(|s| !s.is_clean()) {
            if let Some(prog) = monotone_program(query.algo) {
                return self.execute_view(&job, snapshot, prog, key);
            }
            let merged = match snapshot.merged() {
                Ok(m) => m,
                Err(e) => {
                    self.stats.record_failed();
                    return mutation_error(e);
                }
            };
            return self.execute_prepared(&job, &merged, key);
        }
        // Clean snapshots run over their pinned base; static graphs
        // re-resolve from the registry (the graph may have been
        // replaced since admission, but a fresh Arc is still valid).
        let prepared = match job.pinned.as_ref() {
            Some(snapshot) => Arc::clone(snapshot.base()),
            None => match self.graphs.lock().unwrap().get(&query.graph) {
                Some(GraphEntry::Static(p)) => Arc::clone(p),
                Some(GraphEntry::Mutable(m)) => Arc::clone(m.snapshot().base()),
                None => {
                    self.stats.record_failed();
                    return Response::error(
                        ErrorCode::UnknownGraph,
                        format!("graph {:?} was unregistered", query.graph),
                    );
                }
            },
        };
        self.execute_prepared(&job, &prepared, key)
    }

    /// Runs a monotone query over a dirty snapshot's overlay view and
    /// publishes the result. Values are byte-equal to preparing the
    /// merged edge list from scratch — the fixpoint is order-
    /// independent, so streaming base edges before delta edges changes
    /// nothing (see `tigr_engine::view_exec`).
    fn execute_view(
        &self,
        job: &Job,
        snapshot: &GraphSnapshot,
        prog: MonotoneProgram,
        key: CacheKey,
    ) -> Response {
        let query = &job.request;
        let view = snapshot.view().expect("dirty snapshot has a view");
        let out = run_monotone_view(&view, prog, query.source.map(NodeId::new));
        // The view driver doesn't poll the token mid-run; an expired
        // deadline is honored after the fact (same contract as BC) and
        // the complete-but-late answer is discarded, never cached.
        if job.token.is_cancelled() {
            self.stats.record_failed();
            return Response::error(
                ErrorCode::DeadlineExceeded,
                "deadline expired during execution; partial state discarded",
            );
        }
        let mut values = out.values;
        if query.algo == Algo::Khop {
            let k = query.limit.expect("khop admission requires a limit");
            operators::mask_above(&mut values, k);
        }
        let sum = checksum(&values);
        let values = Arc::new(values);
        if query.cache {
            self.cache.insert(
                key,
                CachedResult {
                    values: Arc::clone(&values),
                    iterations: out.iterations,
                    checksum: sum,
                },
            );
        }
        let wall_us = job.received.elapsed().as_micros() as u64;
        self.stats.record_completed(query.algo, wall_us);
        Response::Query(QueryResult {
            algo: query.algo,
            graph: query.graph.clone(),
            source: query.source,
            nodes: values.len() as u64,
            iterations: out.iterations,
            checksum: sum,
            cached: false,
            wall_us,
            values: query.include_values.then(|| values.as_ref().clone()),
        })
    }

    fn execute_prepared(&self, job: &Job, prepared: &PreparedGraph, key: CacheKey) -> Response {
        let query = &job.request;
        match run_query(
            prepared,
            query.algo,
            query.source,
            query.limit,
            job.token.clone(),
        ) {
            Ok((values, iterations)) => {
                let sum = checksum(&values);
                let values = Arc::new(values);
                if query.cache {
                    self.cache.insert(
                        key,
                        CachedResult {
                            values: Arc::clone(&values),
                            iterations,
                            checksum: sum,
                        },
                    );
                }
                let wall_us = job.received.elapsed().as_micros() as u64;
                self.stats.record_completed(query.algo, wall_us);
                Response::Query(QueryResult {
                    algo: query.algo,
                    graph: query.graph.clone(),
                    source: query.source,
                    nodes: values.len() as u64,
                    iterations,
                    checksum: sum,
                    cached: false,
                    wall_us,
                    values: query.include_values.then(|| values.as_ref().clone()),
                })
            }
            Err(error) => {
                self.stats.record_failed();
                error
            }
        }
    }

    /// Stops accepting work, fails queued jobs with `shutdown`, and
    /// joins the worker pool. Idempotent.
    pub fn shutdown(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        for job in self.queue.close() {
            self.stats.record_rejected();
            job.slot.set(Response::error(
                ErrorCode::Shutdown,
                "server is shutting down",
            ));
        }
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCore")
            .field("graphs", &self.graph_names())
            .field("queue", &self.queue)
            .field("cache", &self.cache)
            .finish()
    }
}

impl Drop for ServerCore {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Executes one analytic over a prepared graph with the server's
/// deterministic plan, by lowering the shared [`Algo`] verb onto its
/// operator [`Pipeline`] — every verb the protocol speaks is served by
/// this one path. Returns per-original-node values (physical transforms
/// are projected back) and the iteration count, or a typed error
/// response.
fn run_query(
    prepared: &PreparedGraph,
    algo: Algo,
    source: Option<u32>,
    limit: Option<u32>,
    token: CancelToken,
) -> Result<(Vec<u32>, u64), Response> {
    let engine = Engine::default()
        .with_backend(BackendKind::Sequential)
        .with_device_memory(u64::MAX)
        .with_cancel(token.clone());
    let deadline = || {
        Response::error(
            ErrorCode::DeadlineExceeded,
            "deadline expired during execution; partial state discarded",
        )
    };
    let pipeline = Pipeline::for_algo(algo, limit)
        .map_err(|e| Response::error(ErrorCode::BadRequest, e.to_string()))?;
    let out = engine
        .run_prepared_pipeline(prepared, &pipeline, source.map(NodeId::new))
        .map_err(|e| match e {
            EngineError::InvalidPlan(p) => Response::error(ErrorCode::InvalidPlan, p.to_string()),
            other => Response::error(ErrorCode::Internal, other.to_string()),
        })?;
    // Betweenness runs to completion without polling the token, so an
    // expired deadline is checked after the fact; monotone and PR
    // pipelines surface cancellation through the output itself.
    if out.cancelled || (algo == Algo::Bc && token.is_cancelled()) {
        return Err(deadline());
    }
    // Pipelines whose post-pass appends extra sections (bounded paths:
    // distances then predecessors) are only valid on representations
    // that keep original node identity, which `validate_pipeline`
    // enforces — so projecting here is always section-safe.
    let values = match prepared.transformed() {
        Some(t) => t.project_values(&out.values),
        None => out.values,
    };
    Ok((values, out.iterations))
}

/// The monotone program behind an [`Algo`] verb, when it has one —
/// exactly the verbs the overlay-view executor can serve without
/// materializing the merged graph.
fn monotone_program(algo: Algo) -> Option<MonotoneProgram> {
    match algo {
        Algo::Bfs => Some(MonotoneProgram::BFS),
        Algo::Sssp => Some(MonotoneProgram::SSSP),
        Algo::Sswp => Some(MonotoneProgram::SSWP),
        Algo::Cc => Some(MonotoneProgram::CC),
        // True hop counts; each request masks its own k afterwards.
        Algo::Khop => Some(MonotoneProgram::KHOP),
        _ => None,
    }
}

/// Folds a [`MutationError`] into the typed protocol vocabulary.
fn mutation_error(e: MutationError) -> Response {
    match e {
        MutationError::Invalid(m) => Response::error(ErrorCode::BadRequest, m),
        MutationError::Immutable(m) => Response::error(ErrorCode::ImmutableGraph, m),
        MutationError::Busy => Response::error(
            ErrorCode::Internal,
            "a compaction is already in progress on this graph",
        ),
        other => Response::error(ErrorCode::Internal, other.to_string()),
    }
}

/// Where a [`Server`] is listening.
#[derive(Clone, Debug)]
pub enum ServerAddr {
    /// TCP socket address (use for `--port 0` ephemeral binds).
    Tcp(SocketAddr),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

/// A running socket front-end over a [`ServerCore`].
#[derive(Debug)]
pub struct Server {
    core: Arc<ServerCore>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    addr: ServerAddr,
}

impl Server {
    /// Binds a TCP listener (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port) and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind_tcp(core: Arc<ServerCore>, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("tigr-serve-accept".into())
                .spawn(move || accept_loop_tcp(&core, &listener, &stop))?
        };
        Ok(Server {
            core,
            stop,
            accept: Some(accept),
            addr: ServerAddr::Tcp(local),
        })
    }

    /// Binds a Unix-domain socket at `path` (removing a stale socket
    /// file first) and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind_unix(core: Arc<ServerCore>, path: impl AsRef<Path>) -> std::io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("tigr-serve-accept".into())
                .spawn(move || accept_loop_unix(&core, &listener, &stop))?
        };
        Ok(Server {
            core,
            stop,
            accept: Some(accept),
            addr: ServerAddr::Unix(path),
        })
    }

    /// Where the server is listening (for ephemeral TCP ports this is
    /// the resolved address).
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    /// The shared core (register graphs, build local clients).
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// Stops the accept loop, then shuts the core down (failing queued
    /// jobs with typed `shutdown` errors and joining workers).
    pub fn shutdown(mut self) {
        self.stop_accepting();
        self.core.shutdown();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let ServerAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

const ACCEPT_POLL: Duration = Duration::from_millis(5);

fn accept_loop_tcp(core: &Arc<ServerCore>, listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let core = Arc::clone(core);
                let _ = std::thread::Builder::new()
                    .name("tigr-serve-conn".into())
                    .spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(r) => r,
                            Err(_) => return,
                        };
                        serve_connection(&core, reader, stream);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn accept_loop_unix(core: &Arc<ServerCore>, listener: &UnixListener, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let core = Arc::clone(core);
                let _ = std::thread::Builder::new()
                    .name("tigr-serve-conn".into())
                    .spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(r) => r,
                            Err(_) => return,
                        };
                        serve_connection(&core, reader, stream);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Reads request lines and writes response lines until EOF. Requests on
/// one connection are answered in order; concurrency comes from many
/// connections.
fn serve_connection(core: &Arc<ServerCore>, reader: impl std::io::Read, mut writer: impl Write) {
    // Accepted connections inherit the listener's non-blocking flag on
    // some platforms; the per-connection protocol is blocking.
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match decode_request(&line) {
            Ok(request) => core.submit(request),
            Err(error) => Response::Error(error),
        };
        let payload = encode_response(&response);
        if writer
            .write_all(payload.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigr_core::{GraphStore, PrepareSpec};

    fn small_core(config: ServerConfig) -> Arc<ServerCore> {
        let store = GraphStore::disabled();
        let spec = PrepareSpec::generated("rmat:8:8", 42).with_uniform_weights(1, 64, 7);
        let prepared = Arc::new(store.prepare(&spec).unwrap());
        let core = ServerCore::new(config);
        core.add_graph("rmat8", prepared);
        core
    }

    fn bfs_query(source: u32) -> Request {
        Request::Query(QueryRequest::new("rmat8", Algo::Bfs, Some(source)))
    }

    #[test]
    fn query_runs_and_caches() {
        let core = small_core(ServerConfig::default());
        let first = match core.submit(bfs_query(0)) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert!(!first.cached);
        let second = match core.submit(bfs_query(0)) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert!(second.cached);
        assert_eq!(first.checksum, second.checksum);
        assert_eq!(first.iterations, second.iterations);
        let stats = match core.submit(Request::Stats) {
            Response::Stats(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits, 1);
        core.shutdown();
    }

    #[test]
    fn unknown_graph_and_bad_source_are_typed() {
        let core = small_core(ServerConfig::default());
        let resp = core.submit(Request::Query(QueryRequest::new(
            "nope",
            Algo::Bfs,
            Some(0),
        )));
        match resp {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownGraph),
            other => panic!("{other:?}"),
        }
        let resp = core.submit(bfs_query(u32::MAX));
        match resp {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
            other => panic!("{other:?}"),
        }
        core.shutdown();
    }

    #[test]
    fn values_match_direct_sequential_run() {
        let core = small_core(ServerConfig::default());
        let mut req = QueryRequest::new("rmat8", Algo::Sssp, Some(3));
        req.include_values = true;
        let served = match core.submit(Request::Query(req)) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        let store = GraphStore::disabled();
        let spec = PrepareSpec::generated("rmat:8:8", 42).with_uniform_weights(1, 64, 7);
        let prepared = store.prepare(&spec).unwrap();
        let engine = Engine::default().with_backend(BackendKind::Sequential);
        let direct = engine
            .run_prepared(
                &prepared,
                tigr_engine::MonotoneProgram::SSSP,
                Some(NodeId::new(3)),
            )
            .unwrap();
        assert_eq!(served.values.as_deref(), Some(direct.values.as_slice()));
        assert_eq!(served.checksum, checksum(&direct.values));
        core.shutdown();
    }

    #[test]
    fn pagerank_ranks_travel_as_bit_patterns() {
        let core = small_core(ServerConfig::default());
        let mut req = QueryRequest::new("rmat8", Algo::Pr, None);
        req.include_values = true;
        let served = match core.submit(Request::Query(req)) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        let values = served.values.unwrap();
        let sum: f64 = values
            .iter()
            .map(|&bits| f64::from(f32::from_bits(bits)))
            .sum();
        assert!((sum - 1.0).abs() < 1e-3, "ranks sum to {sum}");
        core.shutdown();
    }

    #[test]
    fn zero_deadline_is_rejected_not_cached() {
        let core = small_core(ServerConfig::default());
        let mut req = QueryRequest::new("rmat8", Algo::Sssp, Some(5));
        req.deadline_ms = Some(0);
        match core.submit(Request::Query(req)) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::DeadlineExceeded),
            other => panic!("{other:?}"),
        }
        // The failed run must not have poisoned the cache: the next
        // uncapped query is a miss, then computes fresh.
        let ok = match core.submit(Request::Query(QueryRequest::new(
            "rmat8",
            Algo::Sssp,
            Some(5),
        ))) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert!(!ok.cached);
        core.shutdown();
    }

    #[test]
    fn parallel_kernel_threads_match_sequential_answers() {
        let seq = small_core(ServerConfig {
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        let par = small_core(ServerConfig {
            executors: 2,
            kernel_threads: 2,
            cache_capacity: 0,
            ..ServerConfig::default()
        });
        assert_eq!(par.config().executor_count(), 2);
        assert_eq!(par.config().plan_fingerprint(), "cpupool:auto");
        for (algo, source) in [
            (Algo::Bfs, Some(3)),
            (Algo::Sssp, Some(3)),
            (Algo::Sswp, Some(3)),
            (Algo::Cc, None),
        ] {
            let mut req = QueryRequest::new("rmat8", algo, source);
            req.include_values = true;
            let a = match seq.submit(Request::Query(req.clone())) {
                Response::Query(q) => q,
                other => panic!("{other:?}"),
            };
            let b = match par.submit(Request::Query(req)) {
                Response::Query(q) => q,
                other => panic!("{other:?}"),
            };
            // Same fixpoint, whatever the schedule: values (and hence
            // checksums) are byte-equal; iteration counts may differ.
            assert_eq!(a.values, b.values, "{algo:?}");
            assert_eq!(a.checksum, b.checksum, "{algo:?}");
        }
        let stats = match par.submit(Request::Stats) {
            Response::Stats(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(stats.workers, 2);
        par.shutdown();
        seq.shutdown();
    }

    #[test]
    fn derived_executor_count_divides_the_thread_budget() {
        let cfg = ServerConfig {
            workers: 8,
            kernel_threads: 4,
            ..ServerConfig::default()
        };
        assert_eq!(cfg.executor_count(), 2);
        // The budget never derives to zero executors.
        let cfg = ServerConfig {
            workers: 1,
            kernel_threads: 8,
            ..ServerConfig::default()
        };
        assert_eq!(cfg.executor_count(), 1);
    }

    #[test]
    fn new_workloads_run_and_cache() {
        let core = small_core(ServerConfig::default());
        for (algo, source, limit) in [
            (Algo::Bc, Some(3), None),
            (Algo::Khop, Some(3), Some(2)),
            (Algo::Paths, Some(3), Some(90)),
            (Algo::Lp, None, Some(4)),
            (Algo::Tc, None, None),
        ] {
            let mut req = QueryRequest::new("rmat8", algo, source);
            req.limit = limit;
            req.include_values = true;
            let first = match core.submit(Request::Query(req.clone())) {
                Response::Query(q) => q,
                other => panic!("{algo:?}: {other:?}"),
            };
            assert!(!first.cached, "{algo:?}");
            let second = match core.submit(Request::Query(req)) {
                Response::Query(q) => q,
                other => panic!("{algo:?}: {other:?}"),
            };
            assert!(second.cached, "{algo:?}");
            assert_eq!(first.checksum, second.checksum, "{algo:?}");
            assert_eq!(first.values, second.values, "{algo:?}");
        }
        let stats = match core.submit(Request::Stats) {
            Response::Stats(s) => s,
            other => panic!("{other:?}"),
        };
        for (label, count) in &stats.algo_completed {
            let expected = if ["bc", "khop", "paths", "lp", "tc"].contains(&label.as_str()) {
                2
            } else {
                0
            };
            assert_eq!(*count, expected, "{label}");
        }
        core.shutdown();
    }

    #[test]
    fn limit_arity_and_aliasing_are_enforced() {
        let core = small_core(ServerConfig::default());
        // khop without a limit: typed rejection naming the parameter.
        match core.submit(Request::Query(QueryRequest::new(
            "rmat8",
            Algo::Khop,
            Some(0),
        ))) {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorCode::BadRequest);
                assert!(e.message.contains("(k)"), "{}", e.message);
            }
            other => panic!("{other:?}"),
        }
        // bfs with a limit: typed rejection.
        let req = QueryRequest::new("rmat8", Algo::Bfs, Some(0)).with_limit(2);
        match core.submit(Request::Query(req)) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadRequest),
            other => panic!("{other:?}"),
        }
        // Different k never aliases in the cache: k=1 then k=8 from the
        // same source must answer differently (rmat8 has >1 level).
        let ask = |k: u32| {
            let mut req = QueryRequest::new("rmat8", Algo::Khop, Some(3)).with_limit(k);
            req.include_values = true;
            match core.submit(Request::Query(req)) {
                Response::Query(q) => q,
                other => panic!("{other:?}"),
            }
        };
        let one = ask(1);
        let eight = ask(8);
        assert!(!eight.cached, "k=8 must not hit k=1's entry");
        assert_ne!(one.checksum, eight.checksum);
        core.shutdown();
    }

    #[test]
    fn paths_response_carries_distances_then_predecessors() {
        let core = small_core(ServerConfig::default());
        let mut req = QueryRequest::new("rmat8", Algo::Paths, Some(3)).with_limit(120);
        req.include_values = true;
        let served = match core.submit(Request::Query(req)) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        let values = served.values.unwrap();
        let n = values.len() / 2;
        assert_eq!(values.len(), 2 * n);
        assert_eq!(served.nodes as usize, 2 * n);
        let (dist, pred) = values.split_at(n);
        assert_eq!(dist[3], 0);
        assert_eq!(pred[3], 3, "the source is its own parent");
        for v in 0..n {
            if dist[v] == u32::MAX {
                assert_eq!(pred[v], u32::MAX, "unreached node {v} has a parent");
            } else {
                assert!(dist[v] <= 120, "distance above the radius survived");
                assert!((pred[v] as usize) < n);
            }
        }
        core.shutdown();
    }

    #[test]
    fn khop_batch_path_masks_each_job_and_matches_solo() {
        let core = small_core(ServerConfig::default());
        // Solo (pipeline-path) references, cache off so the batch path
        // below computes fresh.
        let solo = |k: u32, source: u32| {
            let mut req = QueryRequest::new("rmat8", Algo::Khop, Some(source)).with_limit(k);
            req.cache = false;
            req.include_values = true;
            match core.submit(Request::Query(req)) {
                Response::Query(q) => q,
                other => panic!("{other:?}"),
            }
        };
        let expect: Vec<_> = [(2, 3), (5, 3), (2, 7)]
            .into_iter()
            .map(|(k, s)| solo(k, s))
            .collect();
        // Drive execute_batch directly with a mixed-k fused batch: two
        // jobs share source 3 (one lane) with different k.
        let jobs: Vec<Job> = [(2u32, 3u32), (5, 3), (2, 7)]
            .into_iter()
            .map(|(k, s)| {
                let mut request = QueryRequest::new("rmat8", Algo::Khop, Some(s)).with_limit(k);
                request.cache = false;
                request.include_values = true;
                Job {
                    request,
                    token: CancelToken::never(),
                    has_deadline: false,
                    received: Instant::now(),
                    slot: ReplySlot::new(),
                    pinned: None,
                }
            })
            .collect();
        let slots: Vec<Arc<ReplySlot>> = jobs.iter().map(|j| Arc::clone(&j.slot)).collect();
        let mut arena = BatchArena::with_retain_cap(4);
        core.execute_batch(jobs, &mut arena);
        for (slot, reference) in slots.iter().zip(expect) {
            let got = match slot.wait() {
                Response::Query(q) => q,
                other => panic!("{other:?}"),
            };
            assert_eq!(got.values, reference.values);
            assert_eq!(got.checksum, reference.checksum);
            assert_eq!(got.iterations, reference.iterations);
        }
        core.shutdown();
    }

    fn mutable_core(config: ServerConfig) -> Arc<ServerCore> {
        let store = GraphStore::disabled();
        let spec = PrepareSpec::generated("rmat:8:8", 42).with_uniform_weights(1, 64, 7);
        let prepared = store.prepare(&spec).unwrap();
        let mutable = MutableGraph::open(store, prepared).unwrap();
        let core = ServerCore::new(config);
        core.add_mutable_graph("rmat8", Arc::new(mutable));
        core
    }

    #[test]
    fn static_graphs_reject_mutation_with_a_typed_error() {
        let core = small_core(ServerConfig::default());
        let resp = core.submit(Request::Mutate {
            graph: "rmat8".into(),
            ops: vec![MutationOp::AddEdge { u: 0, v: 1, w: 1 }],
        });
        match resp {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::ImmutableGraph),
            other => panic!("{other:?}"),
        }
        let resp = core.submit(Request::Compact {
            graph: "rmat8".into(),
        });
        match resp {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::ImmutableGraph),
            other => panic!("{other:?}"),
        }
        let resp = core.submit(Request::Mutate {
            graph: "nope".into(),
            ops: vec![MutationOp::AddEdge { u: 0, v: 1, w: 1 }],
        });
        match resp {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownGraph),
            other => panic!("{other:?}"),
        }
        core.shutdown();
    }

    #[test]
    fn mutations_bump_the_epoch_so_cached_answers_never_leak() {
        let core = mutable_core(ServerConfig::default());
        let first = match core.submit(bfs_query(0)) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert!(!first.cached);
        let warm = match core.submit(bfs_query(0)) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert!(warm.cached, "same epoch: the cache entry must hit");
        // Grow the graph: node 256 hangs off node 0.
        let resp = core.submit(Request::Mutate {
            graph: "rmat8".into(),
            ops: vec![
                MutationOp::AddNode { nodes: 257 },
                MutationOp::AddEdge { u: 0, v: 256, w: 1 },
            ],
        });
        let mutated = match resp {
            Response::Mutate(m) => m,
            other => panic!("{other:?}"),
        };
        assert_eq!(mutated.applied, 2);
        assert_eq!(mutated.skipped, 0);
        assert!(mutated.epoch > 0);
        // The epoch key changed: the stale cached answer (without node
        // 256) is unreachable, and the fresh run sees the new edge.
        let mut req = QueryRequest::new("rmat8", Algo::Bfs, Some(0));
        req.include_values = true;
        let after = match core.submit(Request::Query(req)) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        assert!(!after.cached, "stale epoch's entry must not hit");
        let values = after.values.unwrap();
        assert_eq!(values.len(), 257);
        assert_eq!(values[256], 1, "the added edge reaches the new node");
        assert_ne!(after.checksum, first.checksum);
        core.shutdown();
    }

    #[test]
    fn dirty_snapshots_serve_every_verb_and_match_the_merged_graph() {
        let core = mutable_core(ServerConfig::default());
        let mutable = core.mutable_graph("rmat8").unwrap();
        match core.submit(Request::Mutate {
            graph: "rmat8".into(),
            ops: vec![
                MutationOp::AddNode { nodes: 257 },
                MutationOp::AddEdge { u: 0, v: 256, w: 2 },
                MutationOp::AddEdge { u: 256, v: 1, w: 5 },
                MutationOp::RemoveEdge { u: 0, v: 0 },
            ],
        }) {
            Response::Mutate(m) => assert_eq!(m.applied + m.skipped, 4),
            other => panic!("{other:?}"),
        }
        // Reference: the snapshot's merged graph (itself differentially
        // tested against a from-scratch prepare in tigr-core) run
        // through the standard engine.
        let merged = mutable.snapshot().merged().unwrap();
        let engine = Engine::default()
            .with_backend(BackendKind::Sequential)
            .with_device_memory(u64::MAX);
        for (algo, prog, source) in [
            (Algo::Bfs, MonotoneProgram::BFS, Some(3)),
            (Algo::Sssp, MonotoneProgram::SSSP, Some(3)),
            (Algo::Sswp, MonotoneProgram::SSWP, Some(3)),
            (Algo::Cc, MonotoneProgram::CC, None),
        ] {
            let mut req = QueryRequest::new("rmat8", algo, source);
            req.include_values = true;
            let served = match core.submit(Request::Query(req)) {
                Response::Query(q) => q,
                other => panic!("{algo:?}: {other:?}"),
            };
            let direct = engine
                .run_prepared(&merged, prog, source.map(NodeId::new))
                .unwrap();
            assert_eq!(
                served.values.as_deref(),
                Some(direct.values.as_slice()),
                "{algo:?} view path diverged from the merged graph"
            );
        }
        // Non-monotone verbs take the merged-materialization path.
        let mut req = QueryRequest::new("rmat8", Algo::Pr, None);
        req.include_values = true;
        let served = match core.submit(Request::Query(req)) {
            Response::Query(q) => q,
            other => panic!("{other:?}"),
        };
        let values = served.values.unwrap();
        assert_eq!(values.len(), 257);
        let sum: f64 = values
            .iter()
            .map(|&bits| f64::from(f32::from_bits(bits)))
            .sum();
        assert!((sum - 1.0).abs() < 1e-3, "ranks sum to {sum}");
        core.shutdown();
    }

    #[test]
    fn compaction_preserves_answers_and_drains_the_delta() {
        let core = mutable_core(ServerConfig::default());
        match core.submit(Request::Mutate {
            graph: "rmat8".into(),
            ops: vec![
                MutationOp::AddNode { nodes: 257 },
                MutationOp::AddEdge { u: 0, v: 256, w: 3 },
                MutationOp::AddEdge { u: 256, v: 7, w: 2 },
            ],
        }) {
            Response::Mutate(m) => assert_eq!(m.applied, 3),
            other => panic!("{other:?}"),
        }
        let ask = |core: &Arc<ServerCore>, algo: Algo, source: Option<u32>| {
            let mut req = QueryRequest::new("rmat8", algo, source);
            req.cache = false;
            match core.submit(Request::Query(req)) {
                Response::Query(q) => q.checksum,
                other => panic!("{other:?}"),
            }
        };
        let before_bfs = ask(&core, Algo::Bfs, Some(0));
        let before_sssp = ask(&core, Algo::Sssp, Some(0));
        let compacted = match core.submit(Request::Compact {
            graph: "rmat8".into(),
        }) {
            Response::Compact(c) => c,
            other => panic!("{other:?}"),
        };
        assert!(compacted.delta_edges_before > 0);
        assert_eq!(compacted.delta_edges_after, 0);
        assert_eq!(ask(&core, Algo::Bfs, Some(0)), before_bfs);
        assert_eq!(ask(&core, Algo::Sssp, Some(0)), before_sssp);
        let stats = match core.submit(Request::Stats) {
            Response::Stats(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(stats.mutate_batches, 1);
        assert_eq!(stats.mutations_applied, 3);
        assert_eq!(stats.mutation.compactions, 1);
        assert_eq!(stats.mutation.delta_edges, 0);
        assert_eq!(stats.mutation.wal_len, 0, "compaction resets the WAL");
        assert!(stats.mutation.overlay_generation >= 2);
        core.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_typed() {
        let core = small_core(ServerConfig::default());
        core.shutdown();
        core.shutdown();
        match core.submit(bfs_query(0)) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::Shutdown),
            other => panic!("{other:?}"),
        }
    }
}
