//! The wire protocol: line-delimited JSON requests and responses.
//!
//! Grammar (one JSON object per line, newline-terminated; the `algo`
//! alternatives and `code` list are asserted against
//! [`Algo::ALL`]/[`ErrorCode`] by `grammar_doc_matches_algo_table`, so a
//! new verb registered in the shared [`Algo`] table must update this
//! comment — and nothing else — to ship):
//!
//! ```text
//! request  = query | mutate | compact | stats | ping
//! query    = {"op":"query", "graph":<name>,
//!             "algo":"bfs"|"sssp"|"sswp"|"cc"|"pr"|"bc"|"khop"|"paths"|"lp"|"tc",
//!             "source":<u32>?, "limit":<u32>?, "deadline_ms":<u64>?,
//!             "cache":<bool>?, "values":<bool>?}
//! mutate   = {"op":"mutate", "graph":<name>, "ops":[mut-op, ...]}
//! mut-op   = {"kind":"add-edge", "u":<u32>, "v":<u32>, "w":<u32>?}
//!          | {"kind":"remove-edge", "u":<u32>, "v":<u32>}
//!          | {"kind":"add-node", "nodes":<u32>}
//!          | {"kind":"set-weight", "u":<u32>, "v":<u32>, "w":<u32>}
//! compact  = {"op":"compact", "graph":<name>}
//! stats    = {"op":"stats"}
//! ping     = {"op":"ping"}
//!
//! response   = ok-query | ok-mutate | ok-compact | ok-stats | pong | error
//! ok-query   = {"ok":true, "algo":..., "graph":..., "source":<u32>|null,
//!             "nodes":<u64>, "iterations":<u64>, "checksum":"<16 hex>",
//!             "cached":<bool>, "wall_us":<u64>, "values":[<u32>...]?}
//! ok-mutate  = {"ok":true, "mutated":true, "graph":..., "applied":<u64>,
//!             "skipped":<u64>, "wal_len":<u64>, "epoch":<u64>}
//! ok-compact = {"ok":true, "compacted":true, "graph":..., "wall_ms":<u64>,
//!             "delta_edges_before":<u64>, "delta_edges_after":<u64>,
//!             "epoch":<u64>}
//! error    = {"ok":false, "error":{"code":<code>, "message":<text>}}
//! code     = "queue-full" | "deadline-exceeded" | "bad-request"
//!          | "unknown-algo" | "unknown-graph" | "invalid-plan"
//!          | "immutable-graph" | "internal" | "shutdown"
//! ```
//!
//! `source` is required iff the algo takes one ([`Algo::needs_source`]);
//! `limit` is required iff the algo takes one ([`Algo::needs_limit`] —
//! `k` for `khop`, `radius` for `paths`, `rounds` for `lp`). An
//! `unknown-algo` error's message lists every known verb.
//!
//! A `mutate` batch is atomic: every op validates against the current
//! snapshot or none apply. `add-edge` defaults `w` to 1 (the only legal
//! weight on unweighted graphs); `add-node` carries the *target* node
//! count, not an increment; `set-weight` is weighted-graphs-only.
//! Graphs registered read-only (or physically transformed ones, whose
//! node ids were renumbered at prepare time) answer `immutable-graph`.
//!
//! All node values travel as `u32`; PageRank ranks and betweenness
//! scores are sent as the IEEE 754 bit patterns of their `f32` values
//! (`f32::to_bits`), so results compare byte-for-byte with a local run —
//! no float formatting drift. Bounded-path (`paths`) responses carry
//! `2n` values: distances followed by predecessors.

use std::fmt;

use crate::json::{obj, parse, Json};
use crate::stats::StatsSnapshot;

/// The shared algorithm table: the CLI, the server, and this protocol
/// all dispatch through [`tigr_engine::Algo`], so a verb is registered
/// in exactly one place.
pub use tigr_engine::Algo;

/// The shared mutation-op table: the wire protocol ships the same ops
/// the WAL persists, so a batch decodes straight into an applyable log.
pub use tigr_core::MutationOp;

/// A single algorithm query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryRequest {
    /// Registered graph name.
    pub graph: String,
    /// Analytic to run.
    pub algo: Algo,
    /// Source node (required iff [`Algo::needs_source`]).
    pub source: Option<u32>,
    /// Algo-specific bound (required iff [`Algo::needs_limit`]): `k`
    /// for k-hop, `radius` for bounded paths, `rounds` for label
    /// propagation.
    pub limit: Option<u32>,
    /// Per-request deadline; `None` uses the server default.
    pub deadline_ms: Option<u64>,
    /// Consult/populate the result cache (default `true`).
    pub cache: bool,
    /// Include the full value array in the response (default `false`;
    /// the checksum is always present).
    pub include_values: bool,
}

impl QueryRequest {
    /// A cacheable query with defaults: cache on, values omitted.
    pub fn new(graph: impl Into<String>, algo: Algo, source: Option<u32>) -> Self {
        QueryRequest {
            graph: graph.into(),
            algo,
            source,
            limit: None,
            deadline_ms: None,
            cache: true,
            include_values: false,
        }
    }

    /// Sets the algo-specific limit (builder style).
    pub fn with_limit(mut self, limit: u32) -> Self {
        self.limit = Some(limit);
        self
    }
}

/// A decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Run an analytic.
    Query(QueryRequest),
    /// Apply a batch of mutations to a mutable graph (atomic: all ops
    /// validate against the current snapshot or none apply).
    Mutate {
        /// Registered graph name.
        graph: String,
        /// Mutation batch, applied in order.
        ops: Vec<MutationOp>,
    },
    /// Force a synchronous compaction of a mutable graph's delta
    /// overlay into a fresh base artifact.
    Compact {
        /// Registered graph name.
        graph: String,
    },
    /// Return a [`StatsSnapshot`].
    Stats,
    /// Liveness check.
    Ping,
}

/// Typed failure codes — every rejection a client can observe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The bounded admission queue is full (backpressure).
    QueueFull,
    /// The deadline expired before the run finished; any partial work
    /// was discarded and never cached.
    DeadlineExceeded,
    /// The request line failed to parse or validate.
    BadRequest,
    /// The requested algo verb is not in the [`Algo`] table; the error
    /// message lists every known verb.
    UnknownAlgo,
    /// No graph is registered under the requested name.
    UnknownGraph,
    /// The requested execution plan is invalid for this graph/program.
    InvalidPlan,
    /// The graph is registered read-only, or was physically transformed
    /// at prepare time (renumbered node ids), so mutations are refused.
    ImmutableGraph,
    /// The server failed internally (e.g. out of device memory).
    Internal,
    /// The server is shutting down; the query was not run.
    Shutdown,
}

impl ErrorCode {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::QueueFull => "queue-full",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownAlgo => "unknown-algo",
            ErrorCode::UnknownGraph => "unknown-graph",
            ErrorCode::InvalidPlan => "invalid-plan",
            ErrorCode::ImmutableGraph => "immutable-graph",
            ErrorCode::Internal => "internal",
            ErrorCode::Shutdown => "shutdown",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "queue-full" => Some(ErrorCode::QueueFull),
            "deadline-exceeded" => Some(ErrorCode::DeadlineExceeded),
            "bad-request" => Some(ErrorCode::BadRequest),
            "unknown-algo" => Some(ErrorCode::UnknownAlgo),
            "unknown-graph" => Some(ErrorCode::UnknownGraph),
            "invalid-plan" => Some(ErrorCode::InvalidPlan),
            "immutable-graph" => Some(ErrorCode::ImmutableGraph),
            "internal" => Some(ErrorCode::Internal),
            "shutdown" => Some(ErrorCode::Shutdown),
            _ => None,
        }
    }
}

/// A typed protocol error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolError {
    /// Machine-readable failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ProtocolError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.label(), self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// A successful query result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResult {
    /// Analytic that ran.
    pub algo: Algo,
    /// Graph it ran over.
    pub graph: String,
    /// Source node, when the analytic takes one.
    pub source: Option<u32>,
    /// Number of per-node values (original node count).
    pub nodes: u64,
    /// BSP iterations the run took (as reported by the producing run;
    /// cache hits replay the original count).
    pub iterations: u64,
    /// FNV-1a over the little-endian bytes of the value array.
    pub checksum: u64,
    /// Whether this response was served from the result cache.
    pub cached: bool,
    /// Server-side wall time for this request, microseconds.
    pub wall_us: u64,
    /// Full value array, when the request set `"values": true`.
    pub values: Option<Vec<u32>>,
}

/// A successful mutation batch: what the WAL durably holds afterwards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutateResult {
    /// Graph the batch applied to.
    pub graph: String,
    /// Ops that changed the visible graph.
    pub applied: u64,
    /// Ops skipped as no-ops (duplicate adds, absent removes); skips
    /// are still logged so replay stays faithful to the batch.
    pub skipped: u64,
    /// WAL records on disk after the batch (fsync'd before this reply).
    pub wal_len: u64,
    /// Overlay generation after the batch; queries pinned to earlier
    /// epochs keep their snapshot.
    pub epoch: u64,
}

/// A finished compaction: the delta overlay folded into a fresh base.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactResult {
    /// Graph that compacted.
    pub graph: String,
    /// Wall time of the compaction, milliseconds.
    pub wall_ms: u64,
    /// Delta edges in the overlay when the compaction pinned its input.
    pub delta_edges_before: u64,
    /// Delta edges left after the swap (mutations racing the
    /// compaction survive as the new overlay).
    pub delta_edges_after: u64,
    /// Overlay generation after the swap.
    pub epoch: u64,
}

/// A decoded server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Query succeeded.
    Query(QueryResult),
    /// Mutation batch applied (and durably logged).
    Mutate(MutateResult),
    /// Compaction finished.
    Compact(CompactResult),
    /// Stats snapshot (boxed: the snapshot is by far the widest
    /// payload, and every non-stats reply moves through channels).
    Stats(Box<StatsSnapshot>),
    /// Ping reply.
    Pong,
    /// Typed failure.
    Error(ProtocolError),
}

impl Response {
    /// Shorthand for an error response.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Self {
        Response::Error(ProtocolError::new(code, message))
    }
}

/// FNV-1a over the little-endian byte serialization of `values` — the
/// wire checksum clients compare against local runs.
pub fn checksum(values: &[u32]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn encode_op(op: &MutationOp) -> Json {
    match *op {
        MutationOp::AddEdge { u, v, w } => obj([
            ("kind", "add-edge".into()),
            ("u", u.into()),
            ("v", v.into()),
            ("w", w.into()),
        ]),
        MutationOp::RemoveEdge { u, v } => obj([
            ("kind", "remove-edge".into()),
            ("u", u.into()),
            ("v", v.into()),
        ]),
        MutationOp::AddNode { nodes } => {
            obj([("kind", "add-node".into()), ("nodes", nodes.into())])
        }
        MutationOp::SetWeight { u, v, w } => obj([
            ("kind", "set-weight".into()),
            ("u", u.into()),
            ("v", v.into()),
            ("w", w.into()),
        ]),
    }
}

fn decode_op(v: &Json) -> Result<MutationOp, ProtocolError> {
    let bad = |m: String| ProtocolError::new(ErrorCode::BadRequest, m);
    let field = |name: &str| -> Result<u32, ProtocolError> {
        v.get(name)
            .and_then(Json::as_u64)
            .filter(|&n| n <= u64::from(u32::MAX))
            .ok_or_else(|| bad(format!("mutation op needs u32 \"{name}\"")))
            .map(|n| n as u32)
    };
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("mutation op needs \"kind\"".into()))?;
    match kind {
        "add-edge" => Ok(MutationOp::AddEdge {
            u: field("u")?,
            v: field("v")?,
            w: match v.get("w") {
                None | Some(Json::Null) => 1,
                Some(_) => field("w")?,
            },
        }),
        "remove-edge" => Ok(MutationOp::RemoveEdge {
            u: field("u")?,
            v: field("v")?,
        }),
        "add-node" => Ok(MutationOp::AddNode {
            nodes: field("nodes")?,
        }),
        "set-weight" => Ok(MutationOp::SetWeight {
            u: field("u")?,
            v: field("v")?,
            w: field("w")?,
        }),
        other => Err(bad(format!(
            "unknown mutation kind {other:?}; known: add-edge, remove-edge, add-node, set-weight"
        ))),
    }
}

/// Encodes a request as one JSON line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    match req {
        Request::Ping => obj([("op", "ping".into())]).to_string(),
        Request::Stats => obj([("op", "stats".into())]).to_string(),
        Request::Mutate { graph, ops } => obj([
            ("op", "mutate".into()),
            ("graph", graph.as_str().into()),
            ("ops", Json::Arr(ops.iter().map(encode_op).collect())),
        ])
        .to_string(),
        Request::Compact { graph } => {
            obj([("op", "compact".into()), ("graph", graph.as_str().into())]).to_string()
        }
        Request::Query(q) => {
            let mut pairs = vec![
                ("op".to_owned(), Json::from("query")),
                ("graph".to_owned(), Json::from(q.graph.as_str())),
                ("algo".to_owned(), Json::from(q.algo.label())),
            ];
            if let Some(s) = q.source {
                pairs.push(("source".to_owned(), s.into()));
            }
            if let Some(l) = q.limit {
                pairs.push(("limit".to_owned(), l.into()));
            }
            if let Some(d) = q.deadline_ms {
                pairs.push(("deadline_ms".to_owned(), d.into()));
            }
            if !q.cache {
                pairs.push(("cache".to_owned(), false.into()));
            }
            if q.include_values {
                pairs.push(("values".to_owned(), true.into()));
            }
            Json::Obj(pairs.into_iter().collect()).to_string()
        }
    }
}

/// Decodes one request line. Malformed input comes back as a
/// [`ErrorCode::BadRequest`] `ProtocolError` the server echoes to the
/// client verbatim.
pub fn decode_request(line: &str) -> Result<Request, ProtocolError> {
    let bad = |m: &str| ProtocolError::new(ErrorCode::BadRequest, m);
    let v = parse(line.trim()).map_err(|e| bad(&format!("malformed JSON: {e}")))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing \"op\""))?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "mutate" => {
            let graph = v
                .get("graph")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("mutate requires \"graph\""))?
                .to_owned();
            let items = v
                .get("ops")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("mutate requires an \"ops\" array"))?;
            if items.is_empty() {
                return Err(bad("mutate requires at least one op"));
            }
            let ops = items.iter().map(decode_op).collect::<Result<_, _>>()?;
            Ok(Request::Mutate { graph, ops })
        }
        "compact" => {
            let graph = v
                .get("graph")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("compact requires \"graph\""))?
                .to_owned();
            Ok(Request::Compact { graph })
        }
        "query" => {
            let graph = v
                .get("graph")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("query requires \"graph\""))?
                .to_owned();
            let algo_label = v
                .get("algo")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("query requires \"algo\""))?;
            let algo = Algo::parse(algo_label).ok_or_else(|| {
                ProtocolError::new(
                    ErrorCode::UnknownAlgo,
                    format!(
                        "unknown algo {algo_label:?}; known: {}",
                        Algo::known_labels()
                    ),
                )
            })?;
            let source = match v.get("source") {
                None | Some(Json::Null) => None,
                Some(s) => Some(
                    s.as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .ok_or_else(|| bad("\"source\" must be a u32"))? as u32,
                ),
            };
            if algo.needs_source() && source.is_none() {
                return Err(bad(&format!("{} requires \"source\"", algo.label())));
            }
            if !algo.needs_source() && source.is_some() {
                return Err(bad(&format!("{} takes no \"source\"", algo.label())));
            }
            let limit = match v.get("limit") {
                None | Some(Json::Null) => None,
                Some(l) => Some(
                    l.as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .ok_or_else(|| bad("\"limit\" must be a u32"))? as u32,
                ),
            };
            if algo.needs_limit() && limit.is_none() {
                return Err(bad(&format!(
                    "{} requires \"limit\" ({})",
                    algo.label(),
                    algo.limit_name().unwrap_or("limit"),
                )));
            }
            if !algo.needs_limit() && limit.is_some() {
                return Err(bad(&format!("{} takes no \"limit\"", algo.label())));
            }
            let deadline_ms = match v.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(d) => Some(
                    d.as_u64()
                        .ok_or_else(|| bad("\"deadline_ms\" must be a u64"))?,
                ),
            };
            let cache = match v.get("cache") {
                None => true,
                Some(c) => c.as_bool().ok_or_else(|| bad("\"cache\" must be a bool"))?,
            };
            let include_values = match v.get("values") {
                None => false,
                Some(c) => c
                    .as_bool()
                    .ok_or_else(|| bad("\"values\" must be a bool"))?,
            };
            Ok(Request::Query(QueryRequest {
                graph,
                algo,
                source,
                limit,
                deadline_ms,
                cache,
                include_values,
            }))
        }
        other => Err(bad(&format!("unknown op {other:?}"))),
    }
}

/// Encodes a response as one JSON line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    match resp {
        Response::Pong => obj([("ok", true.into()), ("pong", true.into())]).to_string(),
        Response::Stats(s) => obj([("ok", true.into()), ("stats", s.to_json())]).to_string(),
        Response::Mutate(m) => obj([
            ("ok", true.into()),
            ("mutated", true.into()),
            ("graph", m.graph.as_str().into()),
            ("applied", m.applied.into()),
            ("skipped", m.skipped.into()),
            ("wal_len", m.wal_len.into()),
            ("epoch", m.epoch.into()),
        ])
        .to_string(),
        Response::Compact(c) => obj([
            ("ok", true.into()),
            ("compacted", true.into()),
            ("graph", c.graph.as_str().into()),
            ("wall_ms", c.wall_ms.into()),
            ("delta_edges_before", c.delta_edges_before.into()),
            ("delta_edges_after", c.delta_edges_after.into()),
            ("epoch", c.epoch.into()),
        ])
        .to_string(),
        Response::Error(e) => obj([
            ("ok", false.into()),
            (
                "error",
                obj([
                    ("code", e.code.label().into()),
                    ("message", e.message.as_str().into()),
                ]),
            ),
        ])
        .to_string(),
        Response::Query(q) => {
            let mut pairs = vec![
                ("ok".to_owned(), Json::from(true)),
                ("algo".to_owned(), Json::from(q.algo.label())),
                ("graph".to_owned(), Json::from(q.graph.as_str())),
                ("source".to_owned(), q.source.map_or(Json::Null, Json::from)),
                ("nodes".to_owned(), Json::from(q.nodes)),
                ("iterations".to_owned(), Json::from(q.iterations)),
                (
                    "checksum".to_owned(),
                    Json::from(format!("{:016x}", q.checksum)),
                ),
                ("cached".to_owned(), Json::from(q.cached)),
                ("wall_us".to_owned(), Json::from(q.wall_us)),
            ];
            if let Some(values) = &q.values {
                pairs.push((
                    "values".to_owned(),
                    Json::Arr(values.iter().map(|&v| Json::from(v)).collect()),
                ));
            }
            Json::Obj(pairs.into_iter().collect()).to_string()
        }
    }
}

/// Decodes one response line (the client side of the wire).
pub fn decode_response(line: &str) -> Result<Response, ProtocolError> {
    let bad = |m: &str| ProtocolError::new(ErrorCode::BadRequest, m);
    let v = parse(line.trim()).map_err(|e| bad(&format!("malformed response: {e}")))?;
    let ok = v
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or_else(|| bad("missing \"ok\""))?;
    if !ok {
        let e = v.get("error").ok_or_else(|| bad("missing \"error\""))?;
        let code = e
            .get("code")
            .and_then(Json::as_str)
            .and_then(ErrorCode::parse)
            .ok_or_else(|| bad("bad error code"))?;
        let message = e
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_owned();
        return Ok(Response::Error(ProtocolError { code, message }));
    }
    if v.get("pong").is_some() {
        return Ok(Response::Pong);
    }
    if v.get("mutated").is_some() {
        let graph = v
            .get("graph")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"graph\""))?
            .to_owned();
        let num = |name: &str| v.get(name).and_then(Json::as_u64).unwrap_or(0);
        return Ok(Response::Mutate(MutateResult {
            graph,
            applied: num("applied"),
            skipped: num("skipped"),
            wal_len: num("wal_len"),
            epoch: num("epoch"),
        }));
    }
    if v.get("compacted").is_some() {
        let graph = v
            .get("graph")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"graph\""))?
            .to_owned();
        let num = |name: &str| v.get(name).and_then(Json::as_u64).unwrap_or(0);
        return Ok(Response::Compact(CompactResult {
            graph,
            wall_ms: num("wall_ms"),
            delta_edges_before: num("delta_edges_before"),
            delta_edges_after: num("delta_edges_after"),
            epoch: num("epoch"),
        }));
    }
    if let Some(s) = v.get("stats") {
        return Ok(Response::Stats(Box::new(
            StatsSnapshot::from_json(s).ok_or_else(|| bad("bad stats payload"))?,
        )));
    }
    let algo = v
        .get("algo")
        .and_then(Json::as_str)
        .and_then(Algo::parse)
        .ok_or_else(|| bad("missing \"algo\""))?;
    let graph = v
        .get("graph")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing \"graph\""))?
        .to_owned();
    let source = match v.get("source") {
        None | Some(Json::Null) => None,
        Some(s) => Some(s.as_u64().ok_or_else(|| bad("bad \"source\""))? as u32),
    };
    let checksum_hex = v
        .get("checksum")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing \"checksum\""))?;
    let checksum = u64::from_str_radix(checksum_hex, 16).map_err(|_| bad("bad \"checksum\""))?;
    let values = match v.get("values") {
        None => None,
        Some(arr) => {
            let items = arr.as_arr().ok_or_else(|| bad("bad \"values\""))?;
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(
                    item.as_u64()
                        .filter(|&n| n <= u64::from(u32::MAX))
                        .ok_or_else(|| bad("bad value entry"))? as u32,
                );
            }
            Some(out)
        }
    };
    Ok(Response::Query(QueryResult {
        algo,
        graph,
        source,
        nodes: v.get("nodes").and_then(Json::as_u64).unwrap_or(0),
        iterations: v.get("iterations").and_then(Json::as_u64).unwrap_or(0),
        checksum,
        cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
        wall_us: v.get("wall_us").and_then(Json::as_u64).unwrap_or(0),
        values,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let req = Request::Query(QueryRequest {
            graph: "road".into(),
            algo: Algo::Sssp,
            source: Some(17),
            limit: None,
            deadline_ms: Some(250),
            cache: false,
            include_values: true,
        });
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);

        // A limited verb round-trips its limit.
        let req = Request::Query(QueryRequest::new("road", Algo::Khop, Some(4)).with_limit(3));
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);

        let resp = Response::Query(QueryResult {
            algo: Algo::Sssp,
            graph: "road".into(),
            source: Some(17),
            nodes: 3,
            iterations: 4,
            checksum: checksum(&[0, 1, u32::MAX]),
            cached: false,
            wall_us: 1234,
            values: Some(vec![0, 1, u32::MAX]),
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn stats_ping_and_error_round_trip() {
        for req in [Request::Stats, Request::Ping] {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
        let resp = Response::error(ErrorCode::QueueFull, "admission queue at capacity (64)");
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        assert_eq!(
            decode_response(&encode_response(&Response::Pong)).unwrap(),
            Response::Pong
        );
    }

    #[test]
    fn source_rules_enforced() {
        // Missing source on a sourced analytic.
        let err = decode_request(r#"{"op":"query","graph":"g","algo":"bfs"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        // Source on a global analytic.
        let err =
            decode_request(r#"{"op":"query","graph":"g","algo":"cc","source":3}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        // CC and PR without source are fine.
        assert!(decode_request(r#"{"op":"query","graph":"g","algo":"pr"}"#).is_ok());
    }

    #[test]
    fn limit_rules_enforced() {
        // Missing limit on a limited verb names the parameter.
        let err =
            decode_request(r#"{"op":"query","graph":"g","algo":"khop","source":0}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("(k)"), "{}", err.message);
        // Limit on an unlimited verb.
        let err = decode_request(r#"{"op":"query","graph":"g","algo":"bfs","source":0,"limit":3}"#)
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        // Non-u32 limit.
        let err =
            decode_request(r#"{"op":"query","graph":"g","algo":"lp","limit":-2}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        // Every limited verb decodes with one.
        for line in [
            r#"{"op":"query","graph":"g","algo":"khop","source":0,"limit":2}"#,
            r#"{"op":"query","graph":"g","algo":"paths","source":0,"limit":9}"#,
            r#"{"op":"query","graph":"g","algo":"lp","limit":5}"#,
        ] {
            assert!(decode_request(line).is_ok(), "{line}");
        }
    }

    #[test]
    fn unknown_verbs_list_the_table() {
        let err = decode_request(r#"{"op":"query","graph":"g","algo":"warp"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownAlgo);
        for algo in Algo::ALL {
            assert!(
                err.message.contains(algo.label()),
                "unknown-algo message misses {:?}: {}",
                algo.label(),
                err.message
            );
        }
    }

    #[test]
    fn malformed_lines_are_bad_request() {
        for line in [
            "",
            "not json",
            "{}",
            r#"{"op":"nope"}"#,
            r#"{"op":"query","graph":"g","algo":"bfs","source":-1}"#,
            r#"{"op":"query","graph":"g","algo":"bfs","source":1.5}"#,
        ] {
            let err = decode_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    /// The grammar doc comment at the top of this file is contract, not
    /// prose: its `"algo":` alternatives must be exactly [`Algo::ALL`]
    /// (in order) and its `code` list must cover every [`ErrorCode`].
    #[test]
    fn grammar_doc_matches_algo_table() {
        let doc: Vec<&str> = include_str!("protocol.rs")
            .lines()
            .take_while(|l| l.starts_with("//!"))
            .collect();

        let algo_line = doc
            .iter()
            .find(|l| l.contains(r#""algo":"#))
            .expect("grammar doc lost its \"algo\": line");
        let advertised: Vec<&str> = algo_line
            .split(r#""algo":"#)
            .nth(1)
            .unwrap()
            .trim_end_matches(',')
            .split('|')
            .map(|v| v.trim().trim_matches('"'))
            .collect();
        let table: Vec<&str> = Algo::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(
            advertised, table,
            "protocol.rs grammar doc disagrees with the Algo table"
        );

        let code_region = doc.join("\n");
        for code in [
            ErrorCode::QueueFull,
            ErrorCode::DeadlineExceeded,
            ErrorCode::BadRequest,
            ErrorCode::UnknownAlgo,
            ErrorCode::UnknownGraph,
            ErrorCode::InvalidPlan,
            ErrorCode::ImmutableGraph,
            ErrorCode::Internal,
            ErrorCode::Shutdown,
        ] {
            assert!(
                code_region.contains(&format!("\"{}\"", code.label())),
                "grammar doc's code list misses {:?}",
                code.label()
            );
        }
    }

    #[test]
    fn mutate_and_compact_round_trip() {
        let req = Request::Mutate {
            graph: "road".into(),
            ops: vec![
                MutationOp::AddNode { nodes: 70 },
                MutationOp::AddEdge { u: 65, v: 0, w: 3 },
                MutationOp::RemoveEdge { u: 1, v: 2 },
                MutationOp::SetWeight { u: 0, v: 1, w: 9 },
            ],
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        let req = Request::Compact {
            graph: "road".into(),
        };
        assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);

        let resp = Response::Mutate(MutateResult {
            graph: "road".into(),
            applied: 3,
            skipped: 1,
            wal_len: 12,
            epoch: 5,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        let resp = Response::Compact(CompactResult {
            graph: "road".into(),
            wall_ms: 42,
            delta_edges_before: 12,
            delta_edges_after: 0,
            epoch: 6,
        });
        assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
    }

    #[test]
    fn mutate_decode_rules() {
        // add-edge without a weight defaults to 1.
        let line = r#"{"op":"mutate","graph":"g","ops":[{"kind":"add-edge","u":0,"v":1}]}"#;
        match decode_request(line).unwrap() {
            Request::Mutate { ops, .. } => {
                assert_eq!(ops, vec![MutationOp::AddEdge { u: 0, v: 1, w: 1 }]);
            }
            other => panic!("{other:?}"),
        }
        // Empty batches, missing fields, and unknown kinds are rejected.
        for line in [
            r#"{"op":"mutate","graph":"g","ops":[]}"#,
            r#"{"op":"mutate","graph":"g"}"#,
            r#"{"op":"mutate","ops":[{"kind":"add-node","nodes":3}]}"#,
            r#"{"op":"mutate","graph":"g","ops":[{"kind":"add-edge","u":0}]}"#,
            r#"{"op":"mutate","graph":"g","ops":[{"kind":"grow","u":0,"v":1}]}"#,
            r#"{"op":"mutate","graph":"g","ops":[{"kind":"set-weight","u":0,"v":1}]}"#,
            r#"{"op":"compact"}"#,
        ] {
            let err = decode_request(line).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{line}");
        }
    }

    #[test]
    fn checksum_is_order_sensitive_fnv() {
        assert_ne!(checksum(&[1, 2]), checksum(&[2, 1]));
        assert_eq!(checksum(&[]), 0xcbf2_9ce4_8422_2325);
    }
}
