//! Concurrent graph-query serving over prepared graphs.
//!
//! The paper's preprocessing argument — transform once, query many
//! times (§1, §4) — implies a serving shape: a long-lived process holds
//! the prepared (transformed + overlaid) graphs in memory and answers
//! algorithm queries from arbitrary sources without re-preparing
//! anything. This crate is that subsystem:
//!
//! * [`ServerCore`] — graph registry ([`tigr_core::PreparedGraph`]s in
//!   shared `Arc`s), a bounded admission queue with typed `queue-full`
//!   backpressure, a worker pool executing queries through
//!   per-request [`tigr_engine::ExecutionPlan`]s, a source-keyed LRU
//!   result cache, and p50/p95 serving stats.
//! * [`Server`] — TCP / Unix-socket front-ends speaking a
//!   line-delimited JSON protocol (hand-rolled in [`json`]; the
//!   workspace's `serde` is a no-op shim).
//! * [`Client`] — the same protocol from the client side, plus an
//!   in-process transport used by benchmarks.
//!
//! Graphs registered via [`ServerCore::add_mutable_graph`] additionally
//! accept online mutation: `mutate` batches append to a WAL and delta
//! overlay ([`tigr_core::MutableGraph`]), every query pins a
//! snapshot-isolated epoch at admission, and `compact` (or the
//! configured threshold) folds the overlay into a fresh base artifact
//! without dropping in-flight queries.
//!
//! Deadlines ride the [`tigr_core::CancelToken`] plumbing: tokens are
//! polled at BSP iteration boundaries, so an expired query stops at a
//! consistent monotone prefix which the server discards — clients see
//! `deadline-exceeded`, never partial values, and cancelled runs are
//! never cached.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tigr_core::{GraphStore, PrepareSpec};
//! use tigr_server::{Algo, Client, QueryRequest, ServerConfig, ServerCore};
//!
//! let store = GraphStore::disabled();
//! let prepared = store.prepare(&PrepareSpec::generated("rmat:8:8", 42))?;
//! let core = ServerCore::new(ServerConfig::default());
//! core.add_graph("demo", Arc::new(prepared));
//!
//! let mut client = Client::local(Arc::clone(&core));
//! let cold = client.query(QueryRequest::new("demo", Algo::Bfs, Some(0)))?;
//! let warm = client.query(QueryRequest::new("demo", Algo::Bfs, Some(0)))?;
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(cold.checksum, warm.checksum);
//! core.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;

mod client;

pub use cache::{CacheCounters, CacheKey, CachedResult, ResultCache};
pub use client::{Client, ClientError};
pub use protocol::{
    checksum, decode_request, decode_response, encode_request, encode_response, Algo,
    CompactResult, ErrorCode, MutateResult, MutationOp, ProtocolError, QueryRequest, QueryResult,
    Request, Response,
};
pub use queue::{Bounded, PushError};
pub use server::{Server, ServerAddr, ServerConfig, ServerCore};
pub use stats::{GraphOpenStat, MutationGauges, StatsRecorder, StatsSnapshot};
