//! Server-side observability: counters, a latency window, and the
//! snapshot the `stats` protocol verb serializes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tigr_engine::Algo;

use crate::cache::CacheCounters;
use crate::json::{obj, Json};

/// Size of the sliding latency window the percentiles are computed
/// over. Old samples age out; the window is a recency estimate, not an
/// all-time histogram.
const LATENCY_WINDOW: usize = 4096;

/// Accumulates server metrics; shared by workers and the stats verb.
pub struct StatsRecorder {
    received: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    max_batch: AtomicU64,
    formation_wait_us: AtomicU64,
    /// Completed-query counters per algo verb, indexed by the verb's
    /// position in [`Algo::ALL`].
    algo_completed: [AtomicU64; Algo::ALL.len()],
    mutate_batches: AtomicU64,
    mutations_applied: AtomicU64,
    mutations_skipped: AtomicU64,
    window: Mutex<LatencyWindow>,
}

struct LatencyWindow {
    samples_us: Vec<u64>,
    next: usize,
}

impl Default for StatsRecorder {
    fn default() -> Self {
        StatsRecorder {
            received: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            formation_wait_us: AtomicU64::new(0),
            algo_completed: std::array::from_fn(|_| AtomicU64::new(0)),
            mutate_batches: AtomicU64::new(0),
            mutations_applied: AtomicU64::new(0),
            mutations_skipped: AtomicU64::new(0),
            window: Mutex::new(LatencyWindow {
                samples_us: Vec::new(),
                next: 0,
            }),
        }
    }
}

impl StatsRecorder {
    /// A query arrived (before admission).
    pub fn record_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// A query was refused admission (queue full / shutdown).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A query failed after admission (deadline, invalid plan, ...).
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker executed one fused batch carrying `queries` queries
    /// (singleton batches count: occupancy = `batched_queries /
    /// batches` is then the true average batch width).
    pub fn record_batch(&self, queries: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(queries, Ordering::Relaxed);
        self.max_batch.fetch_max(queries, Ordering::Relaxed);
    }

    /// A batch former spent `us` microseconds between taking the queue
    /// head and shipping the batch (the admission queue's formation
    /// wait). Cumulative; divide by `batches` for the mean linger.
    pub fn record_formation_wait(&self, us: u64) {
        self.formation_wait_us.fetch_add(us, Ordering::Relaxed);
    }

    /// A query for `algo` completed successfully in `wall_us`
    /// microseconds (end-to-end: admission wait + execution).
    pub fn record_completed(&self, algo: Algo, wall_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let idx = Algo::ALL
            .iter()
            .position(|a| *a == algo)
            .expect("every Algo appears in Algo::ALL");
        self.algo_completed[idx].fetch_add(1, Ordering::Relaxed);
        let mut w = self.window.lock().unwrap();
        if w.samples_us.len() < LATENCY_WINDOW {
            w.samples_us.push(wall_us);
        } else {
            let slot = w.next;
            w.samples_us[slot] = wall_us;
        }
        w.next = (w.next + 1) % LATENCY_WINDOW;
    }

    /// A mutate batch applied `applied` ops and skipped `skipped`
    /// no-ops.
    pub fn record_mutation(&self, applied: u64, skipped: u64) {
        self.mutate_batches.fetch_add(1, Ordering::Relaxed);
        self.mutations_applied.fetch_add(applied, Ordering::Relaxed);
        self.mutations_skipped.fetch_add(skipped, Ordering::Relaxed);
    }

    /// Builds the externally visible snapshot. `queue_depth`, `workers`,
    /// the cache counters, the per-graph open records, and the mutation
    /// gauges come from the server, which owns those structures.
    pub fn snapshot(
        &self,
        queue_depth: u64,
        workers: u64,
        cache: CacheCounters,
        graphs: Vec<GraphOpenStat>,
        mutation: MutationGauges,
    ) -> StatsSnapshot {
        let (p50_us, p95_us) = {
            let w = self.window.lock().unwrap();
            percentiles(&w.samples_us)
        };
        StatsSnapshot {
            received: self.received.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            queue_depth,
            workers,
            p50_us,
            p95_us,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_entries: cache.entries,
            batches: self.batches.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            formation_wait_us: self.formation_wait_us.load(Ordering::Relaxed),
            algo_completed: Algo::ALL
                .iter()
                .zip(&self.algo_completed)
                .map(|(a, c)| (a.label().to_owned(), c.load(Ordering::Relaxed)))
                .collect(),
            graphs,
            mutate_batches: self.mutate_batches.load(Ordering::Relaxed),
            mutations_applied: self.mutations_applied.load(Ordering::Relaxed),
            mutations_skipped: self.mutations_skipped.load(Ordering::Relaxed),
            mutation,
        }
    }
}

/// Live mutation-subsystem gauges, aggregated over every mutable graph
/// in the registry at snapshot time (sums for the additive counters,
/// maxima for the generation and the last-compaction clock).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutationGauges {
    /// WAL records durably on disk across all mutable graphs.
    pub wal_len: u64,
    /// Delta-overlay entries (added + removed + reweighted edges) not
    /// yet folded into a base artifact.
    pub delta_edges: u64,
    /// Highest overlay generation (snapshot epoch) in the registry.
    pub overlay_generation: u64,
    /// Compactions completed since the server started.
    pub compactions: u64,
    /// Wall time of the most recent compaction, milliseconds.
    pub last_compaction_ms: u64,
}

impl MutationGauges {
    /// Serializes the gauge block.
    pub fn to_json(&self) -> Json {
        obj([
            ("wal_len", self.wal_len.into()),
            ("delta_edges", self.delta_edges.into()),
            ("overlay_generation", self.overlay_generation.into()),
            ("compactions", self.compactions.into()),
            ("last_compaction_ms", self.last_compaction_ms.into()),
        ])
    }

    /// Deserializes the gauge block.
    pub fn from_json(v: &Json) -> Option<Self> {
        let field = |name: &str| v.get(name).and_then(Json::as_u64);
        Some(MutationGauges {
            wal_len: field("wal_len")?,
            delta_edges: field("delta_edges")?,
            overlay_generation: field("overlay_generation")?,
            compactions: field("compactions")?,
            last_compaction_ms: field("last_compaction_ms")?,
        })
    }
}

/// How one registered graph's views were opened — the storage-layer
/// counterpart of the query counters, surfaced through the `stats` verb
/// so operators can see which graphs are served zero-copy from a mapped
/// artifact and what each cold start cost.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphOpenStat {
    /// Registry name the graph is queried under.
    pub name: String,
    /// Open mode label (`mapped` / `decoded` / `built`).
    pub open: String,
    /// Verification level the open used (`eager` / `lazy`).
    pub verify: String,
    /// Wall-clock microseconds the open (or build) took.
    pub open_us: u64,
    /// View bytes served from a mapped segment.
    pub mapped_bytes: u64,
    /// View bytes owned on the heap.
    pub heap_bytes: u64,
}

impl GraphOpenStat {
    /// Serializes one registry entry.
    pub fn to_json(&self) -> Json {
        obj([
            ("name", self.name.as_str().into()),
            ("open", self.open.as_str().into()),
            ("verify", self.verify.as_str().into()),
            ("open_us", self.open_us.into()),
            ("mapped_bytes", self.mapped_bytes.into()),
            ("heap_bytes", self.heap_bytes.into()),
        ])
    }

    /// Deserializes one registry entry.
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(GraphOpenStat {
            name: v.get("name")?.as_str()?.to_owned(),
            open: v.get("open")?.as_str()?.to_owned(),
            verify: v.get("verify")?.as_str()?.to_owned(),
            open_us: v.get("open_us")?.as_u64()?,
            mapped_bytes: v.get("mapped_bytes")?.as_u64()?,
            heap_bytes: v.get("heap_bytes")?.as_u64()?,
        })
    }
}

impl std::fmt::Debug for StatsRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsRecorder")
            .field("received", &self.received.load(Ordering::Relaxed))
            .field("completed", &self.completed.load(Ordering::Relaxed))
            .finish()
    }
}

/// `(p50, p95)` over `samples` via nearest-rank on a sorted copy;
/// `(0, 0)` when empty.
fn percentiles(samples: &[u64]) -> (u64, u64) {
    if samples.is_empty() {
        return (0, 0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |p: f64| {
        let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    };
    (rank(0.50), rank(0.95))
}

/// One point-in-time view of the server, as sent by the `stats` verb.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSnapshot {
    /// Queries received (including rejected ones).
    pub received: u64,
    /// Queries completed successfully.
    pub completed: u64,
    /// Queries refused admission.
    pub rejected: u64,
    /// Queries failed after admission.
    pub failed: u64,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
    /// Median end-to-end latency over the recent window, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency over the recent window, microseconds.
    pub p95_us: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache evictions.
    pub cache_evictions: u64,
    /// Result-cache resident entries.
    pub cache_entries: u64,
    /// Fused batches executed by the worker pool (singletons included).
    pub batches: u64,
    /// Queries served through batches (`batched_queries / batches` is
    /// the average batch occupancy).
    pub batched_queries: u64,
    /// Widest batch executed so far.
    pub max_batch: u64,
    /// Cumulative microseconds batch formers spent holding batches
    /// open waiting for late compatible arrivals.
    pub formation_wait_us: u64,
    /// Completed-query counts per algo verb, one `(label, count)` pair
    /// per entry of [`Algo::ALL`] in table order (zero entries
    /// included, so every served verb is visible).
    pub algo_completed: Vec<(String, u64)>,
    /// Per-graph open records for every registered graph, sorted by
    /// name (mode, verify level, open time, byte residency).
    pub graphs: Vec<GraphOpenStat>,
    /// Mutate batches accepted.
    pub mutate_batches: u64,
    /// Mutation ops that changed a graph.
    pub mutations_applied: u64,
    /// Mutation ops skipped as no-ops.
    pub mutations_skipped: u64,
    /// Live WAL / delta-overlay / compaction gauges, aggregated over
    /// the mutable graphs at snapshot time.
    pub mutation: MutationGauges,
}

impl StatsSnapshot {
    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Average queries per executed batch, or 0 before the first batch.
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_queries as f64 / self.batches as f64
        }
    }

    /// Serializes for the wire (numbers only — the ratio is derived
    /// client-side so the snapshot stays integral and exact).
    pub fn to_json(&self) -> Json {
        obj([
            ("received", self.received.into()),
            ("completed", self.completed.into()),
            ("rejected", self.rejected.into()),
            ("failed", self.failed.into()),
            ("queue_depth", self.queue_depth.into()),
            ("workers", self.workers.into()),
            ("p50_us", self.p50_us.into()),
            ("p95_us", self.p95_us.into()),
            ("cache_hits", self.cache_hits.into()),
            ("cache_misses", self.cache_misses.into()),
            ("cache_evictions", self.cache_evictions.into()),
            ("cache_entries", self.cache_entries.into()),
            ("batches", self.batches.into()),
            ("batched_queries", self.batched_queries.into()),
            ("max_batch", self.max_batch.into()),
            ("formation_wait_us", self.formation_wait_us.into()),
            (
                "algos",
                Json::Obj(
                    self.algo_completed
                        .iter()
                        .map(|(label, count)| (label.clone(), (*count).into()))
                        .collect(),
                ),
            ),
            (
                "graphs",
                Json::Arr(self.graphs.iter().map(GraphOpenStat::to_json).collect()),
            ),
            ("mutate_batches", self.mutate_batches.into()),
            ("mutations_applied", self.mutations_applied.into()),
            ("mutations_skipped", self.mutations_skipped.into()),
            ("mutation", self.mutation.to_json()),
        ])
    }

    /// Deserializes a snapshot object (the client side).
    pub fn from_json(v: &Json) -> Option<Self> {
        let field = |name: &str| v.get(name).and_then(Json::as_u64);
        Some(StatsSnapshot {
            received: field("received")?,
            completed: field("completed")?,
            rejected: field("rejected")?,
            failed: field("failed")?,
            queue_depth: field("queue_depth")?,
            workers: field("workers")?,
            p50_us: field("p50_us")?,
            p95_us: field("p95_us")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            cache_evictions: field("cache_evictions")?,
            cache_entries: field("cache_entries")?,
            batches: field("batches")?,
            batched_queries: field("batched_queries")?,
            max_batch: field("max_batch")?,
            formation_wait_us: field("formation_wait_us")?,
            // Tolerant of snapshots sent by older servers: an absent
            // "algos" object reads as all-zero counts.
            algo_completed: Algo::ALL
                .iter()
                .map(|a| {
                    let count = v
                        .get("algos")
                        .and_then(|o| o.get(a.label()))
                        .and_then(Json::as_u64)
                        .unwrap_or(0);
                    (a.label().to_owned(), count)
                })
                .collect(),
            // Absent from snapshots sent by older servers: default to
            // an empty registry listing rather than failing the parse.
            graphs: match v.get("graphs").and_then(Json::as_arr) {
                Some(items) => items
                    .iter()
                    .map(GraphOpenStat::from_json)
                    .collect::<Option<Vec<_>>>()?,
                None => Vec::new(),
            },
            // Mutation counters are likewise absent from older servers'
            // snapshots: default to zero rather than failing the parse.
            mutate_batches: field("mutate_batches").unwrap_or(0),
            mutations_applied: field("mutations_applied").unwrap_or(0),
            mutations_skipped: field("mutations_skipped").unwrap_or(0),
            mutation: v
                .get("mutation")
                .and_then(MutationGauges::from_json)
                .unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        assert_eq!(percentiles(&[]), (0, 0));
        assert_eq!(percentiles(&[10]), (10, 10));
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentiles(&samples), (50, 95));
    }

    #[test]
    fn window_wraps_and_forgets_old_samples() {
        let rec = StatsRecorder::default();
        // Fill the window with slow samples, then overwrite with fast.
        for _ in 0..LATENCY_WINDOW {
            rec.record_completed(Algo::Bfs, 1_000_000);
        }
        for _ in 0..LATENCY_WINDOW {
            rec.record_completed(Algo::Bfs, 100);
        }
        let snap = rec.snapshot(
            0,
            1,
            CacheCounters::default(),
            Vec::new(),
            MutationGauges::default(),
        );
        assert_eq!(snap.p50_us, 100);
        assert_eq!(snap.p95_us, 100);
        assert_eq!(snap.completed, 2 * LATENCY_WINDOW as u64);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let rec = StatsRecorder::default();
        rec.record_received();
        rec.record_received();
        rec.record_rejected();
        rec.record_completed(Algo::Khop, 250);
        rec.record_batch(3);
        rec.record_batch(1);
        rec.record_formation_wait(120);
        rec.record_formation_wait(80);
        rec.record_mutation(5, 1);
        let snap = rec.snapshot(
            3,
            4,
            CacheCounters {
                hits: 5,
                misses: 5,
                evictions: 1,
                entries: 2,
            },
            vec![GraphOpenStat {
                name: "rmat8".into(),
                open: "mapped".into(),
                verify: "eager".into(),
                open_us: 1234,
                mapped_bytes: 65536,
                heap_bytes: 0,
            }],
            MutationGauges {
                wal_len: 6,
                delta_edges: 4,
                overlay_generation: 2,
                compactions: 1,
                last_compaction_ms: 37,
            },
        );
        let back = StatsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.mutate_batches, 1);
        assert_eq!(back.mutations_applied, 5);
        assert_eq!(back.mutations_skipped, 1);
        assert_eq!(back.mutation.wal_len, 6);
        assert_eq!(back.mutation.overlay_generation, 2);
        assert_eq!(back.mutation.last_compaction_ms, 37);
        assert_eq!(back.graphs.len(), 1);
        assert_eq!(back.graphs[0].open, "mapped");
        assert_eq!(back.graphs[0].mapped_bytes, 65536);
        assert!((back.cache_hit_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(back.batches, 2);
        assert_eq!(back.batched_queries, 4);
        assert_eq!(back.max_batch, 3);
        assert_eq!(back.formation_wait_us, 200);
        assert!((back.batch_occupancy() - 2.0).abs() < 1e-9);
        // Every verb is present in table order; only khop counted.
        assert_eq!(back.algo_completed.len(), Algo::ALL.len());
        for ((label, count), algo) in back.algo_completed.iter().zip(Algo::ALL) {
            assert_eq!(label, algo.label());
            assert_eq!(*count, u64::from(algo == Algo::Khop), "{label}");
        }
    }

    #[test]
    fn batch_occupancy_is_zero_before_any_batch() {
        let rec = StatsRecorder::default();
        let snap = rec.snapshot(
            0,
            1,
            CacheCounters::default(),
            Vec::new(),
            MutationGauges::default(),
        );
        assert_eq!(snap.batches, 0);
        assert_eq!(snap.max_batch, 0);
        assert_eq!(snap.batch_occupancy(), 0.0);
    }

    #[test]
    fn snapshots_without_mutation_counters_still_parse() {
        // An older server's snapshot has no mutation block: every
        // mutation field defaults to zero instead of failing the parse.
        let rec = StatsRecorder::default();
        let snap = rec.snapshot(
            0,
            1,
            CacheCounters::default(),
            Vec::new(),
            MutationGauges::default(),
        );
        let mut json = snap.to_json();
        if let Json::Obj(pairs) = &mut json {
            pairs.retain(|k, _| !k.starts_with("mutat"));
        }
        let back = StatsSnapshot::from_json(&json).unwrap();
        assert_eq!(back.mutate_batches, 0);
        assert_eq!(back.mutation, MutationGauges::default());
    }
}
